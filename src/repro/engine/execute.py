"""The physical executor: hash joins, hash set operations, index scans.

One executor runs the plans of every frontend.  Physical choices:

* equi-joins build a hash table on the right input (semi/anti joins build a
  key set) instead of the reference interpreters' nested loops;
* DISTINCT and the set operations are hash-based;
* constant-equality filters directly over a base-table scan use the
  per-attribute indexes that :class:`repro.data.relation.Relation` maintains;
* every subplan's result is memoized *by plan value* for the duration of one
  :func:`execute_plan` call — the operational half of common subexpression
  elimination, and what makes the dependent-join compilation of correlated
  subqueries cheap (the embedded outer plan is evaluated once).

:func:`execute_datalog` drives recursive Datalog programs with **semi-naive
evaluation**: per stratum, each rule is re-lowered once per occurrence of a
same-stratum predicate so that occurrence reads the delta relation, and the
fixpoint loop only re-derives from last round's new facts.
"""

from __future__ import annotations

import operator
from collections import Counter
from typing import Any, Callable, Iterable, Protocol, Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import Attribute, RelationSchema
from repro.data.types import DataType, check_value, infer_type
from repro.expr import ast as e
from repro.expr.eval import _and3, _compare, _like_to_regex, _not3, _or3
from repro.sql.evaluate import _dedupe
from repro.engine.lower import (
    LoweringError,
    _PositionCol,
    _dedupe_names,
    detect_language,
    lower,
    lower_datalog_rule,
)
from repro.engine.plan import (
    AggregateP,
    DeltaScanP,
    DeltaUnavailable,
    DistinctP,
    DivideP,
    FilterP,
    JoinP,
    Plan,
    PlanError,
    ProjectP,
    ScanP,
    SetOpP,
    SortLimitP,
    resolve_column,
)

Row = tuple
RowFn = Callable[[Row], Any]


# ---------------------------------------------------------------------------
# Expression compilation (row -> value closures)
# ---------------------------------------------------------------------------

def compile_expr(expr: e.Expr, columns: Sequence[str]) -> RowFn:
    """Compile an expression into a closure over row tuples (3-valued logic)."""
    if isinstance(expr, _PositionCol):
        position = expr.position
        return lambda row: row[position]
    if isinstance(expr, (e.Const, e.BoolConst)):
        value = expr.value
        return lambda row: value
    if isinstance(expr, e.Col):
        idx = resolve_column(columns, expr.name, expr.qualifier)
        return operator.itemgetter(idx)
    if isinstance(expr, e.Comparison):
        left = compile_expr(expr.left, columns)
        right = compile_expr(expr.right, columns)
        op = expr.op
        return lambda row: _compare(left(row), op, right(row))
    if isinstance(expr, e.And):
        parts = [compile_expr(o, columns) for o in expr.operands]
        return lambda row: _and3(p(row) for p in parts)
    if isinstance(expr, e.Or):
        parts = [compile_expr(o, columns) for o in expr.operands]
        return lambda row: _or3(p(row) for p in parts)
    if isinstance(expr, e.Not):
        inner = compile_expr(expr.operand, columns)
        return lambda row: _not3(inner(row))
    if isinstance(expr, e.Neg):
        inner = compile_expr(expr.operand, columns)

        def neg(row: Row) -> Any:
            value = inner(row)
            return None if value is None else -value

        return neg
    if isinstance(expr, e.BinOp):
        left = compile_expr(expr.left, columns)
        right = compile_expr(expr.right, columns)
        return _compile_binop(expr.op, left, right)
    if isinstance(expr, e.IsNull):
        inner = compile_expr(expr.operand, columns)
        if expr.negated:
            return lambda row: inner(row) is not None
        return lambda row: inner(row) is None
    if isinstance(expr, e.InList):
        inner = compile_expr(expr.operand, columns)
        items = [compile_expr(i, columns) for i in expr.items]
        negated = expr.negated

        def in_list(row: Row) -> Any:
            value = inner(row)
            result = _in_membership(value, [i(row) for i in items])
            return _not3(result) if negated else result

        return in_list
    if isinstance(expr, e.Between):
        inner = compile_expr(expr.operand, columns)
        low = compile_expr(expr.low, columns)
        high = compile_expr(expr.high, columns)
        negated = expr.negated

        def between(row: Row) -> Any:
            value = inner(row)
            result = _and3([_compare(value, ">=", low(row)),
                            _compare(value, "<=", high(row))])
            return _not3(result) if negated else result

        return between
    if isinstance(expr, e.Like):
        inner = compile_expr(expr.operand, columns)
        pattern = _like_to_regex(expr.pattern)
        negated = expr.negated

        def like(row: Row) -> Any:
            value = inner(row)
            if value is None:
                return None
            result = bool(pattern.match(str(value)))
            return not result if negated else result

        return like
    if isinstance(expr, e.FuncCall) and not expr.is_aggregate:
        args = [compile_expr(a, columns) for a in expr.args]
        return _compile_scalar_function(expr.name, args)
    raise PlanError(f"cannot compile expression node {type(expr).__name__}")


def _in_membership(value: Any, items: Sequence[Any]) -> Any:
    if value is None:
        return None if items else False
    saw_null = False
    for item in items:
        if item is None:
            saw_null = True
            continue
        try:
            if _compare(value, "=", item) is True:
                return True
        except e.ExprError:
            continue
    return None if saw_null else False


def _compile_binop(op: str, left: RowFn, right: RowFn) -> RowFn:
    def apply(row: Row) -> Any:
        lhs = left(row)
        rhs = right(row)
        if lhs is None or rhs is None:
            return None
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                raise e.ExprError("division by zero")
            return lhs / rhs
        if op == "%":
            if rhs == 0:
                raise e.ExprError("division by zero")
            return lhs % rhs
        raise e.ExprError(f"unknown operator {op!r}")

    return apply


def _compile_scalar_function(name: str, args: list[RowFn]) -> RowFn:
    def apply(row: Row) -> Any:
        values = [a(row) for a in args]
        if name == "abs":
            return None if values[0] is None else abs(values[0])
        if name == "lower":
            return None if values[0] is None else str(values[0]).lower()
        if name == "upper":
            return None if values[0] is None else str(values[0]).upper()
        if name == "length":
            return None if values[0] is None else len(str(values[0]))
        if name == "coalesce":
            for value in values:
                if value is not None:
                    return value
            return None
        raise e.ExprError(f"unknown function {name!r}")

    return apply


def compile_predicate(expr: e.Expr, columns: Sequence[str]) -> Callable[[Row], bool]:
    fn = compile_expr(expr, columns)
    return lambda row: fn(row) is True


# ---------------------------------------------------------------------------
# Compiled-closure cache
# ---------------------------------------------------------------------------
#
# Compilation is pure — a closure depends only on the (immutable, hashable)
# expression node and the column layout — so compiled closures are cached
# process-wide.  Re-executing the same Plan object (the pipeline's plan cache
# does exactly that on every warm request, and the Datalog fixpoint re-runs
# its delta plans every round) therefore compiles each expression once, not
# once per `_filter`/`_join` call.

_COMPILED_CACHE_LIMIT = 4096
_compiled_exprs: dict[tuple, RowFn] = {}
_compiled_predicates: dict[tuple, Callable[[Row], bool]] = {}


def _cache_slot(cache: dict, key: tuple, build: Callable[[], Any]) -> Any:
    try:
        cached = cache.get(key)
    except TypeError:  # unhashable payload (opaque subquery nodes): no caching
        return build()
    if cached is None:
        cached = build()
        if len(cache) >= _COMPILED_CACHE_LIMIT:
            cache.clear()
        cache[key] = cached
    return cached


def compiled_expr(expr: e.Expr, columns: Sequence[str]) -> RowFn:
    """Cached :func:`compile_expr` (keyed on expression + column layout)."""
    columns = tuple(columns)
    return _cache_slot(_compiled_exprs, (expr, columns),
                       lambda: compile_expr(expr, columns))


def compiled_predicate(expr: e.Expr, columns: Sequence[str]) -> Callable[[Row], bool]:
    """Cached :func:`compile_predicate` (keyed on expression + column layout)."""
    columns = tuple(columns)

    def build() -> Callable[[Row], bool]:
        fn = compiled_expr(expr, columns)
        return lambda row: fn(row) is True

    return _cache_slot(_compiled_predicates, (expr, columns), build)


def clear_compiled_cache() -> None:
    """Drop all cached closures (test/benchmark isolation)."""
    _compiled_exprs.clear()
    _compiled_predicates.clear()


# ---------------------------------------------------------------------------
# Plan execution
# ---------------------------------------------------------------------------

class Executor:
    """Evaluates plans against one database, memoizing per plan value."""

    def __init__(self, db: Database) -> None:
        self.db = db
        self._memo: dict[Plan, list[Row]] = {}

    def rows(self, plan: Plan) -> list[Row]:
        cached = self._memo.get(plan)
        if cached is None:
            cached = self._compute(plan)
            self._memo[plan] = cached
        return cached

    # -- operators -------------------------------------------------------

    def _compute(self, plan: Plan) -> list[Row]:
        if isinstance(plan, ScanP):
            relation = self.db.relation(plan.relation)
            if len(plan.columns) != relation.schema.arity:
                raise PlanError(
                    f"scan of {plan.relation} expects arity {len(plan.columns)}, "
                    f"relation has {relation.schema.arity}"
                )
            return relation.rows()
        if isinstance(plan, DeltaScanP):
            return delta_scan_rows(self.db, plan)
        if isinstance(plan, FilterP):
            return self._filter(plan)
        if isinstance(plan, ProjectP):
            rows = self.rows(plan.input)
            if all(isinstance(x, (e.Col, _PositionCol)) for x in plan.exprs):
                # Pure column picks: batch via itemgetter.
                indices = [
                    x.position if isinstance(x, _PositionCol)
                    else resolve_column(plan.input.columns, x.name, x.qualifier)
                    for x in plan.exprs
                ]
                if len(indices) == 1:
                    i0 = indices[0]
                    return [(row[i0],) for row in rows]
                getter = operator.itemgetter(*indices)
                return [getter(row) for row in rows]
            fns = [compiled_expr(x, plan.input.columns) for x in plan.exprs]
            return [tuple(fn(row) for fn in fns) for row in rows]
        if isinstance(plan, DistinctP):
            return _dedupe(self.rows(plan.input))
        if isinstance(plan, JoinP):
            return self._join(plan)
        if isinstance(plan, SetOpP):
            return self._setop(plan)
        if isinstance(plan, AggregateP):
            return self._aggregate(plan)
        if isinstance(plan, DivideP):
            return self._divide(plan)
        if isinstance(plan, SortLimitP):
            return self._sort_limit(plan)
        raise PlanError(f"cannot execute {type(plan).__name__}")

    def _filter(self, plan: FilterP) -> list[Row]:
        conjuncts = e.conjuncts(plan.condition)
        source = plan.input
        rows: list[Row] | None = None
        # Index fast path: a constant-equality conjunct directly over a scan.
        if isinstance(source, ScanP) and source not in self._memo:
            for conjunct in conjuncts:
                lookup = self._index_lookup(source, conjunct)
                if lookup is not None:
                    rows = lookup
                    conjuncts = [c for c in conjuncts if c is not conjunct]
                    break
        if rows is None:
            rows = self.rows(source)
        if not conjuncts:
            return list(rows)
        predicate = compiled_predicate(e.conjunction(conjuncts), source.columns)
        return [row for row in rows if predicate(row)]

    def _index_lookup(self, scan: ScanP, conjunct: e.Expr) -> list[Row] | None:
        if not (isinstance(conjunct, e.Comparison) and conjunct.op == "="):
            return None
        for col, const in ((conjunct.left, conjunct.right),
                           (conjunct.right, conjunct.left)):
            if isinstance(col, e.Col) and isinstance(const, e.Const) \
                    and const.value is not None:
                try:
                    idx = resolve_column(scan.columns, col.name, col.qualifier)
                except PlanError:
                    return None
                relation = self.db.relation(scan.relation)
                attribute = relation.schema.attributes[idx]
                if not check_value(const.value, attribute.dtype):
                    # A type-mismatched constant must go through the compiled
                    # predicate so it raises like the reference's _compare
                    # would, instead of silently probing the hash index.
                    return None
                index = relation.index_on(attribute.name)
                return list(index.get(const.value, ()))
        return None

    def _join(self, plan: JoinP) -> list[Row]:
        left_rows = self.rows(plan.left)
        if plan.kind in ("inner", "cross") and not plan.left_keys \
                and plan.residual is None:
            right_rows = self.rows(plan.right)
            return [l + r for l in left_rows for r in right_rows]

        left_cols = plan.left.columns
        right_cols = plan.right.columns
        left_idx = [resolve_column(left_cols, *_split_name(k)) for k in plan.left_keys]
        right_idx = [resolve_column(right_cols, *_split_name(k)) for k in plan.right_keys]
        residual = None
        if plan.residual is not None:
            residual = compiled_predicate(plan.residual, left_cols + right_cols)

        right_rows = self.rows(plan.right)
        if plan.kind in ("semi", "anti"):
            return self._semi_anti(plan, left_rows, right_rows, left_idx, right_idx,
                                   residual)

        # Inner hash join: build on the right.
        table: dict[tuple, list[Row]] = {}
        for row in right_rows:
            key = tuple(row[i] for i in right_idx)
            if not plan.null_matches and any(v is None for v in key):
                continue
            table.setdefault(key, []).append(row)
        out: list[Row] = []
        for l in left_rows:
            key = tuple(l[i] for i in left_idx)
            if not plan.null_matches and any(v is None for v in key):
                continue
            for r in table.get(key, ()):
                row = l + r
                if residual is None or residual(row):
                    out.append(row)
        return out

    def _semi_anti(self, plan: JoinP, left_rows: list[Row], right_rows: list[Row],
                   left_idx: list[int], right_idx: list[int],
                   residual: Callable[[Row], bool] | None) -> list[Row]:
        want_match = plan.kind == "semi"
        if residual is None:
            keys = set()
            for row in right_rows:
                key = tuple(row[i] for i in right_idx)
                if not plan.null_matches and any(v is None for v in key):
                    continue
                keys.add(key)
            out = []
            for row in left_rows:
                key = tuple(row[i] for i in left_idx)
                if not plan.null_matches and any(v is None for v in key):
                    matched = False
                else:
                    matched = key in keys
                if matched == want_match:
                    out.append(row)
            return out
        # Residual condition: hash on the equi part, test residual per match.
        table: dict[tuple, list[Row]] = {}
        for row in right_rows:
            key = tuple(row[i] for i in right_idx)
            if not plan.null_matches and any(v is None for v in key):
                continue
            table.setdefault(key, []).append(row)
        out = []
        for l in left_rows:
            key = tuple(l[i] for i in left_idx)
            if not plan.null_matches and any(v is None for v in key):
                matched = False
            else:
                matched = any(residual(l + r) for r in table.get(key, ()))
            if matched == want_match:
                out.append(l)
        return out

    def _setop(self, plan: SetOpP) -> list[Row]:
        left = self.rows(plan.left)
        right = self.rows(plan.right)
        if plan.op == "union":
            rows = left + right
            return _dedupe(rows) if plan.distinct else rows
        if plan.op == "intersect":
            if plan.distinct:
                right_set = set(right)
                return _dedupe([row for row in left if row in right_set])
            counts = Counter(right)
            out = []
            for row in left:
                if counts.get(row, 0) > 0:
                    counts[row] -= 1
                    out.append(row)
            return out
        # except
        if plan.distinct:
            right_set = set(right)
            return _dedupe([row for row in left if row not in right_set])
        counts = Counter(right)
        out = []
        for row in left:
            if counts.get(row, 0) > 0:
                counts[row] -= 1
            else:
                out.append(row)
        return out

    def _aggregate(self, plan: AggregateP) -> list[Row]:
        rows = self.rows(plan.input)
        columns = plan.input.columns
        key_fns = [compiled_expr(x, columns) for x in plan.group_exprs]
        groups: dict[tuple, list[Row]] = {}
        order: list[tuple] = []
        for row in rows:
            key = tuple(fn(row) for fn in key_fns)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
            bucket.append(row)
        if not plan.group_exprs and not groups:
            groups[()] = []
            order.append(())
        agg_fns = [self._compile_aggregate(call, columns)
                   for call, _name in plan.aggregates]
        out: list[Row] = []
        width = len(columns)
        for key in order:
            members = groups[key]
            representative = members[0] if members else (None,) * width
            out.append(representative + tuple(fn(members) for fn in agg_fns))
        return out

    def _compile_aggregate(self, call: e.FuncCall,
                           columns: tuple[str, ...]) -> Callable[[list[Row]], Any]:
        name = call.name
        if name == "count" and call.args and isinstance(call.args[0], e.Star):
            return len
        if not call.args:
            raise PlanError(f"aggregate {name.upper()} needs an argument")
        arg = compiled_expr(call.args[0], columns)
        distinct = call.distinct

        def apply(rows: list[Row]) -> Any:
            values = [v for v in (arg(row) for row in rows) if v is not None]
            if distinct:
                values = list(dict.fromkeys(values))
            if name == "count":
                return len(values)
            if not values:
                return None
            if name == "sum":
                return sum(values)
            if name == "avg":
                return sum(values) / len(values)
            if name == "min":
                return min(values)
            if name == "max":
                return max(values)
            raise PlanError(f"unknown aggregate {name!r}")

        return apply

    def _divide(self, plan: DivideP) -> list[Row]:
        left_cols = plan.left.columns
        right_names = {c.lower() for c in plan.right.columns}
        quotient_idx = [i for i, c in enumerate(left_cols)
                        if c.lower() not in right_names]
        divisor_pos = {c.lower(): i for i, c in enumerate(left_cols)}
        divisor_idx = [divisor_pos[c.lower()] for c in plan.right.columns]
        divisor_rows = set(_dedupe(self.rows(plan.right)))
        groups: dict[tuple, set[tuple]] = {}
        order: list[tuple] = []
        for row in _dedupe(self.rows(plan.left)):
            key = tuple(row[i] for i in quotient_idx)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = set()
                order.append(key)
            bucket.add(tuple(row[i] for i in divisor_idx))
        return [key for key in order if divisor_rows <= groups[key]]

    def _sort_limit(self, plan: SortLimitP) -> list[Row]:
        rows = list(self.rows(plan.input))
        if plan.keys:
            from repro.sql.evaluate import _sort_key

            fns = [(compiled_expr(expr, plan.input.columns), ascending)
                   for expr, ascending in plan.keys]

            def key(row: Row) -> tuple:
                return tuple(_sort_key(fn(row), ascending) for fn, ascending in fns)

            rows.sort(key=key)
        if plan.limit is not None:
            rows = rows[:plan.limit]
        return rows


def delta_scan_rows(db: Database, plan: DeltaScanP) -> list[Row]:
    """Resolve a :class:`DeltaScanP` window against the storage layer.

    Shared by every backend so window semantics cannot drift: ``delta`` reads
    the rows appended after the anchor, ``asof`` the bag as of the anchor.
    """
    if plan.since is None:
        raise PlanError(
            f"delta scan of {plan.relation} is an unanchored template; "
            "anchor() it with the view's version map before executing"
        )
    relation = db.relation(plan.relation)
    if len(plan.columns) != relation.schema.arity:
        raise PlanError(
            f"delta scan of {plan.relation} expects arity {len(plan.columns)}, "
            f"relation has {relation.schema.arity}"
        )
    if plan.mode == "delta":
        rows = relation.delta_since(plan.since)
    else:
        rows = relation.rows_at(plan.since)
    if rows is None:
        raise DeltaUnavailable(
            f"delta log of {plan.relation} no longer covers version "
            f"{plan.since} (current {relation.version}); rebuild the view"
        )
    return rows


def _split_name(column: str) -> tuple[str, str | None]:
    # Join keys are stored as full column spellings; resolve by exact name
    # first (resolve_column tries the bare spelling before suffix rules).
    return column, None



# ---------------------------------------------------------------------------
# Executor backends
# ---------------------------------------------------------------------------

class ExecutorBackend(Protocol):
    """The physical-execution seam: logical plan + database in, rows out.

    Five implementations ship: the row-at-a-time reference backend in this
    module (``"row"``), the columnar batch-at-a-time backend in
    :mod:`repro.engine.vectorized` (``"vectorized"``), the partitioned
    parallel backend in :mod:`repro.engine.parallel` (``"parallel"``), the
    thread-based scatter-gather backend in :mod:`repro.engine.sharded`
    (``"sharded"``), and the multi-process scatter-gather backend over
    shared-memory column pages in :mod:`repro.engine.process`
    (``"process"``).  All must agree bag-for-bag on every plan —
    ``tests/test_vectorized.py``, ``tests/test_parallel.py``,
    ``tests/test_sharded.py``, ``tests/test_process.py``, and the
    property-based differential suite in
    ``tests/test_fuzz_differential.py`` pin that over the canonical catalog
    and randomly generated plans.
    """

    name: str

    def execute(self, plan: Plan, db: Database) -> list[Row]:
        """Evaluate ``plan`` against ``db`` and return its rows (bag order)."""
        ...


class RowBackend:
    """The PR-1 row-at-a-time executor, kept as the reference backend."""

    name = "row"

    def execute(self, plan: Plan, db: Database) -> list[Row]:
        return Executor(db).rows(plan)


def get_backend(name: "str | ExecutorBackend") -> "ExecutorBackend":
    """Resolve a backend by name (``"row"`` / ``"vectorized"`` /
    ``"parallel"`` / ``"sharded"``) or pass an instance through."""
    if not isinstance(name, str):
        return name
    key = name.lower()
    if key == "row":
        return _ROW_BACKEND
    if key == "vectorized":
        from repro.engine.vectorized import VectorizedBackend

        return VectorizedBackend()
    if key == "parallel":
        # The singleton: its worker pool is shared across all executions.
        from repro.engine.parallel import PARALLEL_BACKEND

        return PARALLEL_BACKEND
    if key == "sharded":
        # The singleton: its auto-sharding and compiled-plan caches are
        # shared across all executions (per-database, weakly keyed).
        from repro.engine.sharded import SHARDED_BACKEND

        return SHARDED_BACKEND
    if key == "process":
        # The singleton: its worker-process pool (and the page segments the
        # databases publish for it) is shared across all executions.
        from repro.engine.process import PROCESS_BACKEND

        return PROCESS_BACKEND
    raise PlanError(f"unknown executor backend {name!r} (expected 'row', "
                    "'vectorized', 'parallel', 'sharded', or 'process')")


_ROW_BACKEND = RowBackend()


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def execute_plan(plan: Plan, db: Database, *,
                 backend: "str | ExecutorBackend" = "row") -> Relation:
    """Execute a plan and package the rows as a Relation (types inferred)."""
    rows = get_backend(backend).execute(plan, db)
    return build_result_relation(plan.columns, rows)


def build_result_relation(columns: Sequence[str], rows: list[Row],
                          *, name: str = "result") -> Relation:
    """Build an untyped-until-observed result relation (shared helper)."""
    names = _dedupe_names([c.split(".")[-1] or c for c in columns])
    attributes = []
    for i, attr_name in enumerate(names):
        dtype = DataType.STRING
        for row in rows:
            if row[i] is not None:
                try:
                    dtype = infer_type(row[i])
                except ValueError:
                    dtype = DataType.STRING
                break
        attributes.append(Attribute(attr_name, dtype))
    return Relation(RelationSchema(name, tuple(attributes)), rows, validate=False)


def run_query(query: Any, db: Database, language: str | None = None,
              *, use_optimizer: bool = True,
              backend: "str | ExecutorBackend" = "row") -> Relation:
    """Parse/lower/optimize/execute any of the five languages on the engine.

    Raises :class:`LoweringError` (never silently falls back) when the query
    is outside the engine fragment — callers that want interpreter fallback
    handle that explicitly.  ``backend`` selects the physical executor for
    plan execution; the Datalog fixpoint always drives the row executor
    (delta relations are small, and the fixpoint leans on its per-plan memo).
    """
    from repro.datalog.ast import Program

    if isinstance(query, Program) or (
            isinstance(query, str)
            and (language or detect_language(query)).lower() == "datalog"):
        return execute_datalog(query, db, use_optimizer=use_optimizer)
    plan = lower(query, db.schema, language)
    if use_optimizer:
        from repro.engine.optimize import optimize

        plan = optimize(plan, db)
    return execute_plan(plan, db, backend=backend)


# ---------------------------------------------------------------------------
# Semi-naive Datalog
# ---------------------------------------------------------------------------

def execute_datalog(program: Any, db: Database, query: str = "ans",
                    *, use_optimizer: bool = True) -> Relation:
    """Evaluate a stratified Datalog program with semi-naive iteration."""
    from repro.datalog.ast import Program
    from repro.datalog.evaluate import _build_relation, _output_names
    from repro.datalog.parser import parse_datalog

    if isinstance(program, str):
        program = parse_datalog(program)
    assert isinstance(program, Program)
    problems = program.check_safety()
    if problems:
        raise LoweringError("unsafe program: " + "; ".join(problems))

    facts = compute_datalog_facts(program, db, use_optimizer=use_optimizer)
    key = query.lower()
    if key not in facts:
        raise LoweringError(f"program defines no predicate {query!r}")
    rows = sorted(facts[key], key=lambda r: tuple(str(v) for v in r))
    names = _output_names(program, query, rows)
    return _build_relation(names, list(rows))


def compute_datalog_facts(program: Any, db: Database,
                          *, use_optimizer: bool = True,
                          seed_facts: "dict[str, set[Row]] | None" = None,
                          edb_deltas: "dict[str, Iterable[Row]] | None" = None,
                          ) -> dict[str, set[Row]]:
    """All IDB (and EDB) facts of a program, via plans + semi-naive fixpoint.

    With ``seed_facts`` (the facts of a previous run of the same program) and
    ``edb_deltas`` (rows appended to base relations since), evaluation
    **resumes from the new frontier** instead of starting over: each
    stratum's round 0 executes only the delta variants w.r.t. changed
    predicates (new EDB rows, or facts lower strata just derived), and the
    usual semi-naive loop takes it from there.  This is the incremental
    maintenance path for recursive materialized views.  Inserts only —
    negation makes derivations non-monotone under growth of the negated
    predicate, so programs with negated literals raise
    :class:`~repro.engine.lower.LoweringError` in incremental mode (the view
    layer falls back to a full rebuild).
    """
    from repro.datalog.ast import Literal
    from repro.datalog.stratify import evaluation_order
    from repro.engine.optimize import optimize as optimize_plan
    from repro.engine.stats import StatsCatalog

    incremental = seed_facts is not None
    if incremental:
        for rule in program.rules:
            for item in rule.body:
                if isinstance(item, Literal) and item.negated:
                    raise LoweringError(
                        "incremental evaluation requires a negation-free "
                        f"program (rule head {rule.head.predicate})"
                    )
    #: Predicates with new rows since the seeding run, accumulated stratum by
    #: stratum so later strata see upstream IDB growth as deltas too.
    changed: dict[str, set[Row]] = {}
    if incremental and edb_deltas:
        for pred, delta_rows in edb_deltas.items():
            delta_set = set(delta_rows)
            if delta_set:
                changed[pred.lower()] = delta_set

    arities: dict[str, int] = {}
    for rel in db:
        arities[rel.schema.name.lower()] = rel.schema.arity
    for rule in program.rules:
        arities.setdefault(rule.head.predicate.lower(), rule.head.arity)
        for item in rule.body:
            if isinstance(item, Literal):
                arities.setdefault(item.predicate.lower(), item.arity)

    # Working database: EDB relations (shared) plus materialized IDB facts.
    # One statistics catalog serves every optimize() call of the fixpoint —
    # its per-relation profiles are version-tagged, so re-materialized IDB
    # relations are re-profiled automatically while the (never-mutated) EDB
    # profiles are collected exactly once.  Delta relations are estimated
    # tiny before they exist, which makes the cost-based join ordering place
    # each rule's delta occurrence first: the semi-join reduction decision.
    working = Database()
    stats = StatsCatalog(working)
    facts: dict[str, set[Row]] = {}
    for rel in db:
        working.add_relation(rel)
        facts[rel.schema.name.lower()] = set(rel.row_set())

    def generic_schema(predicate: str) -> RelationSchema:
        arity = arities[predicate]
        return RelationSchema(predicate, tuple(
            Attribute(f"col{i + 1}", DataType.STRING) for i in range(arity)))

    def materialize(predicate: str, rows: Iterable[Row]) -> None:
        working.add_relation(
            Relation(generic_schema(predicate), rows, validate=False))

    idb = [p.lower() for p in program.idb_predicates()]
    for predicate in idb:
        initial = facts.get(predicate, set())
        if incremental:
            initial = initial | seed_facts.get(predicate, set())
        facts[predicate] = set(initial)
        materialize(predicate, facts[predicate])

    for stratum in evaluation_order(program):
        stratum_preds = {p.lower() for p in stratum}
        for predicate in stratum_preds:
            arities[f"{predicate}@delta"] = arities[predicate]
        stratum_rules = [r for r in program.rules
                         if r.head.predicate.lower() in stratum_preds]
        before = {p: set(facts[p]) for p in stratum_preds} if incremental else {}

        # Delta variants w.r.t. same-stratum predicates (one per positive
        # occurrence) drive the semi-naive loop in both modes.
        delta_variants: list[tuple[Any, Plan]] = []
        for rule in stratum_rules:
            if rule.is_fact:
                continue
            for position, item in enumerate(rule.body):
                if isinstance(item, Literal) and not item.negated \
                        and item.predicate.lower() in stratum_preds:
                    variant = lower_datalog_rule(
                        rule, arities,
                        {position: f"{item.predicate.lower()}@delta"})
                    if use_optimizer:
                        variant = optimize_plan(variant, working, stats=stats)
                    delta_variants.append((rule, variant))

        delta: dict[str, set[Row]] = {p: set() for p in stratum_preds}
        if incremental:
            # Round 0, resumed: derive only from the *changed* predicates
            # (new EDB rows and upstream IDB growth) — the new frontier.
            referenced: set[str] = set()
            frontier_variants: list[tuple[Any, Plan]] = []
            for rule in stratum_rules:
                if rule.is_fact:
                    facts[rule.head.predicate.lower()].add(_fact_row(rule))
                    continue
                for item in rule.body:
                    if isinstance(item, Literal) and not item.negated \
                            and item.predicate.lower() in changed:
                        referenced.add(item.predicate.lower())
            for pred in referenced:
                arities[f"{pred}@delta"] = arities[pred]
                materialize(f"{pred}@delta", changed[pred])
            for rule in stratum_rules:
                if rule.is_fact:
                    continue
                for position, item in enumerate(rule.body):
                    if isinstance(item, Literal) and not item.negated \
                            and item.predicate.lower() in changed:
                        variant = lower_datalog_rule(
                            rule, arities,
                            {position: f"{item.predicate.lower()}@delta"})
                        if use_optimizer:
                            variant = optimize_plan(variant, working, stats=stats)
                        frontier_variants.append((rule, variant))
            executor = Executor(working)
            for rule, plan in frontier_variants:
                head = rule.head.predicate.lower()
                for row in executor.rows(plan):
                    if row not in facts[head]:
                        facts[head].add(row)
                        delta[head].add(row)
            for pred in referenced:
                working.drop_relation(f"{pred}@delta")
        else:
            # Round 0, from scratch: full evaluation of every rule.  One
            # shared executor so the per-plan memo reuses common subplans
            # across the stratum's rules (`working` is not mutated until
            # after the round).
            base_plans: list[tuple[Any, Plan | None]] = []
            for rule in stratum_rules:
                if rule.is_fact:
                    base_plans.append((rule, None))
                    continue
                plan = lower_datalog_rule(rule, arities)
                if use_optimizer:
                    plan = optimize_plan(plan, working, stats=stats)
                base_plans.append((rule, plan))
            executor = Executor(working)
            for rule, plan in base_plans:
                head = rule.head.predicate.lower()
                if plan is None:
                    row = _fact_row(rule)
                    if row not in facts[head]:
                        facts[head].add(row)
                        delta[head].add(row)
                    continue
                for row in executor.rows(plan):
                    if row not in facts[head]:
                        facts[head].add(row)
                        delta[head].add(row)
        for predicate in stratum_preds:
            materialize(predicate, facts[predicate])

        # Semi-naive iteration (only needed if some rule reads a
        # same-stratum predicate).
        while delta_variants and any(delta[p] for p in stratum_preds):
            for predicate in stratum_preds:
                materialize(f"{predicate}@delta", delta[predicate])
                arities.setdefault(f"{predicate}@delta", arities[predicate])
            new_delta: dict[str, set[Row]] = {p: set() for p in stratum_preds}
            executor = Executor(working)
            for rule, variant in delta_variants:
                head = rule.head.predicate.lower()
                for row in executor.rows(variant):
                    if row not in facts[head]:
                        facts[head].add(row)
                        new_delta[head].add(row)
            delta = new_delta
            for predicate in stratum_preds:
                if delta[predicate]:
                    materialize(predicate, facts[predicate])
        for predicate in stratum_preds:
            if f"{predicate}@delta" in working:
                working.drop_relation(f"{predicate}@delta")
        if incremental:
            for predicate in stratum_preds:
                new_facts = facts[predicate] - before[predicate]
                if new_facts:
                    changed[predicate] = changed.get(predicate, set()) | new_facts

    return facts


def _fact_row(rule: Any) -> Row:
    from repro.logic.terms import Const as LConst

    row = []
    for term in rule.head.terms:
        if not isinstance(term, LConst):
            raise LoweringError(
                f"head variable of fact {rule.head.predicate} is unbound"
            )
        row.append(term.value)
    return tuple(row)
