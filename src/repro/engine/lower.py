"""Lowering of all five query languages onto the logical plan IR.

One compiler per frontend:

* :func:`lower_sql` — the SQL select/project/join fragment with set
  operations, DISTINCT, GROUP BY / HAVING aggregates, ORDER BY / LIMIT, and
  (possibly correlated) EXISTS / IN subqueries.  Correlated subqueries are
  decorrelated with *dependent joins*: the subquery's FROM list is crossed
  onto the current plan, its predicates applied, and the result semi- or
  anti-joined back on the outer plan's own columns.  Because the outer plan
  appears structurally inside the dependent side, the executor's
  common-subexpression memoization evaluates it only once.
* :func:`lower_ra` — a structural mapping of the RA operator tree, with the
  reference evaluator's set/bag mode switching (``GroupBy`` inputs are bags,
  set mode adds a final duplicate elimination).
* :func:`lower_trc` / :func:`lower_drc` — safe-calculus compilation:
  ∀ and → are rewritten away (∀x φ ⇒ ¬∃x ¬φ), negations pushed to
  quantifiers and leaves, positive atoms become guard scans, negated
  existentials become dependent anti-joins.
* :func:`lower_datalog_rule` — one conjunctive plan per rule (shared by the
  semi-naive fixpoint driver in :mod:`repro.engine.execute`).

Anything outside a frontend's supported fragment raises
:class:`LoweringError`; callers (the pipeline) fall back to the reference
interpreter for those, so lowering never has to guess at semantics.

Known, documented deviations from the reference interpreters (none are
observable on NULL-free databases such as the generated test batteries):
``NOT IN (subquery)`` is compiled as an anti join (NOT EXISTS semantics),
and comparisons between incompatible types behave as the target calculus'
evaluator does only when no rows exercise them.
"""

from __future__ import annotations

import itertools
from typing import Any, Mapping, Sequence

from repro.data.schema import DatabaseSchema, SchemaError
from repro.expr import ast as e
from repro.engine.plan import (
    AggregateP,
    DistinctP,
    DivideP,
    FilterP,
    JoinP,
    Plan,
    ProjectP,
    ScanP,
    SetOpP,
    SortLimitP,
    has_column,
    resolve_column,
)


class LoweringError(Exception):
    """Raised when a query lies outside the engine's supported fragment."""


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _cross(left: Plan | None, right: Plan) -> Plan:
    if left is None:
        return right
    return JoinP(left, right, "cross")


def _filter(plan: Plan, condition: e.Expr) -> Plan:
    if isinstance(condition, e.BoolConst) and condition.value:
        return plan
    return FilterP(plan, condition)


def _project_to(plan: Plan, columns: Sequence[str]) -> Plan:
    """Project ``plan`` onto the named columns (by resolution), keeping names."""
    if tuple(plan.columns) == tuple(columns):
        return plan
    exprs = tuple(e.Col(name) for name in columns)
    # Column names may be dotted ("S.sid"); build Col refs that resolve by
    # exact spelling: resolve_column tries the bare spelling first.
    return ProjectP(plan, exprs, tuple(columns))


def _dedupe_names(names: Sequence[str]) -> tuple[str, ...]:
    unique: list[str] = []
    counts: dict[str, int] = {}
    for name in names:
        if name in counts:
            counts[name] += 1
            unique.append(f"{name}_{counts[name]}")
        else:
            counts[name] = 1
            unique.append(name)
    return tuple(unique)


def detect_language(text: str) -> str:
    """Guess the language of a textual query (same heuristic as the
    equivalence harness)."""
    stripped = text.strip()
    if stripped.lower().startswith("select") or stripped.startswith("("):
        return "sql"
    if stripped.startswith("{"):
        head = stripped.split("|", 1)[0]
        return "trc" if "." in head else "drc"
    if ":-" in stripped or stripped.endswith("."):
        return "datalog"
    return "ra"


def lower(query: Any, schema: DatabaseSchema, language: str | None = None) -> Plan:
    """Lower any non-Datalog query representation to a plan.

    ``query`` may be text (language auto-detected unless given) or a parsed
    AST of any frontend.  Datalog programs have no single static plan (their
    recursion is driven by :func:`repro.engine.execute.execute_datalog`) and
    are rejected here.
    """
    from repro.datalog.ast import Program
    from repro.drc.ast import DRCQuery
    from repro.ra.ast import RAExpr
    from repro.sql.ast import SelectQuery, SetOpQuery
    from repro.trc.ast import TRCQuery

    if isinstance(query, str):
        language = (language or detect_language(query)).lower()
        if language == "sql":
            return lower_sql(query, schema)
        if language == "ra":
            return lower_ra(query, schema)
        if language == "trc":
            return lower_trc(query, schema)
        if language == "drc":
            return lower_drc(query, schema)
        if language == "datalog":
            raise LoweringError(
                "Datalog programs are executed by execute_datalog (semi-naive), "
                "not by a single static plan"
            )
        raise LoweringError(f"unknown language {language!r}")
    if isinstance(query, (SelectQuery, SetOpQuery)):
        return lower_sql(query, schema)
    if isinstance(query, RAExpr):
        return lower_ra(query, schema)
    if isinstance(query, TRCQuery):
        return lower_trc(query, schema)
    if isinstance(query, DRCQuery):
        return lower_drc(query, schema)
    if isinstance(query, Program):
        raise LoweringError("use execute_datalog for Datalog programs")
    raise LoweringError(f"cannot lower query of type {type(query).__name__}")


# ---------------------------------------------------------------------------
# SQL
# ---------------------------------------------------------------------------

def lower_sql(query: "Any | str", schema: DatabaseSchema) -> Plan:
    """Lower a SQL query (text or AST) to a plan (bag semantics)."""
    if isinstance(query, str):
        from repro.sql.parser import parse_sql

        query = parse_sql(query)
    return _lower_sql_query(query, schema)


def _lower_sql_query(query: Any, schema: DatabaseSchema) -> Plan:
    from repro.sql.ast import SelectQuery, SetOpQuery

    if isinstance(query, SetOpQuery):
        left = _lower_sql_query(query.left, schema)
        right = _lower_sql_query(query.right, schema)
        plan: Plan = SetOpP(query.op, left, right, distinct=not query.all)
        if query.order_by or query.limit is not None:
            plan = _sql_sort_limit(plan, query.order_by, query.limit)
        return plan
    if isinstance(query, SelectQuery):
        plan, _from_cols = _lower_select(query, schema, base=None)
        return plan
    raise LoweringError(f"unsupported SQL node {type(query).__name__}")


def _lower_select(query: Any, schema: DatabaseSchema, base: Plan | None,
                  *, project: bool = True) -> tuple[Plan, tuple[str, ...]]:
    """Lower one SELECT block.

    ``base`` is the dependent-join prefix: the outer plan whose columns a
    correlated subquery may reference.  With ``project=False`` the plan stops
    before the SELECT list (used for EXISTS subqueries, where only row
    existence matters); the second return value is the columns contributed by
    this block's own FROM list.
    """
    plan = base
    from_cols: list[str] = []
    outer_aliases = set()
    if base is not None:
        outer_aliases = {c.split(".", 1)[0].lower() for c in base.columns if "." in c}
    for item in query.from_items:
        item_plan = _lower_from_item(item, schema)
        for col in item_plan.columns:
            # A correlated subquery that reuses an outer alias would make the
            # outer column shadow the inner one (the inverse of SQL scoping);
            # those queries go to the reference interpreter instead.
            if "." in col and col.split(".", 1)[0].lower() in outer_aliases:
                raise LoweringError(
                    f"correlated subquery reuses outer alias {col.split('.', 1)[0]!r}"
                )
            from_cols.append(col)
        plan = _cross(plan, item_plan)
    if plan is None:
        raise LoweringError("a FROM clause is required")

    if query.where is not None:
        plan = _apply_sql_predicates(plan, query.where, schema)

    if not project:
        return plan, tuple(from_cols)

    grouped = bool(query.group_by) or query.having is not None or any(
        e.contains_aggregate(item.expr) for item in query.select_items
    )
    if grouped:
        plan = _lower_grouped(query, plan, from_cols)
    else:
        plan = _sql_projection(query, plan, from_cols)

    if query.distinct:
        plan = DistinctP(plan)
    if query.order_by or query.limit is not None:
        plan = _sql_sort_limit(plan, query.order_by, query.limit)
    return plan, tuple(from_cols)


def _lower_from_item(item: Any, schema: DatabaseSchema) -> Plan:
    from repro.sql.ast import DerivedTable, Join, TableRef

    if isinstance(item, TableRef):
        try:
            rel = schema.relation(item.name)
        except SchemaError as exc:
            raise LoweringError(str(exc)) from exc
        binding = item.binding_name
        return ScanP(rel.name, tuple(f"{binding}.{a.name}" for a in rel.attributes))
    if isinstance(item, DerivedTable):
        sub = _lower_sql_query(item.query, schema)
        names = tuple(f"{item.alias}.{c.split('.')[-1]}" for c in sub.columns)
        return ProjectP(sub, tuple(e.Col(c) for c in sub.columns), _dedupe_names(names))
    if isinstance(item, Join):
        if item.natural or item.using:
            raise LoweringError("NATURAL JOIN / USING are not lowered; write the condition")
        if item.kind not in ("inner", "cross"):
            raise LoweringError(f"{item.kind.upper()} JOIN is not in the engine fragment")
        left = _lower_from_item(item.left, schema)
        right = _lower_from_item(item.right, schema)
        plan: Plan = JoinP(left, right, "cross")
        if item.condition is not None:
            if e.contains_subquery(item.condition):
                raise LoweringError("subqueries in JOIN conditions are not lowered")
            plan = FilterP(plan, item.condition)
        return plan
    raise LoweringError(f"unknown FROM item {type(item).__name__}")


def _apply_sql_predicates(plan: Plan, where: e.Expr, schema: DatabaseSchema) -> Plan:
    plain: list[e.Expr] = []
    for conjunct in e.conjuncts(where):
        if not e.contains_subquery(conjunct):
            plain.append(conjunct)
    if plain:
        plan = _filter(plan, e.conjunction(plain))
    for conjunct in e.conjuncts(where):
        if e.contains_subquery(conjunct):
            plan = _apply_subquery_conjunct(plan, conjunct, schema)
    return plan


def _apply_subquery_conjunct(plan: Plan, conjunct: e.Expr,
                             schema: DatabaseSchema) -> Plan:
    from repro.sql.ast import SelectQuery

    if isinstance(conjunct, e.Exists):
        if not isinstance(conjunct.query, SelectQuery):
            raise LoweringError("EXISTS over set operations is not lowered")
        sub = conjunct.query
        if sub.group_by or sub.having is not None or any(
                e.contains_aggregate(item.expr) for item in sub.select_items):
            # A grouped subquery's row count is not its FROM/WHERE row count
            # (an ungrouped aggregate yields one row even over empty input),
            # so a plain existence check would be wrong.
            raise LoweringError("aggregating EXISTS subqueries are not lowered")
        dependent, _ = _lower_select(sub, schema, base=plan, project=False)
        kind = "anti" if conjunct.negated else "semi"
        return JoinP(plan, dependent, kind,
                     left_keys=plan.columns, right_keys=plan.columns,
                     null_matches=True)
    if isinstance(conjunct, e.InSubquery):
        if not isinstance(conjunct.query, SelectQuery):
            raise LoweringError("IN over set operations is not lowered")
        sub = conjunct.query
        if sub.select_star or sub.star_qualifiers or len(sub.select_items) != 1:
            raise LoweringError("IN subqueries must select exactly one column")
        item = sub.select_items[0]
        if e.contains_aggregate(item.expr) or sub.group_by or sub.having is not None:
            raise LoweringError("aggregating IN subqueries are not lowered")
        dependent, _ = _lower_select(sub, schema, base=plan, project=False)
        dependent = _filter(dependent, e.Comparison(conjunct.operand, "=", item.expr))
        kind = "anti" if conjunct.negated else "semi"
        return JoinP(plan, dependent, kind,
                     left_keys=plan.columns, right_keys=plan.columns,
                     null_matches=True)
    raise LoweringError(
        f"predicate {type(conjunct).__name__} with a subquery is not in the engine fragment"
    )


def _sql_projection(query: Any, plan: Plan, from_cols: Sequence[str]) -> Plan:
    exprs: list[e.Expr] = []
    names: list[str] = []
    if query.select_star or query.star_qualifiers:
        for col in from_cols:
            alias, _, bare = col.rpartition(".")
            if query.select_star or alias in query.star_qualifiers:
                exprs.append(e.Col(col))
                names.append(bare)
    for i, item in enumerate(query.select_items):
        if e.contains_subquery(item.expr):
            raise LoweringError("subqueries in the SELECT list are not lowered")
        exprs.append(item.expr)
        names.append(item.output_name(i))
    if not exprs:
        raise LoweringError("empty SELECT list")
    return ProjectP(plan, tuple(exprs), _dedupe_names(names))


def _collect_aggregates(expr: e.Expr) -> list[e.FuncCall]:
    return [n for n in expr.walk() if isinstance(n, e.FuncCall) and n.is_aggregate]


def _replace_aggregates(expr: e.Expr, mapping: Mapping[e.FuncCall, str]) -> e.Expr:
    if isinstance(expr, e.FuncCall) and expr.is_aggregate:
        return e.Col(mapping[expr])
    if isinstance(expr, e.FuncCall):  # scalar function over an aggregate
        return e.FuncCall(expr.name,
                          tuple(_replace_aggregates(a, mapping) for a in expr.args),
                          expr.distinct)
    if isinstance(expr, e.Comparison):
        return e.Comparison(_replace_aggregates(expr.left, mapping), expr.op,
                            _replace_aggregates(expr.right, mapping))
    if isinstance(expr, e.BinOp):
        return e.BinOp(expr.op, _replace_aggregates(expr.left, mapping),
                       _replace_aggregates(expr.right, mapping))
    if isinstance(expr, e.Neg):
        return e.Neg(_replace_aggregates(expr.operand, mapping))
    if isinstance(expr, e.And):
        return e.And(tuple(_replace_aggregates(o, mapping) for o in expr.operands))
    if isinstance(expr, e.Or):
        return e.Or(tuple(_replace_aggregates(o, mapping) for o in expr.operands))
    if isinstance(expr, e.Not):
        return e.Not(_replace_aggregates(expr.operand, mapping))
    if isinstance(expr, e.IsNull):
        return e.IsNull(_replace_aggregates(expr.operand, mapping), expr.negated)
    if isinstance(expr, e.Between):
        return e.Between(_replace_aggregates(expr.operand, mapping),
                         _replace_aggregates(expr.low, mapping),
                         _replace_aggregates(expr.high, mapping), expr.negated)
    if isinstance(expr, e.InList):
        return e.InList(_replace_aggregates(expr.operand, mapping),
                        tuple(_replace_aggregates(i, mapping) for i in expr.items),
                        expr.negated)
    return expr


def _lower_grouped(query: Any, plan: Plan, from_cols: Sequence[str]) -> Plan:
    if query.select_star or query.star_qualifiers:
        raise LoweringError("SELECT * cannot be combined with GROUP BY / aggregates")
    for expr in query.group_by:
        if e.contains_subquery(expr) or e.contains_aggregate(expr):
            raise LoweringError("GROUP BY expressions must be plain")

    calls: list[e.FuncCall] = []
    for item in query.select_items:
        calls.extend(_collect_aggregates(item.expr))
    if query.having is not None:
        if e.contains_subquery(query.having):
            raise LoweringError("subqueries in HAVING are not lowered")
        calls.extend(_collect_aggregates(query.having))
    mapping: dict[e.FuncCall, str] = {}
    aggregates: list[tuple[e.FuncCall, str]] = []
    for call in calls:
        if call not in mapping:
            name = f"__agg{len(mapping)}"
            mapping[call] = name
            aggregates.append((call, name))

    out: Plan = AggregateP(plan, tuple(query.group_by), tuple(aggregates))
    if query.having is not None:
        out = FilterP(out, _replace_aggregates(query.having, mapping))
    exprs = tuple(_replace_aggregates(item.expr, mapping) for item in query.select_items)
    names = _dedupe_names([item.output_name(i) for i, item in enumerate(query.select_items)])
    return ProjectP(out, exprs, names)


def _sql_sort_limit(plan: Plan, order_by: Sequence[Any], limit: int | None) -> Plan:
    keys = []
    for item in order_by:
        expr = item.expr
        if e.contains_subquery(expr) or e.contains_aggregate(expr):
            raise LoweringError("ORDER BY expressions must be plain")
        # The reference orders over *output* columns, retrying a qualified
        # reference by its bare name; mirror that by stripping qualifiers
        # that do not resolve against the output.
        for col in expr.columns():
            if not has_column(plan.columns, col.name, col.qualifier):
                if col.qualifier and has_column(plan.columns, col.name):
                    expr = e.map_columns(
                        expr, lambda c: e.Col(c.name) if c == col else c)  # noqa: B023
                else:
                    raise LoweringError(
                        f"ORDER BY column {col.qualified()} does not resolve "
                        "against the output"
                    )
        keys.append((expr, item.ascending))
    return SortLimitP(plan, tuple(keys), limit)


# ---------------------------------------------------------------------------
# Relational Algebra
# ---------------------------------------------------------------------------

def lower_ra(expr: "Any | str", schema: DatabaseSchema, *, bag: bool = False) -> Plan:
    """Lower an RA expression (text or AST); set semantics by default."""
    from repro.ra.ast import RAError

    if isinstance(expr, str):
        from repro.ra.parser import parse_ra

        expr = parse_ra(expr)
    try:
        plan = _lower_ra(expr, schema, bag=bag)
    except (RAError, SchemaError) as exc:
        raise LoweringError(str(exc)) from exc
    if not bag:
        plan = DistinctP(plan)
    return plan


def _lower_ra(expr: Any, schema: DatabaseSchema, *, bag: bool) -> Plan:
    from repro.ra import ast as ra
    from repro.ra.ast import output_schema

    def names_of(node: Any) -> tuple[str, ...]:
        return output_schema(node, schema).attribute_names

    if isinstance(expr, ra.RelationRef):
        return ScanP(schema.relation(expr.name).name, names_of(expr))
    if isinstance(expr, ra.Rename):
        inner = _lower_ra(expr.input, schema, bag=bag)
        return ProjectP(inner, tuple(e.Col(c) for c in inner.columns), names_of(expr))
    if isinstance(expr, ra.Selection):
        return FilterP(_lower_ra(expr.input, schema, bag=bag), expr.condition)
    if isinstance(expr, ra.Projection):
        inner = _lower_ra(expr.input, schema, bag=bag)
        exprs = []
        for column in expr.columns:
            qualifier, name = ra._split_reference(column)
            exprs.append(e.Col(name, qualifier))
        plan: Plan = ProjectP(inner, tuple(exprs), names_of(expr))
        return plan if bag else DistinctP(plan)
    if isinstance(expr, ra.ThetaJoin):
        joined = JoinP(_lower_ra(expr.left, schema, bag=bag),
                       _lower_ra(expr.right, schema, bag=bag), "cross")
        # The concatenated schema prefixes clashing attribute names; re-expose
        # every position under those names before filtering (positional, since
        # the raw concatenation may contain duplicates).
        renamed = _project_positions(joined, range(len(joined.columns)), names_of(expr))
        return FilterP(renamed, expr.condition)
    if isinstance(expr, ra.Product):
        joined = JoinP(_lower_ra(expr.left, schema, bag=bag),
                       _lower_ra(expr.right, schema, bag=bag), "cross")
        names = names_of(expr)
        if joined.columns == names:
            return joined
        return _project_positions(joined, range(len(joined.columns)), names)
    if isinstance(expr, ra.NaturalJoin):
        left = _lower_ra(expr.left, schema, bag=bag)
        right = _lower_ra(expr.right, schema, bag=bag)
        shared = [c for c in left.columns if c in right.columns]
        kept = [c for c in right.columns if c not in shared]
        joined = JoinP(left, right, "inner",
                       left_keys=tuple(shared), right_keys=tuple(shared),
                       null_matches=True)
        if not kept:
            return _project_positions(joined, range(len(left.columns)), left.columns)
        return _project_positions(
            joined,
            list(range(len(left.columns)))
            + [len(left.columns) + right.columns.index(c) for c in kept],
            names_of(expr),
        )
    if isinstance(expr, (ra.SemiJoin, ra.AntiJoin)):
        left = _lower_ra(expr.left, schema, bag=bag)
        right = _lower_ra(expr.right, schema, bag=bag)
        kind = "semi" if isinstance(expr, ra.SemiJoin) else "anti"
        if expr.condition is None:
            shared = [c for c in left.columns if c in right.columns]
            return JoinP(left, right, kind,
                         left_keys=tuple(shared), right_keys=tuple(shared),
                         null_matches=True)
        return JoinP(left, right, kind, residual=expr.condition)
    if isinstance(expr, ra.Union):
        plan = SetOpP("union", _lower_ra(expr.left, schema, bag=bag),
                      _lower_ra(expr.right, schema, bag=bag), distinct=not bag)
        return plan
    if isinstance(expr, ra.Intersection):
        return SetOpP("intersect", _lower_ra(expr.left, schema, bag=bag),
                      _lower_ra(expr.right, schema, bag=bag), distinct=True)
    if isinstance(expr, ra.Difference):
        return SetOpP("except", _lower_ra(expr.left, schema, bag=bag),
                      _lower_ra(expr.right, schema, bag=bag), distinct=True)
    if isinstance(expr, ra.Division):
        return DivideP(_lower_ra(expr.left, schema, bag=False),
                       _lower_ra(expr.right, schema, bag=False))
    if isinstance(expr, ra.Distinct):
        return DistinctP(_lower_ra(expr.input, schema, bag=bag))
    if isinstance(expr, ra.GroupBy):
        # The reference evaluator always feeds GroupBy a bag.
        inner = _lower_ra(expr.input, schema, bag=True)
        group_exprs = []
        group_positions = []
        for column in expr.group_columns:
            qualifier, name = ra._split_reference(column)
            group_exprs.append(e.Col(name, qualifier))
            group_positions.append(resolve_column(inner.columns, name, qualifier))
        agg = AggregateP(inner, tuple(group_exprs), tuple(expr.aggregates))
        return _project_positions(
            agg,
            group_positions
            + list(range(len(inner.columns), len(inner.columns) + len(expr.aggregates))),
            names_of(expr),
        )
    raise LoweringError(f"unhandled RA node {type(expr).__name__}")


class _PositionCol(e.Expr):
    """Internal marker expression: fetch an input column by position."""

    __slots__ = ("position",)

    def __init__(self, position: int) -> None:
        self.position = position

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _PositionCol) and other.position == self.position

    def __hash__(self) -> int:
        return hash(("_PositionCol", self.position))

    def walk(self):
        yield self

    def children(self) -> tuple:
        return ()


def _project_positions(plan: Plan, positions: Sequence[int],
                       names: Sequence[str]) -> Plan:
    return ProjectP(plan, tuple(_PositionCol(p) for p in positions),
                    _dedupe_names(names))


# ---------------------------------------------------------------------------
# Tuple Relational Calculus
# ---------------------------------------------------------------------------

def lower_trc(query: "Any | str", schema: DatabaseSchema) -> Plan:
    """Lower a safe TRC query (text or AST) to a plan (set semantics)."""
    from repro.trc.ast import (
        AttrRef,
        ConstTerm,
        TRCError,
        free_tuple_variables,
        variable_ranges,
    )

    if isinstance(query, str):
        from repro.trc.parser import parse_trc

        query = parse_trc(query)

    try:
        body = _alpha_rename_trc(query.body)
        ranges = variable_ranges(body)
    except TRCError as exc:
        raise LoweringError(str(exc)) from exc
    body = _rewrite_trc(body)

    plan: Plan | None = None
    for var in free_tuple_variables(body):
        if var.name not in ranges:
            raise LoweringError(f"free tuple variable {var.name!r} has no relation atom")
        plan = _cross(plan, _trc_scan(var.name, ranges, schema))
    if plan is None:
        raise LoweringError("TRC query has no free tuple variables")
    plan = _apply_trc(plan, body, ranges, schema)

    exprs: list[e.Expr] = []
    for item in query.head:
        if isinstance(item.term, AttrRef):
            exprs.append(e.Col(item.term.attr, item.term.var.name))
        elif isinstance(item.term, ConstTerm):
            exprs.append(e.Const(item.term.value))
        else:
            raise LoweringError(f"unsupported head term {item.term!r}")
    names = _dedupe_names([item.output_name(i) for i, item in enumerate(query.head)])
    return DistinctP(ProjectP(plan, tuple(exprs), names))


def _trc_scan(var_name: str, ranges: Mapping[str, str], schema: DatabaseSchema) -> Plan:
    try:
        rel = schema.relation(ranges[var_name])
    except SchemaError as exc:
        raise LoweringError(str(exc)) from exc
    return ScanP(rel.name, tuple(f"{var_name}.{a.name}" for a in rel.attributes))


def _alpha_rename_trc(formula: Any) -> Any:
    """Rename quantifier-bound tuple variables apart (so sibling scopes that
    reuse a name compile to distinct plan columns)."""
    from repro.trc import ast as t

    used: set[str] = {v.name for v in t.all_tuple_variables(formula)}
    counter = itertools.count(1)

    def fresh(name: str) -> str:
        while True:
            candidate = f"{name}_{next(counter)}"
            if candidate not in used:
                used.add(candidate)
                return candidate

    def rename(node: Any, env: Mapping[str, str], seen: set[str]) -> Any:
        if isinstance(node, t.RelAtom):
            name = env.get(node.var.name, node.var.name)
            return t.RelAtom(node.relation, t.TupleVar(name))
        if isinstance(node, t.TRCCompare):
            def term(x: Any) -> Any:
                if isinstance(x, t.AttrRef):
                    return t.AttrRef(t.TupleVar(env.get(x.var.name, x.var.name)), x.attr)
                return x
            return t.TRCCompare(term(node.left), node.op, term(node.right))
        if isinstance(node, (t.TRCExists, t.TRCForAll)):
            new_env = dict(env)
            new_vars = []
            for var in node.variables:
                if var.name in seen:
                    new_name = fresh(var.name)
                else:
                    new_name = var.name
                seen.add(new_name)
                new_env[var.name] = new_name
                new_vars.append(t.TupleVar(new_name))
            body = rename(node.body, new_env, seen)
            cls = t.TRCExists if isinstance(node, t.TRCExists) else t.TRCForAll
            return cls(tuple(new_vars), body)
        if isinstance(node, t.TRCAnd):
            return t.TRCAnd(tuple(rename(o, env, seen) for o in node.operands))
        if isinstance(node, t.TRCOr):
            return t.TRCOr(tuple(rename(o, env, seen) for o in node.operands))
        if isinstance(node, t.TRCNot):
            return t.TRCNot(rename(node.operand, env, seen))
        if isinstance(node, t.TRCImplies):
            return t.TRCImplies(rename(node.antecedent, env, seen),
                                rename(node.consequent, env, seen))
        return node

    from repro.trc.ast import free_tuple_variables

    seen = {v.name for v in free_tuple_variables(formula)}
    return rename(formula, {}, seen)


def _rewrite_trc(formula: Any) -> Any:
    """Eliminate →/∀ and push negations down to quantifiers and leaves."""
    from repro.trc import ast as t

    def elim(node: Any) -> Any:
        if isinstance(node, t.TRCImplies):
            return t.TRCOr((t.TRCNot(elim(node.antecedent)), elim(node.consequent)))
        if isinstance(node, t.TRCForAll):
            return t.TRCNot(t.TRCExists(node.variables, t.TRCNot(elim(node.body))))
        if isinstance(node, t.TRCAnd):
            return t.TRCAnd(tuple(elim(o) for o in node.operands))
        if isinstance(node, t.TRCOr):
            return t.TRCOr(tuple(elim(o) for o in node.operands))
        if isinstance(node, t.TRCNot):
            return t.TRCNot(elim(node.operand))
        if isinstance(node, t.TRCExists):
            return t.TRCExists(node.variables, elim(node.body))
        return node

    def push(node: Any, negate: bool) -> Any:
        if isinstance(node, t.TRCTrue):
            return t.TRCTrue(node.value != negate)
        if isinstance(node, (t.RelAtom, t.TRCCompare)):
            return t.TRCNot(node) if negate else node
        if isinstance(node, t.TRCNot):
            return push(node.operand, not negate)
        if isinstance(node, t.TRCAnd):
            parts = tuple(push(o, negate) for o in node.operands)
            return t.TRCOr(parts) if negate else t.TRCAnd(parts)
        if isinstance(node, t.TRCOr):
            parts = tuple(push(o, negate) for o in node.operands)
            return t.TRCAnd(parts) if negate else t.TRCOr(parts)
        if isinstance(node, t.TRCExists):
            inner = t.TRCExists(node.variables, push(node.body, False))
            return t.TRCNot(inner) if negate else inner
        raise LoweringError(f"unexpected TRC node {type(node).__name__}")

    return push(elim(formula), False)


class _NotLocal(Exception):
    """Internal: a formula is not a plain predicate over bound columns."""


def _trc_conjuncts(formula: Any) -> list[Any]:
    from repro.trc import ast as t

    if isinstance(formula, t.TRCAnd):
        out: list[Any] = []
        for operand in formula.operands:
            out.extend(_trc_conjuncts(operand))
        return out
    if isinstance(formula, t.TRCTrue) and formula.value:
        return []
    return [formula]


def _trc_var_bound(columns: Sequence[str], var_name: str) -> bool:
    prefix = f"{var_name.lower()}."
    return any(c.lower().startswith(prefix) for c in columns)


def _trc_local_expr(formula: Any, columns: Sequence[str]) -> e.Expr:
    from repro.trc import ast as t

    if isinstance(formula, t.TRCTrue):
        return e.BoolConst(formula.value)
    if isinstance(formula, t.RelAtom):
        if _trc_var_bound(columns, formula.var.name):
            return e.BoolConst(True)
        raise _NotLocal()
    if isinstance(formula, t.TRCCompare):
        def term(x: Any) -> e.Expr:
            if isinstance(x, t.AttrRef):
                if not _trc_var_bound(columns, x.var.name):
                    raise _NotLocal()
                return e.Col(x.attr, x.var.name)
            return e.Const(x.value)
        return e.Comparison(term(formula.left), formula.op, term(formula.right))
    if isinstance(formula, t.TRCAnd):
        return e.conjunction([_trc_local_expr(o, columns) for o in formula.operands])
    if isinstance(formula, t.TRCOr):
        return e.disjunction([_trc_local_expr(o, columns) for o in formula.operands])
    if isinstance(formula, t.TRCNot):
        inner = _trc_local_expr(formula.operand, columns)
        if isinstance(inner, e.BoolConst):
            return e.BoolConst(not inner.value)
        return e.Not(inner)
    raise _NotLocal()


def _apply_trc(plan: Plan, formula: Any, ranges: Mapping[str, str],
               schema: DatabaseSchema) -> Plan:
    """Filter/extend ``plan`` so its rows satisfy ``formula``.

    Positive relation atoms introduce guard scans for not-yet-bound
    variables; quantifiers compile to dependent semi/anti joins keyed on the
    current plan's own columns.
    """
    from repro.trc import ast as t

    conjuncts = _trc_conjuncts(formula)

    # Guards first: they bind variables the other conjuncts reference.
    for conjunct in conjuncts:
        if isinstance(conjunct, t.RelAtom) and not _trc_var_bound(plan.columns, conjunct.var.name):
            plan = _cross(plan, _trc_scan(conjunct.var.name, ranges, schema))

    deferred: list[Any] = []
    local_parts: list[e.Expr] = []
    for conjunct in conjuncts:
        try:
            local_parts.append(_trc_local_expr(conjunct, plan.columns))
        except _NotLocal:
            deferred.append(conjunct)
    if local_parts:
        plan = _filter(plan, e.conjunction(local_parts))

    for conjunct in deferred:
        plan = _apply_trc_quantified(plan, conjunct, ranges, schema)
    return plan


def _apply_trc_quantified(plan: Plan, conjunct: Any, ranges: Mapping[str, str],
                          schema: DatabaseSchema) -> Plan:
    from repro.trc import ast as t

    if isinstance(conjunct, t.TRCExists):
        dependent = _trc_extend(plan, conjunct, ranges, schema)
        return JoinP(plan, dependent, "semi",
                     left_keys=plan.columns, right_keys=plan.columns,
                     null_matches=True)
    if isinstance(conjunct, t.TRCNot):
        inner = conjunct.operand
        if isinstance(inner, t.TRCExists):
            dependent = _trc_extend(plan, inner, ranges, schema)
            return JoinP(plan, dependent, "anti",
                         left_keys=plan.columns, right_keys=plan.columns,
                         null_matches=True)
        raise LoweringError(
            f"negation of {type(inner).__name__} is not in the safe TRC fragment"
        )
    if isinstance(conjunct, t.TRCOr):
        branches = []
        for operand in conjunct.operands:
            branch = _apply_trc(plan, operand, ranges, schema)
            branches.append(_project_to(branch, plan.columns))
        out = branches[0]
        for branch in branches[1:]:
            out = SetOpP("union", out, branch, distinct=True)
        return out
    raise LoweringError(f"cannot lower TRC conjunct {type(conjunct).__name__}")


def _trc_extend(plan: Plan, quantified: Any, ranges: Mapping[str, str],
                schema: DatabaseSchema) -> Plan:
    """The dependent side of a quantifier: plan × ranges of the bound
    variables, filtered by the quantifier body."""
    extended = plan
    for var in quantified.variables:
        if var.name not in ranges:
            raise LoweringError(
                f"quantified variable {var.name!r} has no relation atom (unsafe)"
            )
        if not _trc_var_bound(extended.columns, var.name):
            extended = _cross(extended, _trc_scan(var.name, ranges, schema))
    return _apply_trc(extended, quantified.body, ranges, schema)


# ---------------------------------------------------------------------------
# Domain Relational Calculus
# ---------------------------------------------------------------------------

def lower_drc(query: "Any | str", schema: DatabaseSchema) -> Plan:
    """Lower a safe (guarded) DRC query (text or AST) to a plan."""
    from repro.drc.ast import DRCError
    from repro.drc.evaluate import _rewrite as drc_rewrite
    from repro.logic.terms import Const as LConst, Var as LVar

    if isinstance(query, str):
        from repro.drc.parser import parse_drc

        query = parse_drc(query)

    try:
        body = drc_rewrite(_alpha_rename_drc(query.body))
    except DRCError as exc:
        raise LoweringError(str(exc)) from exc

    plan = _apply_drc(None, body, schema)
    if plan is None:
        raise LoweringError("DRC query has no positive relation atoms")

    exprs: list[e.Expr] = []
    for term in query.head:
        if isinstance(term, LVar):
            if not has_column(plan.columns, term.name):
                raise LoweringError(
                    f"head variable {term.name!r} is not bound by a positive atom"
                )
            exprs.append(e.Col(term.name))
        elif isinstance(term, LConst):
            exprs.append(e.Const(term.value))
        else:
            raise LoweringError(f"unsupported head term {term!r}")
    names = _dedupe_names(query.output_names())
    return DistinctP(ProjectP(plan, tuple(exprs), names))


def _alpha_rename_drc(formula: Any) -> Any:
    """Rename quantifier-bound domain variables apart (so sibling scopes that
    reuse a name compile to distinct plan columns)."""
    from repro.logic import formula as f
    from repro.logic.formula import free_variables
    from repro.logic.terms import Var as LVar

    used: set[str] = set()
    for node in _walk_drc(formula):
        if isinstance(node, f.Atom):
            used.update(t.name for t in node.terms if isinstance(t, LVar))
        elif isinstance(node, f.Compare):
            used.update(t.name for t in (node.left, node.right) if isinstance(t, LVar))
        elif isinstance(node, (f.Exists, f.ForAll)):
            used.update(v.name for v in node.variables)
    counter = itertools.count(1)

    def fresh(name: str) -> str:
        while True:
            candidate = f"{name}_{next(counter)}"
            if candidate not in used:
                used.add(candidate)
                return candidate

    def rename(node: Any, env: Mapping[str, str], seen: set[str]) -> Any:
        if isinstance(node, f.Truth):
            return node
        if isinstance(node, f.Atom):
            return f.Atom(node.predicate, tuple(
                LVar(env.get(t.name, t.name)) if isinstance(t, LVar) else t
                for t in node.terms))
        if isinstance(node, f.Compare):
            def term(x: Any) -> Any:
                if isinstance(x, LVar):
                    return LVar(env.get(x.name, x.name))
                return x
            return f.Compare(term(node.left), node.op, term(node.right))
        if isinstance(node, f.And):
            return f.And(tuple(rename(o, env, seen) for o in node.operands))
        if isinstance(node, f.Or):
            return f.Or(tuple(rename(o, env, seen) for o in node.operands))
        if isinstance(node, f.Not):
            return f.Not(rename(node.operand, env, seen))
        if isinstance(node, f.Implies):
            return f.Implies(rename(node.antecedent, env, seen),
                             rename(node.consequent, env, seen))
        if isinstance(node, f.Iff):
            return f.Iff(rename(node.left, env, seen), rename(node.right, env, seen))
        if isinstance(node, (f.Exists, f.ForAll)):
            new_env = dict(env)
            new_vars = []
            for var in node.variables:
                new_name = fresh(var.name) if var.name in seen else var.name
                seen.add(new_name)
                new_env[var.name] = new_name
                new_vars.append(LVar(new_name))
            body = rename(node.body, new_env, seen)
            cls = f.Exists if isinstance(node, f.Exists) else f.ForAll
            return cls(tuple(new_vars), body)
        raise LoweringError(f"unexpected DRC node {type(node).__name__}")

    seen = {v.name for v in free_variables(formula)}
    return rename(formula, {}, seen)


def _walk_drc(formula: Any):
    yield formula
    for child in formula.children():
        yield from _walk_drc(child)


def _apply_drc(plan: Plan | None, formula: Any, schema: DatabaseSchema) -> Plan | None:
    from repro.logic import formula as f

    conjuncts = _drc_conjuncts(formula)

    # Positive atoms first: they bind variables.
    for conjunct in conjuncts:
        if isinstance(conjunct, f.Atom):
            plan = _drc_join_atom(plan, conjunct, schema)

    deferred: list[Any] = []
    local_parts: list[e.Expr] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, f.Atom):
            continue
        try:
            local_parts.append(_drc_local_expr(conjunct, () if plan is None else plan.columns))
        except _NotLocal:
            deferred.append(conjunct)
    if local_parts:
        if plan is None:
            raise LoweringError("comparison over unguarded variables (unsafe DRC)")
        plan = _filter(plan, e.conjunction(local_parts))

    for conjunct in deferred:
        plan = _apply_drc_quantified(plan, conjunct, schema)
    return plan


def _drc_conjuncts(formula: Any) -> list[Any]:
    from repro.logic import formula as f

    if isinstance(formula, f.And):
        out: list[Any] = []
        for operand in formula.operands:
            out.extend(_drc_conjuncts(operand))
        return out
    if isinstance(formula, f.Truth) and formula.value:
        return []
    return [formula]


def _drc_atom_plan(atom: Any, schema: DatabaseSchema) -> tuple[Plan, list[str]]:
    """A plan for one positive atom, projected onto its variables."""
    from repro.logic.terms import Const as LConst, Var as LVar

    try:
        rel = schema.relation(atom.predicate)
    except SchemaError as exc:
        raise LoweringError(str(exc)) from exc
    if rel.arity != len(atom.terms):
        raise LoweringError(
            f"atom {atom.predicate} has {len(atom.terms)} terms but the relation "
            f"has arity {rel.arity}"
        )
    temp = tuple(f"__{atom.predicate.lower()}.{i}" for i in range(rel.arity))
    plan: Plan = ScanP(rel.name, temp)
    conditions: list[e.Expr] = []
    var_first: dict[str, int] = {}
    for i, term in enumerate(atom.terms):
        if isinstance(term, LConst):
            conditions.append(e.Comparison(e.Col(temp[i]), "=", e.Const(term.value)))
        elif isinstance(term, LVar):
            if term.name in var_first:
                conditions.append(e.Comparison(e.Col(temp[i]), "=",
                                               e.Col(temp[var_first[term.name]])))
            else:
                var_first[term.name] = i
        else:
            raise LoweringError(f"unsupported atom term {term!r}")
    if conditions:
        plan = FilterP(plan, e.conjunction(conditions))
    variables = list(var_first)
    if not variables:
        # A fully-constant atom: keep a single marker column so the plan has
        # a schema; membership is what matters.
        return ProjectP(plan, (e.Col(temp[0]),), (f"__{atom.predicate.lower()}_witness",)), []
    plan = ProjectP(plan, tuple(e.Col(temp[var_first[v]]) for v in variables),
                    tuple(variables))
    return plan, variables


def _drc_join_atom(plan: Plan | None, atom: Any, schema: DatabaseSchema) -> Plan:
    atom_plan, variables = _drc_atom_plan(atom, schema)
    if plan is None:
        return atom_plan
    shared = [v for v in variables if has_column(plan.columns, v)]
    new = [v for v in variables if v not in shared]
    if not new:
        # Pure membership test.
        return JoinP(plan, atom_plan, "semi",
                     left_keys=tuple(shared), right_keys=tuple(shared),
                     null_matches=True)
    joined = JoinP(plan, atom_plan, "inner",
                   left_keys=tuple(shared), right_keys=tuple(shared),
                   null_matches=True)
    positions = list(range(len(plan.columns))) + [
        len(plan.columns) + variables.index(v) for v in new
    ]
    return _project_positions(joined, positions, tuple(plan.columns) + tuple(new))


def _drc_local_expr(formula: Any, columns: Sequence[str]) -> e.Expr:
    from repro.logic import formula as f
    from repro.logic.terms import Const as LConst, Var as LVar

    if isinstance(formula, f.Truth):
        return e.BoolConst(formula.value)
    if isinstance(formula, f.Compare):
        def term(x: Any) -> e.Expr:
            if isinstance(x, LVar):
                if not has_column(columns, x.name):
                    raise _NotLocal()
                return e.Col(x.name)
            if isinstance(x, LConst):
                return e.Const(x.value)
            raise _NotLocal()
        return e.Comparison(term(formula.left), formula.op, term(formula.right))
    if isinstance(formula, f.And):
        return e.conjunction([_drc_local_expr(o, columns) for o in formula.operands])
    if isinstance(formula, f.Or):
        return e.disjunction([_drc_local_expr(o, columns) for o in formula.operands])
    if isinstance(formula, f.Not):
        inner = _drc_local_expr(formula.operand, columns)
        if isinstance(inner, e.BoolConst):
            return e.BoolConst(not inner.value)
        return e.Not(inner)
    raise _NotLocal()


def _apply_drc_quantified(plan: Plan | None, conjunct: Any,
                          schema: DatabaseSchema) -> Plan:
    from repro.logic import formula as f

    if isinstance(conjunct, f.Exists):
        extended = _apply_drc(plan, conjunct.body, schema)
        if extended is None:
            raise LoweringError("existential body binds no variables (unsafe DRC)")
        if plan is None:
            return extended
        return extended
    if isinstance(conjunct, f.Not):
        if plan is None:
            raise LoweringError("top-level negation is unsafe DRC")
        inner = conjunct.operand
        if isinstance(inner, f.Exists):
            dependent = _apply_drc(plan, inner.body, schema)
            assert dependent is not None
            return JoinP(plan, dependent, "anti",
                         left_keys=plan.columns, right_keys=plan.columns,
                         null_matches=True)
        if isinstance(inner, f.Atom):
            atom_plan, variables = _drc_atom_plan(inner, schema)
            if variables and not all(has_column(plan.columns, v) for v in variables):
                raise LoweringError(
                    f"negated atom {inner.predicate} has unguarded variables"
                )
            return JoinP(plan, atom_plan, "anti",
                         left_keys=tuple(variables), right_keys=tuple(variables),
                         null_matches=True)
        raise LoweringError(
            f"negation of {type(inner).__name__} is not in the guarded DRC fragment"
        )
    if isinstance(conjunct, f.Or):
        if plan is None:
            branches = [_apply_drc(None, operand, schema) for operand in conjunct.operands]
            if any(b is None for b in branches):
                raise LoweringError("disjunct binds no variables (unsafe DRC)")
            shared = [c for c in branches[0].columns
                      if all(has_column(b.columns, c) for b in branches[1:])]
            if not shared:
                raise LoweringError("disjuncts share no variables (unsafe DRC)")
            out = _project_to(branches[0], shared)
            for branch in branches[1:]:
                out = SetOpP("union", out, _project_to(branch, shared), distinct=True)
            return out
        branches = []
        for operand in conjunct.operands:
            branch = _apply_drc(plan, operand, schema)
            assert branch is not None
            branches.append(_project_to(branch, plan.columns))
        out = branches[0]
        for branch in branches[1:]:
            out = SetOpP("union", out, branch, distinct=True)
        return out
    raise LoweringError(f"cannot lower DRC conjunct {type(conjunct).__name__}")


# ---------------------------------------------------------------------------
# Datalog (per-rule; the fixpoint loop lives in engine.execute)
# ---------------------------------------------------------------------------

def lower_datalog_rule(rule: Any, arities: Mapping[str, int],
                       scan_overrides: Mapping[int, str] | None = None) -> Plan:
    """Lower one Datalog rule body to a plan producing head rows.

    ``arities`` maps (lower-cased) predicate names to arities — needed for
    IDB predicates that may be empty when the plan is built.
    ``scan_overrides`` maps *positions in the rule body* to replacement
    relation names; the semi-naive driver uses this to point one occurrence
    of a recursive predicate at its delta relation.
    """
    from repro.datalog.ast import BuiltinComparison, Literal
    from repro.logic.terms import Const as LConst, Var as LVar

    overrides = scan_overrides or {}
    plan: Plan | None = None

    # Positive literals, in body order.
    for position, item in enumerate(rule.body):
        if not (isinstance(item, Literal) and not item.negated):
            continue
        relation = overrides.get(position, item.predicate)
        plan = _datalog_join_literal(plan, item, relation, arities)

    # Comparisons, then negated literals (all their variables are bound by
    # the positive part — rule safety guarantees it).
    for item in rule.body:
        if isinstance(item, BuiltinComparison):
            if plan is None:
                raise LoweringError("comparison with no positive literals (unsafe rule)")
            plan = _filter(plan, e.Comparison(
                _datalog_term_expr(item.left, plan.columns),
                item.op,
                _datalog_term_expr(item.right, plan.columns),
            ))
    for position, item in enumerate(rule.body):
        if isinstance(item, Literal) and item.negated:
            if plan is None:
                raise LoweringError("negated literal with no positive literals (unsafe rule)")
            atom_plan, variables = _datalog_literal_plan(
                item, overrides.get(position, item.predicate), arities)
            if not all(has_column(plan.columns, v) for v in variables):
                raise LoweringError(
                    f"negated literal {item.predicate} has unbound variables"
                )
            plan = JoinP(plan, atom_plan, "anti",
                         left_keys=tuple(variables), right_keys=tuple(variables),
                         null_matches=True)

    # Head projection.
    exprs: list[e.Expr] = []
    for term in rule.head.terms:
        if isinstance(term, LVar):
            if plan is None or not has_column(plan.columns, term.name):
                raise LoweringError(
                    f"head variable {term.name} of {rule.head.predicate} is unbound"
                )
            exprs.append(e.Col(term.name))
        elif isinstance(term, LConst):
            exprs.append(e.Const(term.value))
        else:
            raise LoweringError(f"unsupported head term {term!r}")
    if plan is None:
        raise LoweringError("facts are materialised directly, not lowered")
    names = _dedupe_names([f"col{i + 1}" for i in range(len(exprs))])
    return DistinctP(ProjectP(plan, tuple(exprs), names))


def _datalog_literal_plan(literal: Any, relation: str,
                          arities: Mapping[str, int]) -> tuple[Plan, list[str]]:
    from repro.logic.terms import Const as LConst, Var as LVar

    arity = arities.get(literal.predicate.lower())
    if arity is None:
        raise LoweringError(f"unknown predicate {literal.predicate!r}")
    if arity != literal.arity:
        raise LoweringError(
            f"literal {literal.predicate} has arity {literal.arity}, expected {arity}"
        )
    temp = tuple(f"__{literal.predicate.lower()}.{i}" for i in range(arity))
    plan: Plan = ScanP(relation, temp)
    conditions: list[e.Expr] = []
    var_first: dict[str, int] = {}
    for i, term in enumerate(literal.terms):
        if isinstance(term, LConst):
            conditions.append(e.Comparison(e.Col(temp[i]), "=", e.Const(term.value)))
        elif isinstance(term, LVar):
            if term.name in var_first:
                conditions.append(e.Comparison(e.Col(temp[i]), "=",
                                               e.Col(temp[var_first[term.name]])))
            else:
                var_first[term.name] = i
        else:
            raise LoweringError(f"unsupported literal term {term!r}")
    if conditions:
        plan = FilterP(plan, e.conjunction(conditions))
    variables = list(var_first)
    if not variables:
        return ProjectP(plan, (e.Col(temp[0]) if temp else e.Const(1),),
                        (f"__{literal.predicate.lower()}_witness",)), []
    plan = ProjectP(plan, tuple(e.Col(temp[var_first[v]]) for v in variables),
                    tuple(variables))
    return plan, variables


def _datalog_join_literal(plan: Plan | None, literal: Any, relation: str,
                          arities: Mapping[str, int]) -> Plan:
    literal_plan, variables = _datalog_literal_plan(literal, relation, arities)
    if plan is None:
        return literal_plan
    shared = [v for v in variables if has_column(plan.columns, v)]
    new = [v for v in variables if v not in shared]
    if not new:
        return JoinP(plan, literal_plan, "semi",
                     left_keys=tuple(shared), right_keys=tuple(shared),
                     null_matches=True)
    joined = JoinP(plan, literal_plan, "inner",
                   left_keys=tuple(shared), right_keys=tuple(shared),
                   null_matches=True)
    positions = list(range(len(plan.columns))) + [
        len(plan.columns) + variables.index(v) for v in new
    ]
    return _project_positions(joined, positions, tuple(plan.columns) + tuple(new))


def _datalog_term_expr(term: Any, columns: Sequence[str]) -> e.Expr:
    from repro.logic.terms import Const as LConst, Var as LVar

    if isinstance(term, LVar):
        if not has_column(columns, term.name):
            raise LoweringError(f"comparison variable {term.name} is unbound")
        return e.Col(term.name)
    if isinstance(term, LConst):
        return e.Const(term.value)
    raise LoweringError(f"unsupported term {term!r}")
