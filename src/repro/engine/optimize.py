"""Rule-based optimization of logical plans.

Three families of rewrites, applied in order by :func:`optimize`:

1. **Predicate pushdown** — filters move through projections (when the
   referenced columns are pure renamings), below distinct, into both branches
   of set operations, and into the inputs of joins; conjuncts that straddle a
   join stay at the join as its residual condition.
2. **Join planning** — equality conjuncts ``left.col = right.col`` left at a
   join are promoted to hash keys, and maximal trees of inner/cross joins are
   flattened and re-ordered greedily by *estimated cost*: each step joins the
   leaf whose (statistics-driven) estimated result is smallest, using the
   per-attribute distinct counts and min/max profiles of
   :mod:`repro.engine.stats`, with a final projection restoring the original
   column order.  Delta relations of the semi-naive Datalog fixpoint are
   estimated tiny, which seeds each delta-variant plan at the delta
   occurrence — the semi-join reduction of classical semi-naive evaluation.
3. **Common subexpression elimination** — structurally identical subtrees are
   interned to a single object.  The executor memoizes results per plan
   value, so a deduplicated subtree (for example the outer plan that a
   dependent join embeds in its right side) is evaluated exactly once.

All rewrites are semantics-preserving for the plans the lowerers emit; the
differential tests in ``tests/test_engine.py`` check optimized and
unoptimized plans against all five reference interpreters.
"""

from __future__ import annotations


from repro.data.database import Database
from repro.expr import ast as e
from repro.engine.plan import (
    AggregateP,
    DeltaScanP,
    DistinctP,
    DivideP,
    FilterP,
    JoinP,
    Plan,
    PlanError,
    ProjectP,
    ScanP,
    SetOpP,
    SortLimitP,
    has_column,
    resolve_column,
)
from repro.engine.stats import StatsCatalog, estimate_rows
from repro.engine.verify import maybe_verify

__all__ = [
    "common_subplan_count",
    "eliminate_common_subexpressions",
    "estimate_rows",
    "optimize",
    "promote_hash_keys",
    "push_down_filters",
    "reorder_joins",
]


def optimize(plan: Plan, db: Database | None = None, *,
             stats: StatsCatalog | None = None) -> Plan:
    """Apply all rewrite families; ``db`` enables cost-based reordering.

    Pass a shared :class:`StatsCatalog` via ``stats`` when optimizing many
    plans over one database (the Datalog fixpoint does), so per-relation
    profiles are collected once instead of per plan.
    """
    # Under REPRO_VERIFY_PLANS each rewrite's output is statically verified,
    # so a rule that breaks a plan is caught here naming the rule instead of
    # surfacing later as a wrong answer or executor error.
    plan = maybe_verify(push_down_filters(plan), db,
                        rule="push_down_filters")
    plan = maybe_verify(promote_hash_keys(plan), db,
                        rule="promote_hash_keys")
    if stats is None and db is not None:
        stats = StatsCatalog(db)
    if stats is not None:
        plan = maybe_verify(reorder_joins(plan, stats.db, stats=stats),
                            stats.db, rule="reorder_joins")
        plan = maybe_verify(promote_hash_keys(plan), stats.db,
                            rule="promote_hash_keys")
    plan = maybe_verify(eliminate_common_subexpressions(plan), db,
                        rule="eliminate_common_subexpressions")
    return plan


# ---------------------------------------------------------------------------
# Generic reconstruction
# ---------------------------------------------------------------------------

def _rebuild(plan: Plan, children: list[Plan]) -> Plan:
    if isinstance(plan, (ScanP, DeltaScanP)):
        return plan
    if isinstance(plan, FilterP):
        return FilterP(children[0], plan.condition)
    if isinstance(plan, ProjectP):
        return ProjectP(children[0], plan.exprs, plan.names)
    if isinstance(plan, DistinctP):
        return DistinctP(children[0])
    if isinstance(plan, JoinP):
        return JoinP(children[0], children[1], plan.kind, plan.left_keys,
                     plan.right_keys, plan.residual, plan.null_matches)
    if isinstance(plan, SetOpP):
        return SetOpP(plan.op, children[0], children[1], plan.distinct)
    if isinstance(plan, AggregateP):
        return AggregateP(children[0], plan.group_exprs, plan.aggregates)
    if isinstance(plan, DivideP):
        return DivideP(children[0], children[1])
    if isinstance(plan, SortLimitP):
        return SortLimitP(children[0], plan.keys, plan.limit)
    raise PlanError(f"cannot rebuild {type(plan).__name__}")


# ---------------------------------------------------------------------------
# Predicate pushdown
# ---------------------------------------------------------------------------

def _references_only(expr: e.Expr, columns: tuple[str, ...]) -> bool:
    return all(has_column(columns, col.name, col.qualifier, strict=True)
               for col in expr.columns())


def _remap_by_position(expr: e.Expr, from_cols: tuple[str, ...],
                       to_cols: tuple[str, ...]) -> e.Expr:
    """Rewrite column refs positionally (for pushing into set-op branches)."""
    def remap(col: e.Col) -> e.Col:
        idx = resolve_column(from_cols, col.name, col.qualifier, strict=True)
        qualifier, _, name = to_cols[idx].rpartition(".")
        return e.Col(name if qualifier else to_cols[idx], qualifier or None)

    return e.map_columns(expr, remap)


def push_down_filters(plan: Plan) -> Plan:
    children = [push_down_filters(c) for c in plan.children()]
    plan = _rebuild(plan, children)
    if not isinstance(plan, FilterP):
        return plan
    return _push_filter(plan.input, plan.condition)


def _push_filter(target: Plan, condition: e.Expr) -> Plan:
    conjuncts = e.conjuncts(condition)
    if not conjuncts:
        return target

    if isinstance(target, FilterP):
        return _push_filter(target.input, e.conjunction(
            e.conjuncts(condition) + e.conjuncts(target.condition)))

    if isinstance(target, DistinctP):
        return DistinctP(_push_filter(target.input, condition))

    if isinstance(target, ProjectP):
        # Push through pure column renamings only.
        mapping: dict[int, e.Col] = {}
        renaming = True
        for i, expr in enumerate(target.exprs):
            if isinstance(expr, e.Col):
                mapping[i] = expr
            else:
                renaming = False
        pushable: list[e.Expr] = []
        kept: list[e.Expr] = []
        for conjunct in conjuncts:
            ok = renaming or all(
                isinstance(target.exprs[resolve_column(target.names, c.name, c.qualifier,
                                                       strict=True)],
                           e.Col)
                for c in conjunct.columns()
                if has_column(target.names, c.name, c.qualifier, strict=True)
            )
            if ok and _references_only(conjunct, target.names):
                def remap(col: e.Col) -> e.Col:
                    idx = resolve_column(target.names, col.name, col.qualifier,
                                         strict=True)
                    replacement = target.exprs[idx]
                    assert isinstance(replacement, e.Col)
                    return replacement
                try:
                    pushable.append(e.map_columns(conjunct, remap))
                except (PlanError, e.ExprError):
                    kept.append(conjunct)
            else:
                kept.append(conjunct)
        out: Plan = target
        if pushable:
            out = ProjectP(_push_filter(target.input, e.conjunction(pushable)),
                           target.exprs, target.names)
        if kept:
            out = FilterP(out, e.conjunction(kept))
        return out

    if isinstance(target, SetOpP):
        try:
            right_condition = _remap_by_position(condition, target.columns,
                                                 target.right.columns)
        except PlanError:
            return FilterP(target, condition)
        return SetOpP(target.op,
                      _push_filter(target.left, condition),
                      _push_filter(target.right, right_condition),
                      target.distinct)

    if isinstance(target, JoinP):
        left_cols = target.left.columns
        right_cols = target.right.columns
        to_left: list[e.Expr] = []
        to_right: list[e.Expr] = []
        residual: list[e.Expr] = []
        for conjunct in conjuncts:
            if _references_only(conjunct, left_cols):
                to_left.append(conjunct)
            elif target.kind in ("inner", "cross") and _references_only(conjunct, right_cols):
                to_right.append(conjunct)
            else:
                residual.append(conjunct)
        left = _push_filter(target.left, e.conjunction(to_left)) if to_left else target.left
        right = _push_filter(target.right, e.conjunction(to_right)) if to_right else target.right
        new_residual = list(residual)
        if target.residual is not None:
            new_residual.extend(e.conjuncts(target.residual))
        kind = target.kind
        if kind == "cross" and new_residual:
            kind = "inner"
        return JoinP(left, right, kind, target.left_keys, target.right_keys,
                     e.conjunction(new_residual) if new_residual else None,
                     target.null_matches)

    return FilterP(target, condition)


# ---------------------------------------------------------------------------
# Hash-key promotion
# ---------------------------------------------------------------------------

def _column_of(expr: e.Expr, columns: tuple[str, ...]) -> str | None:
    if isinstance(expr, e.Col) and has_column(columns, expr.name, expr.qualifier,
                                              strict=True):
        return columns[resolve_column(columns, expr.name, expr.qualifier, strict=True)]
    return None


def promote_hash_keys(plan: Plan) -> Plan:
    children = [promote_hash_keys(c) for c in plan.children()]
    plan = _rebuild(plan, children)
    if not (isinstance(plan, JoinP) and plan.residual is not None):
        return plan
    left_keys = list(plan.left_keys)
    right_keys = list(plan.right_keys)
    residual: list[e.Expr] = []
    # An equality *predicate* is never NULL-true, but promoted hash keys
    # follow the join's ``null_matches``.  On a NULL-matching join that
    # already has keys, promotion would change semantics either way, so
    # conjuncts stay residual; on a keyless NULL-matching join the promoted
    # join simply becomes a SQL-equality (``null_matches=False``) join.
    can_promote = not plan.null_matches or not plan.left_keys
    for conjunct in e.conjuncts(plan.residual):
        promoted = False
        if can_promote and isinstance(conjunct, e.Comparison) \
                and conjunct.op == "=":
            for a, b in ((conjunct.left, conjunct.right),
                         (conjunct.right, conjunct.left)):
                lcol = _column_of(a, plan.left.columns)
                rcol = _column_of(b, plan.right.columns)
                if lcol is not None and rcol is not None:
                    left_keys.append(lcol)
                    right_keys.append(rcol)
                    promoted = True
                    break
        if not promoted:
            residual.append(conjunct)
    null_matches = plan.null_matches
    if null_matches and not plan.left_keys and left_keys:
        null_matches = False
    kind = plan.kind
    if kind == "cross" and (left_keys or residual):
        kind = "inner"
    return JoinP(plan.left, plan.right, kind, tuple(left_keys), tuple(right_keys),
                 e.conjunction(residual) if residual else None, null_matches)


# ---------------------------------------------------------------------------
# Cost-based greedy join reordering (estimation lives in repro.engine.stats)
# ---------------------------------------------------------------------------


def _substitute(plan: Plan, old: Plan, new: Plan) -> Plan:
    """Rebuild ``plan`` with every subtree equal to ``old`` replaced by ``new``."""
    if plan == old:
        return new
    children = [_substitute(c, old, new) for c in plan.children()]
    return _rebuild(plan, children)


def _flatten_join_tree(plan: Plan, protected: tuple[Plan, ...] = ()
                       ) -> tuple[list[Plan], list[e.Expr]] | None:
    """Flatten a maximal inner/cross join tree into leaves and conjuncts."""
    if not (isinstance(plan, JoinP) and plan.kind in ("inner", "cross")
            and not plan.null_matches):
        return None
    leaves: list[Plan] = []
    conjuncts: list[e.Expr] = []

    def visit(node: Plan) -> None:
        if any(node == p for p in protected):
            leaves.append(node)
        elif (isinstance(node, JoinP) and node.kind in ("inner", "cross")
                and not node.null_matches):
            visit(node.left)
            visit(node.right)
            for lk, rk in zip(node.left_keys, node.right_keys):
                conjuncts.append(e.Comparison(e.Col(lk), "=", e.Col(rk)))
            if node.residual is not None:
                conjuncts.extend(e.conjuncts(node.residual))
        else:
            leaves.append(node)

    visit(plan)
    return leaves, conjuncts


def reorder_joins(plan: Plan, db: Database,
                  protected: tuple[Plan, ...] = (),
                  *, stats: StatsCatalog | None = None) -> Plan:
    if stats is None:
        stats = StatsCatalog(db)
    if any(plan == p for p in protected):
        return plan
    if isinstance(plan, JoinP) and plan.kind in ("semi", "anti"):
        # Dependent joins embed their left plan inside the right side; keep
        # that embedded copy atomic while reordering around it, then swap in
        # the reordered left so both sides stay structurally shared (the
        # executor's CSE memo depends on it).
        left = reorder_joins(plan.left, db, protected, stats=stats)
        right = reorder_joins(plan.right, db, protected + (plan.left,),
                              stats=stats)
        if left != plan.left:
            right = _substitute(right, plan.left, left)
        return JoinP(left, right, plan.kind, plan.left_keys, plan.right_keys,
                     plan.residual, plan.null_matches)
    children = [reorder_joins(c, db, protected, stats=stats)
                for c in plan.children()]
    plan = _rebuild(plan, children)
    flat = _flatten_join_tree(plan, protected)
    if flat is None:
        return plan
    leaves, conjuncts = flat
    if len(leaves) < 3:
        return plan
    original_columns = plan.columns
    all_columns: list[str] = [c for leaf in leaves for c in leaf.columns]
    if len(set(c.lower() for c in all_columns)) != len(all_columns):
        return plan  # duplicated names: restoring column order would be ambiguous

    remaining = list(leaves)
    pending = list(conjuncts)
    current = min(remaining, key=lambda leaf: stats.estimate(leaf))
    remaining.remove(current)

    def attachable(cols: tuple[str, ...]) -> tuple[list[e.Expr], list[e.Expr]]:
        now, later = [], []
        for conjunct in pending:
            (now if _references_only(conjunct, cols) else later).append(conjunct)
        return now, later

    def trial_join(leaf: Plan) -> Plan:
        # The candidate subplan exactly as the loop would build it, so the
        # cost compared across leaves is the cost of the plan actually run.
        joined, _ = attachable(current.columns + leaf.columns)
        trial: Plan = JoinP(current, leaf, "cross")
        if joined:
            trial = FilterP(trial, e.conjunction(joined))
            trial = promote_hash_keys(push_down_filters(trial))
        return trial

    while remaining:
        best = None
        best_trial = None
        best_cost = None
        for leaf in remaining:
            trial = trial_join(leaf)
            cost = (stats.estimate(trial), stats.estimate(leaf))
            if best_cost is None or cost < best_cost:
                best, best_trial, best_cost = leaf, trial, cost
        assert best is not None and best_trial is not None
        remaining.remove(best)
        current = best_trial
        _, pending = attachable(current.columns)
    if pending:
        current = FilterP(current, e.conjunction(pending))

    if current.columns != original_columns:
        positions = [resolve_column(current.columns, *_split(c), strict=True)
                     for c in original_columns]
        current = ProjectP(current,
                           tuple(e.Col(current.columns[p]) for p in positions),
                           original_columns)
    return current


def _split(column: str) -> tuple[str, str | None]:
    if "." in column:
        qualifier, name = column.split(".", 1)
        return name, qualifier
    return column, None


# ---------------------------------------------------------------------------
# Common subexpression elimination
# ---------------------------------------------------------------------------

def eliminate_common_subexpressions(plan: Plan) -> Plan:
    """Intern structurally identical subtrees to a single shared object."""
    interned: dict[Plan, Plan] = {}

    def visit(node: Plan) -> Plan:
        children = [visit(c) for c in node.children()]
        rebuilt = _rebuild(node, children)
        return interned.setdefault(rebuilt, rebuilt)

    return visit(plan)


def common_subplan_count(plan: Plan) -> int:
    """How many subtree evaluations CSE saves (for benchmarks/diagnostics)."""
    counts: dict[Plan, int] = {}
    for node in plan.walk():
        counts[node] = counts.get(node, 0) + 1
    return sum(c - 1 for c in counts.values())
