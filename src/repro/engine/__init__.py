"""The unified logical-plan engine behind all five query languages.

The paper's central observation is that one diagrammatic pattern underlies
SQL, RA, TRC, DRC, and Datalog; this package is the executable counterpart:
one logical plan IR (:mod:`repro.engine.plan`) that every frontend compiles
into (:mod:`repro.engine.lower`), one rule-based optimizer
(:mod:`repro.engine.optimize` — predicate pushdown, cardinality-greedy join
reordering, common subexpression elimination), and one physical executor
(:mod:`repro.engine.execute` — hash joins, hash set operations, index scans,
semi-naive Datalog recursion).

The per-language interpreters under ``repro.sql`` / ``ra`` / ``trc`` /
``drc`` / ``datalog`` remain the *reference semantics*; the differential
harness in ``tests/test_engine.py`` asserts the engine agrees with all five
of them on the full canonical-query catalog.

Quickstart::

    from repro.data import sailors_database
    from repro.engine import run_query

    db = sailors_database()
    run_query("SELECT S.sname FROM Sailors S WHERE S.rating > 7", db)
    run_query("project[sname](Sailors njoin Reserves)", db, language="ra")
    run_query("ans(N) :- sailors(S, N, R, A), reserves(S, 102, D).", db)
"""

from repro.engine.execute import (
    Executor,
    ExecutorBackend,
    RowBackend,
    build_result_relation,
    clear_compiled_cache,
    compiled_expr,
    compiled_predicate,
    compute_datalog_facts,
    execute_datalog,
    execute_plan,
    get_backend,
    run_query,
)
from repro.engine.vectorized import VectorizedBackend, VectorizedExecutor
from repro.engine.parallel import ParallelBackend, ParallelExecutor
from repro.engine.sharded import (
    NotDistributable,
    ShardedBackend,
    ShardedPlan,
    distribute,
    shard_plan,
    split_aggregate,
)
from repro.engine.kernels import KernelExecutor, kernels_enabled, make_executor
from repro.engine.process import ProcessBackend, default_process_workers
from repro.engine import lifecycle
from repro.engine.delta import (
    AggregateMaintainer,
    BagMaintainer,
    DatalogMaintainer,
    DeltaRewriteError,
    DistinctMaintainer,
    ViewMaintainer,
    anchor,
    asof_plan,
    base_relations,
    build_maintainer,
    delta_terms,
    find_core,
    finish_rows,
)
from repro.engine.lower import (
    LoweringError,
    detect_language,
    lower,
    lower_datalog_rule,
    lower_drc,
    lower_ra,
    lower_sql,
    lower_trc,
)
from repro.engine.optimize import (
    common_subplan_count,
    eliminate_common_subexpressions,
    estimate_rows,
    optimize,
    promote_hash_keys,
    push_down_filters,
    reorder_joins,
)
from repro.engine.stats import (
    ColumnStats,
    StatsCatalog,
    TableStats,
    collect_table_stats,
)
from repro.engine.verify import (
    PlanVerificationError,
    verification_counts,
    verification_enabled,
    verify_plan,
    verify_sharded_plan,
)
from repro.engine.plan import (
    AggregateP,
    DeltaScanP,
    DeltaUnavailable,
    DistinctP,
    DivideP,
    FilterP,
    JoinP,
    Plan,
    PlanError,
    ProjectP,
    ScanP,
    SetOpP,
    SortLimitP,
    explain,
    resolve_column,
)

__all__ = [
    "AggregateMaintainer",
    "AggregateP",
    "BagMaintainer",
    "ColumnStats",
    "DatalogMaintainer",
    "DeltaRewriteError",
    "DeltaScanP",
    "DeltaUnavailable",
    "DistinctMaintainer",
    "DistinctP",
    "DivideP",
    "Executor",
    "ExecutorBackend",
    "FilterP",
    "JoinP",
    "KernelExecutor",
    "LoweringError",
    "NotDistributable",
    "ParallelBackend",
    "ParallelExecutor",
    "Plan",
    "PlanError",
    "PlanVerificationError",
    "ProcessBackend",
    "ProjectP",
    "RowBackend",
    "ScanP",
    "SetOpP",
    "ShardedBackend",
    "ShardedPlan",
    "SortLimitP",
    "StatsCatalog",
    "TableStats",
    "VectorizedBackend",
    "VectorizedExecutor",
    "ViewMaintainer",
    "anchor",
    "asof_plan",
    "base_relations",
    "build_maintainer",
    "build_result_relation",
    "clear_compiled_cache",
    "collect_table_stats",
    "common_subplan_count",
    "compiled_expr",
    "compiled_predicate",
    "compute_datalog_facts",
    "default_process_workers",
    "delta_terms",
    "detect_language",
    "distribute",
    "kernels_enabled",
    "lifecycle",
    "make_executor",
    "find_core",
    "finish_rows",
    "get_backend",
    "eliminate_common_subexpressions",
    "estimate_rows",
    "execute_datalog",
    "execute_plan",
    "explain",
    "lower",
    "lower_datalog_rule",
    "lower_drc",
    "lower_ra",
    "lower_sql",
    "lower_trc",
    "optimize",
    "promote_hash_keys",
    "push_down_filters",
    "reorder_joins",
    "resolve_column",
    "run_query",
    "shard_plan",
    "split_aggregate",
    "verification_counts",
    "verification_enabled",
    "verify_plan",
    "verify_sharded_plan",
]
