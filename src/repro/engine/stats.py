"""Table statistics and cost estimation for the optimizer.

PR 1's join reordering was cardinality-greedy: it knew base-table row counts
and guessed fixed selectivities for everything else.  This module gives the
optimizer real statistics, collected in one pass over each relation's column
store and cached against the relation's monotonic
:attr:`~repro.data.relation.Relation.version`:

* per-relation **row counts**;
* per-attribute **distinct counts**, **min/max** (numeric attributes), and
  **null counts**;
* derived **selectivity estimates** — ``col = const`` costs ``1/distinct``,
  range predicates interpolate against min/max, and equi-join cardinality is
  ``|L|·|R| / max(d_left, d_right)`` over the join keys' distinct counts.

:func:`repro.engine.optimize.reorder_joins` consults a :class:`StatsCatalog`
to order join trees by *estimated result size* rather than by raw leaf
cardinality.

The same estimates drive the **semi-join reduction** of the semi-naive
Datalog path: delta relations (``pred@delta``) are estimated tiny — pinned
at :data:`DELTA_ESTIMATE` before they first materialize — so the cost-based
ordering joins each rule's delta occurrence first and every later join is
probed only with tuples that survived the delta, which is exactly the
semi-join program of the classical semi-naive transformation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.data.database import Database
from repro.data.relation import Relation
from repro.data.schema import SchemaError
from repro.expr import ast as e
from repro.engine.plan import (
    AggregateP,
    DeltaScanP,
    DistinctP,
    DivideP,
    FilterP,
    JoinP,
    Plan,
    PlanError,
    ProjectP,
    ScanP,
    SetOpP,
    SortLimitP,
    resolve_column,
)

#: Suffix marking the delta relations of the semi-naive Datalog fixpoint.
DELTA_SUFFIX = "@delta"

#: Assumed cardinality of a not-yet-materialized delta relation.  Being tiny
#: is the point: it makes cost-based ordering seed each delta-variant plan at
#: the delta occurrence (semi-join reduction).
DELTA_ESTIMATE = 1.0

#: Fallback cardinality for relations the catalog knows nothing about.
UNKNOWN_ESTIMATE = 100.0

#: Fallback selectivities, matching the PR-1 heuristics.
EQ_SELECTIVITY = 0.1
DEFAULT_SELECTIVITY = 0.4


@dataclass(frozen=True)
class ColumnStats:
    """One attribute's statistics (one pass over its column array)."""

    distinct: int
    null_count: int
    min_value: float | None = None  # numeric attributes only
    max_value: float | None = None


@dataclass(frozen=True)
class TableStats:
    """One relation's statistics."""

    row_count: int
    columns: tuple[ColumnStats, ...]


def collect_table_stats(relation: Relation) -> TableStats:
    """Compute :class:`TableStats` from the relation's column store.

    Dictionary-encoded string columns (a live kernel encoding or a decoded
    ``"D"`` shared-memory page) answer distinct/null counts straight from
    the dictionary — no per-refresh full-column set scan.  String columns
    never carry numeric min/max, so the fast path loses nothing.
    """
    store = relation.column_store()
    columns = []
    for index, array in enumerate(store.arrays):
        dict_stats = store.dictionary_stats(index)
        if dict_stats is not None:
            distinct, null_count = dict_stats
            columns.append(ColumnStats(distinct, null_count, None, None))
            continue
        values = [v for v in array if v is not None]
        null_count = len(array) - len(values)
        distinct = len(set(values))
        min_value = max_value = None
        if values and all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in values):
            min_value = float(min(values))
            max_value = float(max(values))
        columns.append(ColumnStats(distinct, null_count, min_value, max_value))
    return TableStats(len(relation), tuple(columns))


class StatsCatalog:
    """Versioned statistics over one database's relations.

    Statistics are collected lazily per relation and cached against the
    relation object's identity and :attr:`~repro.data.relation.Relation.version`;
    a mutated or replaced relation is re-profiled on next access, so one
    catalog can serve a whole session (or a whole Datalog fixpoint, where the
    working database is re-materialized every round).

    Thread-safe: the per-version profile cache is read and written under an
    internal lock, so concurrent optimizer calls (the serving layer runs
    many at once) never corrupt it.  Profiling itself runs outside the lock;
    a racing mutation at worst produces a profile tagged with the version it
    started from, which the next access detects as stale and recollects —
    estimates may be momentarily off, answers never are.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        self._cache: dict[str, tuple[int, int, TableStats]] = {}
        self._lock = threading.Lock()

    def table(self, name: str) -> TableStats | None:
        """Statistics for ``name``, or ``None`` if the relation is unknown."""
        try:
            relation = self.db.relation(name)
        except SchemaError:
            return None
        key = name.lower()
        version = relation.version
        with self._lock:
            cached = self._cache.get(key)
        if cached is not None and cached[0] == id(relation) \
                and cached[1] == version:
            return cached[2]
        stats = collect_table_stats(relation)
        with self._lock:
            self._cache[key] = (id(relation), version, stats)
        return stats

    # -- column provenance ------------------------------------------------

    def column_stats(self, plan: Plan, position: int) -> ColumnStats | None:
        """Statistics of the base attribute behind output column ``position``.

        Follows renamings and join concatenation down to a scan; returns
        ``None`` when the column is computed (projection expressions,
        aggregates) or the base relation is unknown.
        """
        origin = _column_origin(plan, position)
        if origin is None:
            return None
        relation, attr_position = origin
        stats = self.table(relation)
        if stats is None or attr_position >= len(stats.columns):
            return None
        return stats.columns[attr_position]

    def _named_column_stats(self, plan: Plan, col: e.Col) -> ColumnStats | None:
        try:
            position = resolve_column(plan.columns, col.name, col.qualifier)
        except PlanError:
            return None
        return self.column_stats(plan, position)

    # -- cardinality estimation -------------------------------------------

    def estimate(self, plan: Plan) -> float:
        """Estimated output rows of ``plan`` (≥ 1 except for empty scans)."""
        if isinstance(plan, ScanP):
            stats = self.table(plan.relation)
            if stats is not None:
                return float(stats.row_count)
            if plan.relation.lower().endswith(DELTA_SUFFIX):
                return DELTA_ESTIMATE
            return UNKNOWN_ESTIMATE
        if isinstance(plan, DeltaScanP):
            # Insert-delta windows are tiny by construction (the point of
            # incremental maintenance); estimating them tiny makes the
            # cost-based join ordering seat each delta term at its delta
            # occurrence.  The as-of window is essentially the full relation.
            if plan.mode == "delta":
                return DELTA_ESTIMATE
            stats = self.table(plan.relation)
            if stats is not None:
                return float(stats.row_count)
            return UNKNOWN_ESTIMATE
        if isinstance(plan, FilterP):
            base = self.estimate(plan.input)
            selectivity = 1.0
            for conjunct in e.conjuncts(plan.condition):
                selectivity *= self.selectivity(conjunct, plan.input)
            return max(1.0, base * selectivity)
        if isinstance(plan, (ProjectP, SortLimitP)):
            base = self.estimate(plan.children()[0])
            if isinstance(plan, SortLimitP) and plan.limit is not None:
                return min(base, float(plan.limit))
            return base
        if isinstance(plan, DistinctP):
            return max(1.0, self.estimate(plan.input) * 0.8)
        if isinstance(plan, JoinP):
            return self._estimate_join(plan)
        if isinstance(plan, SetOpP):
            left = self.estimate(plan.left)
            right = self.estimate(plan.right)
            if plan.op == "union":
                return left + right
            if plan.op == "intersect":
                return min(left, right)
            return left
        if isinstance(plan, AggregateP):
            return max(1.0, self._estimate_groups(plan))
        if isinstance(plan, DivideP):
            return max(1.0, self.estimate(plan.left) * 0.1)
        return UNKNOWN_ESTIMATE

    def _estimate_join(self, plan: JoinP) -> float:
        left = self.estimate(plan.left)
        right = self.estimate(plan.right)
        if plan.kind in ("semi", "anti"):
            return max(1.0, left * 0.5)
        if plan.left_keys:
            denominator = 1.0
            for lkey, rkey in zip(plan.left_keys, plan.right_keys):
                d_left = self._key_distinct(plan.left, lkey)
                d_right = self._key_distinct(plan.right, rkey)
                denominator *= max(d_left, d_right, 1.0)
            return max(1.0, left * right / denominator)
        if plan.residual is not None:
            return max(1.0, left * right * 0.3)
        return left * right

    def _key_distinct(self, plan: Plan, key: str) -> float:
        try:
            position = resolve_column(plan.columns, key)
        except PlanError:
            return 1.0
        stats = self.column_stats(plan, position)
        if stats is None:
            # Unknown provenance: assume keys are fairly discriminating.
            return max(1.0, self.estimate(plan) * 0.5)
        return float(max(stats.distinct, 1))

    def _estimate_groups(self, plan: AggregateP) -> float:
        base = self.estimate(plan.input)
        if not plan.group_exprs:
            return 1.0
        distinct = 1.0
        for expr in plan.group_exprs:
            if isinstance(expr, e.Col):
                stats = self._named_column_stats(plan.input, expr)
                if stats is not None:
                    distinct *= max(stats.distinct, 1)
                    continue
            distinct *= max(1.0, base * 0.3)
        return min(base, distinct)

    # -- selectivity -------------------------------------------------------

    def selectivity(self, conjunct: e.Expr, plan: Plan) -> float:
        """Fraction of ``plan``'s rows the conjunct is estimated to keep."""
        if isinstance(conjunct, e.Comparison):
            for col, const in ((conjunct.left, conjunct.right),
                               (conjunct.right, conjunct.left)):
                if isinstance(col, e.Col) and isinstance(const, e.Const):
                    op = conjunct.op if col is conjunct.left \
                        else conjunct.flipped().op
                    return self._comparison_selectivity(plan, col, op, const.value)
            if isinstance(conjunct.left, e.Col) and isinstance(conjunct.right, e.Col) \
                    and conjunct.op == "=":
                d_left = self._named_column_stats(plan, conjunct.left)
                d_right = self._named_column_stats(plan, conjunct.right)
                if d_left is not None and d_right is not None:
                    return 1.0 / max(d_left.distinct, d_right.distinct, 1)
                return EQ_SELECTIVITY
        if isinstance(conjunct, e.Comparison) and conjunct.op == "=":
            return EQ_SELECTIVITY
        return DEFAULT_SELECTIVITY

    def _comparison_selectivity(self, plan: Plan, col: e.Col, op: str,
                                value: Any) -> float:
        stats = self._named_column_stats(plan, col)
        if stats is None:
            return EQ_SELECTIVITY if op == "=" else DEFAULT_SELECTIVITY
        if op == "=":
            return 1.0 / max(stats.distinct, 1)
        if op == "<>":
            return 1.0 - 1.0 / max(stats.distinct, 1)
        if stats.min_value is not None and stats.max_value is not None \
                and isinstance(value, (int, float)) and not isinstance(value, bool):
            span = stats.max_value - stats.min_value
            if span <= 0:
                # Constant column: the predicate keeps all rows or none.
                kept = _compare_floats(stats.min_value, op, float(value))
                return 1.0 if kept else 1.0 / max(stats.distinct, 1)
            fraction = (float(value) - stats.min_value) / span
            fraction = min(1.0, max(0.0, fraction))
            if op in ("<", "<="):
                return max(fraction, 1.0 / max(stats.distinct, 1))
            return max(1.0 - fraction, 1.0 / max(stats.distinct, 1))
        return DEFAULT_SELECTIVITY


def _compare_floats(left: float, op: str, right: float) -> bool:
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _column_origin(plan: Plan, position: int) -> tuple[str, int] | None:
    """Trace output column ``position`` down to ``(relation, attribute)``."""
    if isinstance(plan, (ScanP, DeltaScanP)):
        return (plan.relation, position)
    if isinstance(plan, (FilterP, DistinctP, SortLimitP)):
        return _column_origin(plan.children()[0], position)
    if isinstance(plan, ProjectP):
        expr = plan.exprs[position]
        if isinstance(expr, e.Col):
            try:
                inner = resolve_column(plan.input.columns, expr.name,
                                       expr.qualifier)
            except PlanError:
                return None
            return _column_origin(plan.input, inner)
        inner_position = getattr(expr, "position", None)
        if inner_position is not None:  # lower.py's _PositionCol
            return _column_origin(plan.input, inner_position)
        return None
    if isinstance(plan, JoinP):
        if plan.kind in ("semi", "anti"):
            return _column_origin(plan.left, position)
        width = len(plan.left.columns)
        if position < width:
            return _column_origin(plan.left, position)
        return _column_origin(plan.right, position - width)
    if isinstance(plan, AggregateP):
        if position < len(plan.input.columns):
            return _column_origin(plan.input, position)
        return None
    if isinstance(plan, SetOpP):
        return _column_origin(plan.left, position)
    return None


def estimate_rows(plan: Plan, db: Database) -> float:
    """Statistics-driven cardinality estimate (one-shot catalog).

    Kept as the module-level convenience the tests and benchmarks use;
    repeated estimation over one database should share a
    :class:`StatsCatalog` so per-relation profiles are collected once.
    """
    return StatsCatalog(db).estimate(plan)
