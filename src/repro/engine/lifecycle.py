"""Worker-pool and shared-resource lifecycle for the execution backends.

The ``"parallel"`` backend's thread pool, the ``"process"`` backend's
process pool, and the sharded databases' shared-memory page publishers all
hold OS resources that outlive a single query.  Each registers itself here
the first time it materializes its resource; :func:`close_all` — installed
as an ``atexit`` hook on first registration — shuts every registered
object down in reverse registration order, so a cleanly exiting process
leaves no running worker threads, no child processes, and no linked
``/dev/shm`` segments behind (``tests/test_process.py`` runs a leg under
``-W error::ResourceWarning`` to keep it that way).

Registration is idempotent and survives :meth:`close`: backends recreate
their pools lazily, so a closed-then-reused backend simply re-registers.
"""

from __future__ import annotations

import atexit
import threading
from typing import Any, Protocol

__all__ = ["Closeable", "close_all", "register", "unregister"]


class Closeable(Protocol):
    def close(self) -> None: ...


_lock = threading.Lock()
_closeables: list[Any] = []
_hook_installed = False


def register(closeable: Closeable) -> None:
    """Ensure ``closeable.close()`` runs at interpreter exit (idempotent)."""
    global _hook_installed
    with _lock:
        if not any(item is closeable for item in _closeables):
            _closeables.append(closeable)
        if not _hook_installed:
            atexit.register(close_all)
            _hook_installed = True


def unregister(closeable: Closeable) -> None:
    """Remove a registration (no-op when absent)."""
    with _lock:
        for i, item in enumerate(_closeables):
            if item is closeable:
                del _closeables[i]
                break


def close_all() -> None:
    """Close every registered object, newest first.  Idempotent."""
    with _lock:
        items = list(_closeables)
        _closeables.clear()
    for item in reversed(items):
        try:
            item.close()
        except Exception:
            pass  # exit hook: never let one failure block the rest
