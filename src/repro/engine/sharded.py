"""Scatter-gather plan execution over a sharded database (``"sharded"``).

This module is the engine half of the horizontal-partitioning subsystem
(:mod:`repro.data.sharded` is the storage half).  It registers the fourth
:class:`~repro.engine.execute.ExecutorBackend` and rewrites one logical plan
into *per-shard subplans plus a merge step*:

* **distribution analysis** (:func:`distribute`) proves which subtrees can
  run independently on every shard such that concatenating the shard
  outputs reproduces the single-node bag.  The proof tracks, per subtree,
  the output columns that are hash-co-partitioned with the shard layout —
  scans start it at the relation's shard key, filters/projections/joins
  propagate it;
* **joins** run scattered when the equi-keys pair up the partition keys of
  both sides (co-partitioned: matching rows provably share a shard);
  otherwise the *smaller* side (by optimizer statistics) is **broadcast** —
  read in full on every shard, under a ``name@broadcast`` alias so the same
  relation can simultaneously stay scattered elsewhere in the plan (self-
  join chains need exactly that).  Semi/anti joins always broadcast the
  right side, which is correct for any partitioning of the left;
* **group-bys** whose keys do not cover the partition key are split into a
  per-shard **partial aggregation** and a gather-side **final combine**
  (COUNT → sum of counts, SUM/MIN/MAX fold, AVG → partial sum+count);
* a plan whose root is not distributable sheds *finishing* operators
  (projection, filter, distinct, sort/limit) onto the merge step until a
  distributable core remains; the finishers then run once over the gathered
  rows.  Plans with no distributable core at all (cross-shard set
  differences, delta scans, ...) fall back to single-node vectorized
  execution over the merged view — correct, never parallel;
* **single-shard routing**: when every scattered relation is filtered to a
  constant shard-key value, the whole scatter collapses onto the one shard
  that can own matching rows and the gather step disappears — the
  point-query fast path the sharded serving layer leans on.

Per-shard subplans execute concurrently on the worker pool shared with the
``"parallel"`` backend; each shard runs the plain vectorized executor over a
shard-local database (scattered relations) plus the merged views of
broadcast relations.  ``tests/test_sharded.py`` pins the backend bag-equal
to ``"vectorized"`` over the full canonical catalog at 1, 2, and 4 shards,
and ``tests/test_fuzz_differential.py`` extends that to randomly generated
plans.

Known, documented divergences from single-node execution (bag equality is
the contract, row order is not): gathered rows arrive in shard order, so
``LIMIT`` under ties and the representative (non-grouped, non-aggregate)
columns of groups that straddle shards may pick different — equally valid —
witnesses than the single-node backends.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable
from weakref import WeakKeyDictionary

from repro.data.database import Database
from repro.data.sharded import (
    BROADCAST_SUFFIX,
    DEFAULT_N_SHARDS,
    ShardedDatabase,
)
from repro.expr import ast as e
from repro.engine.execute import Row, _split_name, compiled_expr
from repro.engine.plan import (
    AggregateP,
    DeltaScanP,
    DistinctP,
    DivideP,
    FilterP,
    JoinP,
    Plan,
    ProjectP,
    ScanP,
    SetOpP,
    SortLimitP,
    resolve_column,
)
from repro.engine.kernels import make_executor
from repro.engine.stats import StatsCatalog
from repro.engine.vectorized import Batch, _column_position
from repro.engine.verify import (
    maybe_verify_sharded,
    maybe_verify_sharded_view,
    verification_counts,
)

__all__ = [
    "NotDistributable",
    "ShardedBackend",
    "ShardedPlan",
    "ShardedViewPlan",
    "SHARDED_BACKEND",
    "compile_view_scatter",
    "distribute",
    "shard_execution_database",
    "shard_plan",
    "split_aggregate",
]


class NotDistributable(Exception):
    """A (sub)plan cannot run shard-parallel under the current layout."""


#: The full partition key: one equivalence class of output-column positions
#: per shard-key attribute, in shard-key order (grown by equi-join equality
#: propagation), or ``None`` when no co-partitioning is tracked.
PartitionKey = tuple | None


@dataclass(frozen=True)
class Distribution:
    """What the distribution analysis proves about one subtree.

    ``key``
        The shard-key image through the subtree: one *equivalence class* of
        output-column positions per shard-key attribute — every position in
        a class provably carries the component's value (equi-joins equate
        positions, so ``S.sid`` and ``R.sid`` share a class after a join on
        them).  ``None`` when the outputs are scattered with no tracked
        co-partitioning.
    ``partitioned`` / ``broadcast``
        Base relations the subtree reads shard-locally vs. in full on
        every shard.  A relation may appear in both: broadcast occurrences
        are rewritten to read the ``name@broadcast`` alias, so the plain
        name always means the shard-local partition.
    """

    key: PartitionKey
    partitioned: frozenset[str]
    broadcast: frozenset[str]


def _merge_sets(*dists: Distribution) -> tuple[frozenset[str], frozenset[str]]:
    return (frozenset().union(*(d.partitioned for d in dists)),
            frozenset().union(*(d.broadcast for d in dists)))


def distribute(plan: Plan, sharded: ShardedDatabase,
               stats: StatsCatalog | None = None) -> Distribution:
    """Prove ``plan`` shard-parallel, or raise :class:`NotDistributable`.

    The contract: executing the (broadcast-rewritten) plan on every shard
    database and concatenating the outputs in shard order is bag-equal to
    executing ``plan`` once over the merged database.  Use
    :func:`shard_plan` to also obtain the rewritten per-shard subplan and
    the merge step.
    """
    return _rewrite(plan, sharded, stats)[1]


def _rewrite(plan: Plan, sharded: ShardedDatabase,
             stats: StatsCatalog | None) -> tuple[Plan, Distribution]:
    """``(per-shard plan, Distribution)`` — raises :class:`NotDistributable`."""
    if isinstance(plan, ScanP):
        name = plan.relation.lower()
        schema = sharded.shard(0).relation(name).schema
        key = tuple(frozenset((schema.index_of(a),))
                    for a in sharded.shard_key(name))
        return plan, Distribution(key, frozenset((name,)), frozenset())
    if isinstance(plan, DeltaScanP):
        raise NotDistributable("delta scans read a single relation's log")
    if isinstance(plan, FilterP):
        child, dist = _rewrite(plan.input, sharded, stats)
        return FilterP(child, plan.condition), dist
    if isinstance(plan, ProjectP):
        child, dist = _rewrite(plan.input, sharded, stats)
        return (ProjectP(child, plan.exprs, plan.names),
                Distribution(_project_key(plan, dist.key),
                             dist.partitioned, dist.broadcast))
    if isinstance(plan, DistinctP):
        child, dist = _rewrite(plan.input, sharded, stats)
        if dist.key is None:
            raise NotDistributable(
                "distinct below the root needs co-partitioned input "
                "(equal rows could straddle shards)")
        return DistinctP(child), dist
    if isinstance(plan, JoinP):
        return _rewrite_join(plan, sharded, stats)
    if isinstance(plan, SetOpP):
        return _rewrite_setop(plan, sharded, stats)
    if isinstance(plan, AggregateP):
        child, dist = _rewrite(plan.input, sharded, stats)
        if dist.key is None or not _key_covered_by_groups(plan, dist.key):
            raise NotDistributable(
                "group-by below the root does not group on the partition key")
        # Output = input columns + aggregate columns: positions unchanged.
        return (AggregateP(child, plan.group_exprs, plan.aggregates), dist)
    if isinstance(plan, DivideP):
        return _rewrite_divide(plan, sharded, stats)
    if isinstance(plan, SortLimitP):
        # Concatenating per-shard sorted runs would interleave the global
        # order (and per-shard LIMIT would drop the wrong rows): always
        # hand sort/limit to the merge step, which replays it once over
        # the gathered bag via the finisher-shedding path in shard_plan.
        raise NotDistributable("sort/limit must run once over the gather")
    raise NotDistributable(f"{type(plan).__name__} is not shard-parallel")


def _broadcast_side(plan: Plan) -> tuple[Plan, Distribution]:
    """Rewrite a subtree to read every base relation's broadcast alias.

    Any deterministic subtree qualifies — evaluated over the full merged
    relations it produces its complete single-node output on every shard —
    except delta scans, whose version anchors do not carry over to the
    rebuilt merged views.
    """
    names: set[str] = set()

    def visit(node: Plan) -> Plan:
        if isinstance(node, ScanP):
            names.add(node.relation.lower())
            return ScanP(node.relation + BROADCAST_SUFFIX, node.columns)
        if isinstance(node, DeltaScanP):
            raise NotDistributable(
                "delta scans cannot be broadcast (no merged delta log)")
        children = [visit(child) for child in node.children()]
        return _rebuild_node(node, children)

    rewritten = visit(plan)
    return rewritten, Distribution(None, frozenset(), frozenset(names))


def _rebuild_node(plan: Plan, children: list[Plan]) -> Plan:
    from repro.engine.optimize import _rebuild

    return _rebuild(plan, children)


def _project_key(plan: ProjectP, key: PartitionKey) -> PartitionKey:
    """Map a partition key through a projection's pure column picks.

    Each equivalence class maps to the output positions of its surviving
    members; a class whose members are all projected away kills the key.
    """
    if key is None:
        return None
    out_positions: dict[int, set[int]] = {}
    for j, expr in enumerate(plan.exprs):
        pos = _column_position(expr, plan.input.columns)
        if pos is not None:
            out_positions.setdefault(pos, set()).add(j)
    mapped = []
    for component in key:
        survivors: set[int] = set()
        for p in component:
            survivors.update(out_positions.get(p, ()))
        if not survivors:
            return None
        mapped.append(frozenset(survivors))
    return tuple(mapped)


def _key_covered_by_groups(plan: AggregateP, key: tuple) -> bool:
    """Do the group expressions pin every partition-key component?

    If some member of each component appears among the group expressions
    as a pure column pick, equal group keys imply equal partition keys, so
    no group straddles two shards and per-shard grouping is exact.
    """
    grouped = set()
    for expr in plan.group_exprs:
        pos = _column_position(expr, plan.input.columns)
        if pos is not None:
            grouped.add(pos)
    return all(component & grouped for component in key)


def _close_over_pairs(key: PartitionKey,
                      pairs: "list[tuple[int, int]]") -> PartitionKey:
    """Grow each key class with positions equated by equi-join pairs."""
    if key is None or not pairs:
        return key
    components = [set(component) for component in key]
    changed = True
    while changed:
        changed = False
        for a, b in pairs:
            for component in components:
                if a in component and b not in component:
                    component.add(b)
                    changed = True
                elif b in component and a not in component:
                    component.add(a)
                    changed = True
    return tuple(frozenset(component) for component in components)


def _rewrite_join(plan: JoinP, sharded: ShardedDatabase,
                  stats: StatsCatalog | None) -> tuple[Plan, Distribution]:
    if plan.kind in ("semi", "anti"):
        left_plan, left_dist = _rewrite(plan.left, sharded, stats)
        right_plan, bcast = _broadcast_side(plan.right)
        partitioned, broadcast = _merge_sets(left_dist, bcast)
        return (JoinP(left_plan, right_plan, plan.kind, plan.left_keys,
                      plan.right_keys, plan.residual, plan.null_matches),
                Distribution(left_dist.key, partitioned, broadcast))

    try:
        left: tuple[Plan, Distribution] | None = \
            _rewrite(plan.left, sharded, stats)
    except NotDistributable:
        left = None
    try:
        right: tuple[Plan, Distribution] | None = \
            _rewrite(plan.right, sharded, stats)
    except NotDistributable:
        right = None
    if left is None and right is None:
        raise NotDistributable("neither join input is shard-parallel")

    width = len(plan.left.columns)
    equi_pairs = _equi_pairs(plan)
    output_pairs = [(lp, rp + width) for lp, rp in equi_pairs]
    if left is not None and right is not None \
            and _co_partitioned(plan, equi_pairs, left[1].key, right[1].key):
        partitioned, broadcast = _merge_sets(left[1], right[1])
        key = tuple(
            lcomp | frozenset(rp + width for rp in rcomp)
            for lcomp, rcomp in zip(left[1].key, right[1].key))
        return (JoinP(left[0], right[0], plan.kind, plan.left_keys,
                      plan.right_keys, plan.residual, plan.null_matches),
                Distribution(_close_over_pairs(key, output_pairs),
                             partitioned, broadcast))

    # Not co-partitioned: broadcast one side, scatter the other.  Prefer
    # broadcasting the side the optimizer estimates smaller; a side that
    # cannot scatter at all must be the broadcast one.
    if left is not None and right is not None:
        left_rows = stats.estimate(plan.left) if stats is not None else 0.0
        right_rows = stats.estimate(plan.right) if stats is not None else 0.0
        side = "right" if right_rows <= left_rows else "left"
    else:
        side = "right" if left is not None else "left"
    if side == "right":
        assert left is not None
        scatter_plan, scatter = left
        bcast_plan, bcast = _broadcast_side(plan.right)
        key = scatter.key
        rewritten = JoinP(scatter_plan, bcast_plan, plan.kind, plan.left_keys,
                          plan.right_keys, plan.residual, plan.null_matches)
    else:
        assert right is not None
        scatter_plan, scatter = right
        bcast_plan, bcast = _broadcast_side(plan.left)
        key = None if scatter.key is None else tuple(
            frozenset(p + width for p in component)
            for component in scatter.key)
        rewritten = JoinP(bcast_plan, scatter_plan, plan.kind, plan.left_keys,
                          plan.right_keys, plan.residual, plan.null_matches)
    partitioned, broadcast = _merge_sets(scatter, bcast)
    return rewritten, Distribution(_close_over_pairs(key, output_pairs),
                                   partitioned, broadcast)


def _equi_pairs(plan: JoinP) -> list[tuple[int, int]]:
    """The equi-key pairs as (left position, right position)."""
    pairs = []
    for lk, rk in zip(plan.left_keys, plan.right_keys):
        pairs.append((resolve_column(plan.left.columns, *_split_name(lk)),
                      resolve_column(plan.right.columns, *_split_name(rk))))
    return pairs


def _co_partitioned(plan: JoinP, equi_pairs: list[tuple[int, int]],
                    left_key: PartitionKey, right_key: PartitionKey) -> bool:
    """Do the equi-keys pair the partition keys component by component?

    When they do, two joinable rows have equal partition-key value tuples,
    hash to the same shard, and the per-shard hash join sees every match.
    Classes make the check equality-aware: any member of the left class
    equated with any member of the right class pins that component.
    """
    if left_key is None or right_key is None \
            or len(left_key) != len(right_key):
        return False
    if not equi_pairs:
        return False
    return all(
        any(lp in lcomp and rp in rcomp for lp, rp in equi_pairs)
        for lcomp, rcomp in zip(left_key, right_key))


def _rewrite_setop(plan: SetOpP, sharded: ShardedDatabase,
                   stats: StatsCatalog | None) -> tuple[Plan, Distribution]:
    left_plan, left = _rewrite(plan.left, sharded, stats)
    right_plan, right = _rewrite(plan.right, sharded, stats)
    partitioned, broadcast = _merge_sets(left, right)
    # Set operations compare rows positionally, so the two keys align when
    # every component pair shares a position: a row equal on both sides
    # then hashes identically through either side's layout.
    aligned: PartitionKey = None
    if left.key is not None and right.key is not None \
            and len(left.key) == len(right.key):
        shared = tuple(lcomp & rcomp
                       for lcomp, rcomp in zip(left.key, right.key))
        if all(shared):
            aligned = shared
    if plan.op == "union" and not plan.distinct:
        # Bag union is pure concatenation: any partitioning merges correctly.
        return (SetOpP("union", left_plan, right_plan, distinct=False),
                Distribution(aligned, partitioned, broadcast))
    # Duplicate-sensitive set operations need equal rows to share a shard.
    if aligned is None:
        raise NotDistributable(
            f"{plan.op} needs both sides co-partitioned on the same positions")
    return (SetOpP(plan.op, left_plan, right_plan, plan.distinct),
            Distribution(aligned, partitioned, broadcast))


def _rewrite_divide(plan: DivideP, sharded: ShardedDatabase,
                    stats: StatsCatalog | None) -> tuple[Plan, Distribution]:
    left_plan, left = _rewrite(plan.left, sharded, stats)
    if left.key is None:
        raise NotDistributable("division needs a co-partitioned dividend")
    right_names = {c.lower() for c in plan.right.columns}
    quotient = [i for i, c in enumerate(plan.left.columns)
                if c.lower() not in right_names]
    mapped = []
    for component in left.key:
        survivors = frozenset(quotient.index(p) for p in component
                              if p in quotient)
        if not survivors:
            # A quotient group (one candidate output row) could straddle.
            raise NotDistributable(
                "division does not partition on the quotient")
        mapped.append(survivors)
    right_plan, bcast = _broadcast_side(plan.right)
    partitioned, broadcast = _merge_sets(left, bcast)
    return (DivideP(left_plan, right_plan),
            Distribution(tuple(mapped), partitioned, broadcast))


# ---------------------------------------------------------------------------
# Partial -> final aggregation split
# ---------------------------------------------------------------------------

#: Aggregates the gather step knows how to combine from partial states.
_SPLITTABLE_AGGREGATES = ("count", "sum", "min", "max", "avg")


def split_aggregate(agg: AggregateP, input_plan: Plan | None = None
                    ) -> "tuple[AggregateP, Callable[[list[list[Row]]], list[Row]]] | None":
    """Split a group-by into a per-shard partial plan and a final combiner.

    Returns ``(partial_plan, combine)`` or ``None`` when an aggregate
    cannot be combined from partial states (``DISTINCT`` aggregates need
    the raw values).  The partial plan computes, per shard-local group,
    one column per partial state (AVG contributes a SUM and a COUNT) plus a
    trailing ``COUNT(*)`` presence counter; ``combine`` merges the partial
    rows of all shards into rows with the original aggregate's exact
    output layout (representative input columns followed by one value per
    aggregate).  ``input_plan`` substitutes a rewritten (broadcast-aliased)
    input for the partial plan; the combine step is input-agnostic.
    """
    partial_calls: list[tuple[e.FuncCall, str]] = []
    specs: list[tuple[str, tuple[int, ...]]] = []
    width = len(agg.input.columns)
    for j, (call, _name) in enumerate(agg.aggregates):
        if call.distinct or call.name not in _SPLITTABLE_AGGREGATES:
            return None
        if call.name == "avg":
            specs.append(("avg", (width + len(partial_calls),
                                  width + len(partial_calls) + 1)))
            partial_calls.append((e.FuncCall("sum", call.args), f"__p{j}_sum"))
            partial_calls.append((e.FuncCall("count", call.args), f"__p{j}_cnt"))
            continue
        kind = "count" if call.name == "count" else call.name
        specs.append((kind, (width + len(partial_calls),)))
        partial_calls.append((call, f"__p{j}"))
    # Presence counter: lets the combiner tell an empty shard's synthetic
    # all-NULL row (ungrouped aggregate over an empty shard) from real data.
    rows_position = width + len(partial_calls)
    partial_calls.append((e.FuncCall("count", (e.Star(),)), "__rows"))
    partial = AggregateP(input_plan if input_plan is not None else agg.input,
                         agg.group_exprs, tuple(partial_calls))

    group_exprs = agg.group_exprs
    input_columns = agg.input.columns

    def combine(parts: list[list[Row]]) -> list[Row]:
        group_fns = [compiled_expr(gx, input_columns) for gx in group_exprs]
        accumulators: dict[tuple, list[Any]] = {}
        representatives: dict[tuple, Row] = {}
        order: list[tuple] = []
        synthetic: Row | None = None
        for part in parts:
            for row in part:
                if not group_exprs and not row[rows_position]:
                    if synthetic is None:
                        synthetic = row
                    continue
                key = tuple(fn(row) for fn in group_fns)
                acc = accumulators.get(key)
                if acc is None:
                    accumulators[key] = acc = [None] * (2 * len(specs))
                    representatives[key] = row[:width]
                    order.append(key)
                for s, (kind, positions) in enumerate(specs):
                    _fold_partial(acc, s, kind, row, positions)
        if not order and not group_exprs:
            # Every shard was empty: one all-NULL representative row with
            # COUNTs folded to zero, exactly like the single-node backends.
            base = synthetic[:width] if synthetic is not None else (None,) * width
            return [base + tuple(_finalize(kind, None, None)
                                 for kind, _p in specs)]
        out: list[Row] = []
        for key in order:
            acc = accumulators[key]
            out.append(representatives[key] + tuple(
                _finalize(kind, acc[2 * s], acc[2 * s + 1])
                for s, (kind, _p) in enumerate(specs)))
        return out

    return partial, combine


def _fold_partial(acc: list[Any], s: int, kind: str, row: Row,
                  positions: tuple[int, ...]) -> None:
    """Fold one partial row into accumulator slots ``2s`` / ``2s+1``."""
    a = 2 * s
    if kind == "count":
        acc[a] = (acc[a] or 0) + row[positions[0]]
    elif kind == "sum":
        value = row[positions[0]]
        if value is not None:
            acc[a] = value if acc[a] is None else acc[a] + value
    elif kind == "min":
        value = row[positions[0]]
        if value is not None and (acc[a] is None or value < acc[a]):
            acc[a] = value
    elif kind == "max":
        value = row[positions[0]]
        if value is not None and (acc[a] is None or value > acc[a]):
            acc[a] = value
    else:  # avg: slot a = running sum, slot a+1 = running count
        total, count = row[positions[0]], row[positions[1]]
        if total is not None:
            acc[a] = total if acc[a] is None else acc[a] + total
        acc[a + 1] = (acc[a + 1] or 0) + count


def _finalize(kind: str, first: Any, second: Any) -> Any:
    if kind == "count":
        return first or 0
    if kind == "avg":
        return None if not second else first / second
    return first


# ---------------------------------------------------------------------------
# Shard-aware view maintenance: compile a view core for per-shard upkeep
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardedViewPlan:
    """The per-shard maintenance recipe for one materialized-view core.

    Produced by :func:`compile_view_scatter`.  ``scatter`` is the plan each
    shard maintains *incrementally* against its local database (broadcast
    reads rewritten to their ``name@broadcast`` aliases): the bag core
    itself, a per-shard ``DistinctP`` pre-reduction, or the partial half of
    a split group-by.  ``gather`` merges the per-shard maintained rows back
    into the core's single-node output — concatenation for bags, a global
    first-seen dedup for DISTINCT, the partial→final ``combine`` for
    aggregates — so the discipline is exactly the scatter-gather executor's,
    only applied to *maintained state* instead of per-request execution.
    """

    kind: str                       # "bag" | "distinct" | "aggregate"
    core: Plan                      # original core subplan (the gather seed)
    scatter: Plan                   # per-shard maintained plan
    partitioned: frozenset[str]
    broadcast: frozenset[str]
    combine: "Callable[[list[list[Row]]], list[Row]] | None" = None

    @property
    def delta_input(self) -> Plan:
        """The bag subplan whose delta terms drive per-shard refreshes."""
        if self.kind == "bag":
            return self.scatter
        return self.scatter.input  # DistinctP / partial AggregateP

    def gather(self, parts: list[list[Row]]) -> list[Row]:
        """Merge per-shard maintained rows into the core's output rows."""
        if self.combine is not None:
            return self.combine(parts)
        if self.kind == "distinct":
            # Dedup of a union equals dedup of unioned per-shard dedups;
            # first-seen order in shard order, like the scatter executor.
            seen: set[Row] = set()
            out: list[Row] = []
            for part in parts:
                for row in part:
                    if row not in seen:
                        seen.add(row)
                        out.append(row)
            return out
        return [row for part in parts for row in part]


def compile_view_scatter(core: Plan, kind: str, sharded: ShardedDatabase,
                         stats: StatsCatalog | None = None
                         ) -> ShardedViewPlan:
    """Compile a maintainable view core into a :class:`ShardedViewPlan`.

    ``(core, kind)`` is :func:`repro.engine.delta.find_core`'s output.  The
    distribution analysis rewrites the core's bag input for per-shard
    execution (broadcasting non-co-partitioned join sides); DISTINCT cores
    pre-reduce per shard and re-dedup at the gather, and aggregate cores
    reuse :func:`split_aggregate`'s partial→final combine — both are safe
    under *any* partitioning, so the only hard requirements are that the
    bag input stays inside the distributable fragment and the aggregate is
    splittable.  Raises :class:`NotDistributable` when they don't hold (the
    caller's view degrades to rebuild-on-refresh, never a wrong answer).
    Under ``REPRO_VERIFY_PLANS`` the recipe — including its delta-term
    scatter plans — is certified by the static verifier before it is
    returned.
    """
    combine: "Callable[[list[list[Row]]], list[Row]] | None" = None
    if kind == "bag":
        scatter, dist = _rewrite(core, sharded, stats)
    elif kind == "distinct":
        inner, dist = _rewrite(core.input, sharded, stats)
        scatter = DistinctP(inner)
    elif kind == "aggregate":
        inner, dist = _rewrite(core.input, sharded, stats)
        split = split_aggregate(core, inner)
        if split is None:
            raise NotDistributable(
                "DISTINCT aggregates have no partial→final combine")
        scatter, combine = split
    else:
        raise NotDistributable(f"unknown view core kind {kind!r}")
    if not dist.partitioned:
        raise NotDistributable(
            "view core reads no shard-local relation (nothing to scatter)")
    compiled = ShardedViewPlan(kind, core, scatter, dist.partitioned,
                               dist.broadcast, combine)
    return maybe_verify_sharded_view(compiled, sharded)


def shard_execution_database(sharded: ShardedDatabase, index: int,
                             partitioned: Iterable[str],
                             broadcast: Iterable[str]) -> Database:
    """Shard ``index``'s execution view: local + broadcast relations.

    The partitioned entries are the shard's **live** relation objects —
    their per-version delta logs and version counters carry over, which is
    what lets view maintainers run delta plans shard-locally — while the
    broadcast entries are the frozen merged aliases (stable objects while
    the underlying relation is unwritten).
    """
    db = Database()
    shard = sharded.shard(index)
    for name in sorted(partitioned):
        db.add_relation(shard.relation(name))
    for name in sorted(broadcast):
        db.add_relation(sharded.broadcast_relation(name))
    return db


# ---------------------------------------------------------------------------
# Plan assembly
# ---------------------------------------------------------------------------

#: Unary operators the merge step can replay over the gathered rows.
_FINISHERS = (FilterP, ProjectP, DistinctP, SortLimitP)


@dataclass
class ShardedPlan:
    """One logical plan compiled for scatter-gather execution.

    ``mode`` is ``"scatter"`` (per-shard subplans + gather), ``"single"``
    (the scatter collapsed onto one shard — a routed point query), or
    ``"fallback"`` (single-node vectorized execution over the merged view).
    ``scatter`` is the subplan every selected shard runs (broadcast reads
    rewritten to their aliases); ``core`` is the node of ``plan`` whose
    rows the gather step reconstitutes.  Row-deterministic finishers
    directly above the core (FILTER / PROJECT, plus one per-shard DISTINCT
    pre-reduction) are *absorbed* into ``scatter`` so shards gather final
    rows, not raw core rows; ``gather`` names the highest absorbed node —
    the gathered parts are its rows, and everything above it replays once
    over them.  ``combine`` is the partial-aggregation merger, when the
    core is a split group-by (no absorption then).  ``prereduced`` records
    that a DISTINCT was pushed into the scatter (it still replays globally
    on the gather — dedup of a union equals dedup of unioned per-shard
    dedups).
    """

    plan: Plan
    mode: str
    core: Plan | None = None
    scatter: Plan | None = None
    combine: Callable[[list[list[Row]]], list[Row]] | None = None
    partitioned: frozenset[str] = frozenset()
    broadcast: frozenset[str] = frozenset()
    key: tuple[int, ...] | None = None
    shard_index: int | None = None
    gather: Plan | None = None
    prereduced: bool = False

    def describe(self) -> str:
        """A one-line plan-shape summary (for tests and benchmarks)."""
        if self.mode == "fallback":
            return "fallback(single-node)"
        verb = "scatter" if self.shard_index is None else "routed"
        parts = [f"{verb}({', '.join(sorted(self.partitioned))})"]
        if self.broadcast:
            parts.append(f"broadcast({', '.join(sorted(self.broadcast))})")
        if self.combine is not None:
            parts.append("partial-aggregate")
        if self.prereduced:
            parts.append("shard-distinct")
        if self.core is not self.plan:
            parts.append("merge-finish")
        if self.shard_index is not None:
            parts.append(f"shard={self.shard_index}")
        return " + ".join(parts)

    # -- execution ---------------------------------------------------------

    def execute(self, sharded: ShardedDatabase,
                submit: "Callable[..., Any] | None" = None,
                counters: "dict[str, int] | None" = None) -> list[Row]:
        """Run the compiled plan and return the merged rows (bag order)."""
        if self.mode == "fallback":
            return make_executor(sharded, counters).batch(self.plan).rows()
        assert self.scatter is not None and self.core is not None
        if self.shard_index is not None:
            shards: Iterable[int] = (self.shard_index,)
        else:
            shards = range(sharded.n_shards)
        exec_dbs = [self._shard_database(sharded, i) for i in shards]
        if submit is None or len(exec_dbs) <= 1:
            parts = [make_executor(db, counters).batch(self.scatter).rows()
                     for db in exec_dbs]
        else:
            futures = [submit(_run_shard, self.scatter, db, counters)
                       for db in exec_dbs]
            parts = [future.result() for future in futures]
        return self.finish(sharded, parts, counters)

    def finish(self, sharded: ShardedDatabase, parts: list[list[Row]],
               counters: "dict[str, int] | None" = None) -> list[Row]:
        """Merge per-shard result parts into the final rows (bag order).

        Shared by in-process execution above and the ``"process"`` backend,
        whose workers return exactly one part per shard.
        """
        if self.combine is not None:
            rows = self.combine(parts)
        else:
            rows = [row for part in parts for row in part]
        seed = self.gather if self.gather is not None else self.core
        if seed is None or seed is self.plan:
            return rows
        # Finishing operators: replay the suffix of the original plan over
        # the gathered rows by pre-seeding the executor's per-plan memo at
        # the highest absorbed node (structurally shared copies reuse it).
        executor = make_executor(sharded, counters)
        executor._memo[seed] = Batch.from_rows(seed.columns, rows)
        return executor.batch(self.plan).rows()

    def _shard_database(self, sharded: ShardedDatabase, index: int) -> Database:
        """Shard ``index``'s execution view: local + broadcast relations."""
        return shard_execution_database(sharded, index,
                                        self.partitioned, self.broadcast)


def _run_shard(scatter: Plan, db: Database,
               counters: "dict[str, int] | None" = None) -> list[Row]:
    return make_executor(db, counters).batch(scatter).rows()


def shard_plan(plan: Plan, sharded: ShardedDatabase,
               stats: StatsCatalog | None = None) -> ShardedPlan:
    """Compile one logical plan into a :class:`ShardedPlan`.

    Walks down from the root shedding finishing operators until a
    distributable core (or a splittable group-by over one) is found; falls
    back to single-node execution when none exists.  Under
    ``REPRO_VERIFY_PLANS`` the compiled plan is certified by the static
    verifier (:func:`repro.engine.verify.verify_sharded_plan`) before it is
    returned.
    """
    return maybe_verify_sharded(_compile_shard_plan(plan, sharded, stats),
                                sharded)


def _compile_shard_plan(plan: Plan, sharded: ShardedDatabase,
                        stats: StatsCatalog | None) -> ShardedPlan:
    node = plan
    shed: list[Plan] = []  # finishers shed on the way down, outermost first
    while True:
        try:
            scatter, dist = _rewrite(node, sharded, stats)
        except NotDistributable:
            scatter, dist = None, None
        if dist is not None:
            return _assemble(plan, node, scatter, None, dist, sharded, shed)
        if isinstance(node, AggregateP):
            try:
                inner, inner_dist = _rewrite(node.input, sharded, stats)
            except NotDistributable:
                inner, inner_dist = None, None
            if inner_dist is not None:
                split = split_aggregate(node, inner)
                if split is not None:
                    partial, combine = split
                    return _assemble(plan, node, partial, combine, inner_dist,
                                     sharded, shed)
        if isinstance(node, _FINISHERS):
            shed.append(node)
            node = node.input
            continue
        return ShardedPlan(plan, "fallback")


def _assemble(plan: Plan, core: Plan, scatter: Plan,
              combine: Callable[[list[list[Row]]], list[Row]] | None,
              dist: Distribution, sharded: ShardedDatabase,
              shed: list[Plan]) -> ShardedPlan:
    if not dist.partitioned:
        # Nothing is actually scattered (constant-only plans): single-node.
        return ShardedPlan(plan, "fallback")
    gather: Plan = core
    prereduced = False
    if combine is None:
        # Absorb row-deterministic finishers into the per-shard subplan so
        # shards gather finished rows instead of raw core rows.  FILTER and
        # PROJECT are per-row, so running them shard-side is exact and the
        # gather seeds at the highest absorbed node; a DISTINCT additionally
        # *pre-reduces* per shard (it must still replay globally over the
        # gather, since equal rows can straddle shards) — on a wide join the
        # gather then moves deduplicated projections, not the join's raw
        # cross-product, which is what keeps the process backend's IPC flat.
        for finisher in reversed(shed):
            if isinstance(finisher, FilterP):
                scatter = FilterP(scatter, finisher.condition)
                gather = finisher
            elif isinstance(finisher, ProjectP):
                scatter = ProjectP(scatter, finisher.exprs, finisher.names)
                gather = finisher
            elif isinstance(finisher, DistinctP):
                scatter = DistinctP(scatter)
                prereduced = True
                break
            else:  # SortLimitP: order/limit only hold over the global bag
                break
    index = _routed_shard(scatter, dist, sharded)
    return ShardedPlan(plan, "single" if index is not None else "scatter",
                       core=core, scatter=scatter, combine=combine,
                       partitioned=dist.partitioned, broadcast=dist.broadcast,
                       key=dist.key, shard_index=index, gather=gather,
                       prereduced=prereduced)


# ---------------------------------------------------------------------------
# Single-shard (point-query) routing
# ---------------------------------------------------------------------------

def _routed_shard(scatter: Plan, dist: Distribution,
                  sharded: ShardedDatabase) -> int | None:
    """The single shard that can produce rows, or ``None``.

    Routing applies when **every** occurrence of a scattered relation sits
    under a filter whose conjuncts pin the relation's full shard key to
    constants, and every pinned key hashes to the same shard.  (The
    optimizer pushes filters onto scans, so point queries reliably take
    this shape.)
    """
    shards: set[int] = set()
    exhaustive = _collect_pins(scatter, dist.partitioned, sharded, shards)
    if exhaustive and len(shards) == 1:
        return next(iter(shards))
    return None


def _collect_pins(node: Plan, partitioned: frozenset[str],
                  sharded: ShardedDatabase, shards: set[int]) -> bool:
    if isinstance(node, FilterP) and isinstance(node.input, ScanP):
        scan = node.input
        if scan.relation.lower() not in partitioned:
            return True
        index = _pinned_shard(node, scan, sharded)
        if index is None:
            return False
        shards.add(index)
        return True
    if isinstance(node, (ScanP, DeltaScanP)):
        return node.relation.lower() not in partitioned
    return all(_collect_pins(child, partitioned, sharded, shards)
               for child in node.children())


def _pinned_shard(filter_plan: FilterP, scan: ScanP,
                  sharded: ShardedDatabase) -> int | None:
    name = scan.relation.lower()
    schema = sharded.shard(0).relation(name).schema
    key_positions = [schema.index_of(a) for a in sharded.shard_key(name)]
    pinned: dict[int, Any] = {}
    for conjunct in e.conjuncts(filter_plan.condition):
        if not (isinstance(conjunct, e.Comparison) and conjunct.op == "="):
            continue
        for col, const in ((conjunct.left, conjunct.right),
                           (conjunct.right, conjunct.left)):
            position = _column_position(col, scan.columns)
            if position is not None and isinstance(const, e.Const) \
                    and const.value is not None:
                pinned.setdefault(position, const.value)
    if not all(p in pinned for p in key_positions):
        return None
    if len(key_positions) == 1:
        return sharded.shard_of_value(pinned[key_positions[0]])
    return sharded.shard_of_value(tuple(pinned[p] for p in key_positions))


# ---------------------------------------------------------------------------
# The backend object
# ---------------------------------------------------------------------------

class ShardedBackend:
    """:class:`ExecutorBackend` running plans scatter-gather over shards.

    Given a :class:`~repro.data.sharded.ShardedDatabase` the backend uses
    its layout directly; given a plain :class:`Database` it transparently
    hash-partitions a copy into ``n_shards`` (cached per database object
    and rebuilt when the source version moves), so
    ``run_query(..., backend="sharded")`` works on any database.  Compiled
    :class:`ShardedPlan` objects are cached per (plan, structure version);
    per-shard subplans execute concurrently on the worker pool shared with
    the ``"parallel"`` backend.  ``get_backend("sharded")`` returns a
    process-wide singleton; construct instances directly to pin the shard
    count or keys for auto-sharded databases.
    """

    name = "sharded"

    _PLAN_CACHE_LIMIT = 256

    def __init__(self, n_shards: int = DEFAULT_N_SHARDS,
                 shard_keys: "dict[str, Any] | None" = None) -> None:
        if n_shards <= 0:
            raise ValueError(f"shard count must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self.shard_keys = shard_keys
        self._auto: "WeakKeyDictionary[Database, tuple[int, ShardedDatabase]]" \
            = WeakKeyDictionary()
        self._plans: "WeakKeyDictionary[ShardedDatabase, dict]" \
            = WeakKeyDictionary()
        self._lock = threading.Lock()
        self.counters = {"scatter": 0, "single_shard": 0, "fallback": 0,
                         "kernel_cache_hits": 0, "kernel_cache_misses": 0,
                         "kernel_cache_evictions": 0}

    # -- plumbing ----------------------------------------------------------

    def sharded_view(self, db: Database) -> ShardedDatabase:
        """``db`` itself when already sharded, else a cached partitioning."""
        if isinstance(db, ShardedDatabase):
            return db
        with self._lock:
            cached = self._auto.get(db)
            version = db.version
            if cached is not None and cached[0] == version:
                return cached[1]
            sharded = ShardedDatabase.from_database(
                db, self.n_shards, self.shard_keys)
            self._auto[db] = (version, sharded)
            return sharded

    def plan_for(self, plan: Plan, sharded: ShardedDatabase) -> ShardedPlan:
        """The cached scatter-gather compilation of one plan."""
        with self._lock:
            cache = self._plans.get(sharded)
            if cache is None:
                self._plans[sharded] = cache = {}
            key = (plan, sharded.structure_version)
            compiled = cache.get(key)
        if compiled is None:
            compiled = shard_plan(plan, sharded, StatsCatalog(sharded))
            with self._lock:
                if len(cache) >= self._PLAN_CACHE_LIMIT:
                    cache.clear()
                cache[key] = compiled
        return compiled

    def execution_counts(self) -> dict[str, int]:
        """Routing counts plus this backend's kernel-cache traffic.

        ``scatter``/``single_shard``/``fallback`` count compiled-plan
        routing; ``kernel_cache_hits``/``_misses``/``_evictions`` count
        derived-structure cache traffic attributable to *this* backend's
        executors (the process-wide totals are
        :func:`repro.engine.kernels.cache_stats`).  Worker processes of the
        ``"process"`` backend keep their own in-process caches, so their
        traffic does not appear in the parent's counters.
        ``plans_verified``/``plans_failed`` report the process-wide static
        verifier tallies (see :mod:`repro.engine.verify`) so operators can
        confirm the ``REPRO_VERIFY_PLANS`` hooks actually ran.
        """
        with self._lock:
            counts = dict(self.counters)
        counts.update(verification_counts())
        return counts

    def _bump(self, name: str) -> None:
        with self._lock:
            self.counters[name] += 1

    # -- ExecutorBackend ---------------------------------------------------

    def execute(self, plan: Plan, db: Database) -> list[Row]:
        from repro.engine.parallel import PARALLEL_BACKEND

        sharded = self.sharded_view(db)
        compiled = self.plan_for(plan, sharded)
        self._bump({"scatter": "scatter", "single": "single_shard",
                    "fallback": "fallback"}[compiled.mode])
        submit = PARALLEL_BACKEND.pool().submit if compiled.mode == "scatter" \
            else None
        return compiled.execute(sharded, submit, self.counters)


#: The process-wide backend instance ``get_backend("sharded")`` serves.
SHARDED_BACKEND = ShardedBackend()
