"""Partitioned parallel plan execution (the ``"parallel"`` backend).

This backend runs the same columnar operators as
:mod:`repro.engine.vectorized` — it *is* a :class:`VectorizedExecutor` — but
splits the two heaviest inner loops across a worker pool:

* **hash-join probes**: the build side still becomes one shared, read-only
  hash table (reusing the storage layer's cached
  :meth:`~repro.data.relation.Relation.key_index` when it is a base-table
  scan); the *probe side* is partitioned into contiguous spans, one per
  worker.  Each span probes independently and emits its own selection-vector
  pair; concatenating the pairs in span order reproduces the sequential
  probe's output order exactly, so the backend stays not just bag-equal but
  row-order-identical to ``"vectorized"`` (LIMIT without ORDER BY agrees).
* **group-by**: the aggregation input is *hash-partitioned* on the group
  key (the same discipline as :meth:`Relation.partition_by`), so no group
  ever straddles two workers.  Each worker groups its partition into
  ``(first_occurrence_index, member_indices)`` pairs; the merge concatenates
  the partial results and sorts by first-occurrence index, restoring the
  sequential backend's group order.

Both loops fall back to the sequential code below
:data:`DEFAULT_MIN_PARTITION_ROWS` rows — partitioning a small input costs
more in task overhead than it saves.  Workers are plain threads sharing the
process (CPython threads interleave row work under the GIL; the partitioned
structure is what a free-threaded build or a process pool would scale with,
and ``benchmarks/bench_e3_parallel.py`` records the measured throughput
honestly either way).

The backend registers as the third :class:`repro.engine.execute.ExecutorBackend`
(``backend="parallel"``) and is pinned bag-equal to ``"vectorized"`` over the
whole canonical catalog by ``tests/test_parallel.py``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.data.database import Database
from repro.engine.execute import Row
from repro.engine.plan import Plan
from repro.engine.vectorized import Batch, VectorizedExecutor, _key_columns

#: Inputs smaller than this run the sequential vectorized loops: the
#: per-task submit/result overhead would dominate the row work saved.
DEFAULT_MIN_PARTITION_ROWS = 1024


def default_workers() -> int:
    """Worker-pool width: the machine's cores, clamped to [2, 8].

    At least 2 so the partitioned code paths actually run (they are the
    correctness surface under test) even on single-core containers.
    """
    return max(2, min(8, os.cpu_count() or 1))


def _spans(length: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(length)`` into at most ``parts`` contiguous spans."""
    parts = max(1, min(parts, length))
    step = -(-length // parts)  # ceil
    return [(lo, min(lo + step, length)) for lo in range(0, length, step)]


def _probe_span(key_columns: list[list[Any]], lo: int, hi: int,
                table: dict[Any, list[int]], single: bool,
                check_nulls: bool) -> tuple[list[int], list[int]]:
    """One worker's share of the probe: rows ``[lo, hi)`` of the probe side.

    Mirrors :func:`repro.engine.vectorized._probe` over a span, emitting
    span-local output in ascending probe order so span-order concatenation
    equals the sequential probe.
    """
    left_sel: list[int] = []
    right_sel: list[int] = []
    lappend = left_sel.append
    lextend = left_sel.extend
    rappend = right_sel.append
    rextend = right_sel.extend
    get = table.get
    if single:
        keys = key_columns[0]
        for i in range(lo, hi):
            key = keys[i]
            if check_nulls and key is None:
                continue
            matches = get(key)
            if matches:
                if len(matches) == 1:
                    lappend(i)
                    rappend(matches[0])
                else:
                    lextend([i] * len(matches))
                    rextend(matches)
        return left_sel, right_sel
    for i in range(lo, hi):
        key = tuple(column[i] for column in key_columns)
        if check_nulls and None in key:
            continue
        matches = get(key)
        if matches:
            if len(matches) == 1:
                lappend(i)
                rappend(matches[0])
            else:
                lextend([i] * len(matches))
                rextend(matches)
    return left_sel, right_sel


def _group_partition(key_arrays: list[list[Any]],
                     indices: list[int]) -> list[tuple[int, list[int]]]:
    """Group one hash partition's row indices by key.

    Returns ``(first_occurrence_index, member_indices)`` pairs; members keep
    ascending row order because ``indices`` is ascending.  Keys are raw
    values for single-key grouping — value hashing means a partition owns
    *all* rows of each of its keys, so the pairs are complete groups.
    """
    groups: dict[Any, list[int]] = {}
    out: list[tuple[int, list[int]]] = []
    if len(key_arrays) == 1:
        array = key_arrays[0]
        for i in indices:
            key = array[i]
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                out.append((i, bucket))
            bucket.append(i)
        return out
    for i in indices:
        key = tuple(array[i] for array in key_arrays)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = bucket = []
            out.append((i, bucket))
        bucket.append(i)
    return out


class ParallelExecutor(VectorizedExecutor):
    """A vectorized executor whose probe and group loops run partitioned."""

    def __init__(self, db: Database, pool: ThreadPoolExecutor, workers: int,
                 min_partition_rows: int) -> None:
        super().__init__(db)
        self._pool = pool
        self._workers = workers
        self._min_rows = min_partition_rows

    # -- hash-join probe ---------------------------------------------------

    def _probe_batch(self, batch: Batch, idx: list[int],
                     table: dict[Any, list[int]],
                     null_matches: bool) -> tuple[list[int], list[int]]:
        if batch.length < self._min_rows or self._workers < 2 or not idx:
            return super()._probe_batch(batch, idx, table, null_matches)
        key_columns = _key_columns(batch, idx)
        single = len(idx) == 1
        check_nulls = (not null_matches) and any(
            None in column for column in key_columns)
        futures = [
            self._pool.submit(_probe_span, key_columns, lo, hi, table,
                              single, check_nulls)
            for lo, hi in _spans(batch.length, self._workers)
        ]
        left_sel: list[int] = []
        right_sel: list[int] = []
        for future in futures:
            span_left, span_right = future.result()
            left_sel.extend(span_left)
            right_sel.extend(span_right)
        return left_sel, right_sel

    # -- group-by ----------------------------------------------------------

    def _group_members(self, key_arrays: list[list[Any]], n: int
                       ) -> tuple[list[int], list[list[int]]]:
        if not key_arrays or n < self._min_rows or self._workers < 2:
            return super()._group_members(key_arrays, n)
        parts: list[list[int]] = [[] for _ in range(self._workers)]
        workers = self._workers
        if len(key_arrays) == 1:
            array = key_arrays[0]
            for i in range(n):
                parts[hash(array[i]) % workers].append(i)
        else:
            for i, key in enumerate(zip(*key_arrays)):
                parts[hash(key) % workers].append(i)
        futures = [self._pool.submit(_group_partition, key_arrays, indices)
                   for indices in parts if indices]
        merged: list[tuple[int, list[int]]] = []
        for future in futures:
            merged.extend(future.result())
        # Partitions own disjoint key sets, so this sort by first-occurrence
        # index is the whole merge: it restores the sequential group order.
        merged.sort(key=lambda pair: pair[0])
        return [rep for rep, _ in merged], [members for _, members in merged]


class ParallelBackend:
    """:class:`ExecutorBackend` running plans with partitioned parallelism.

    One backend owns one lazily created worker pool, shared across all its
    ``execute`` calls (and across the serving layer's concurrent requests —
    ``submit`` is thread-safe).  ``get_backend("parallel")`` returns a
    process-wide singleton so warm serving paths never pay pool start-up;
    construct instances directly to pin ``workers`` or the partition
    threshold (tests use ``min_partition_rows=1`` to force the partitioned
    paths on tiny catalogs).
    """

    name = "parallel"

    def __init__(self, workers: int | None = None,
                 min_partition_rows: int = DEFAULT_MIN_PARTITION_ROWS) -> None:
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.min_partition_rows = min_partition_rows
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def pool(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-parallel")
                    self._pool = pool
            # Outside the lock: lifecycle.close_all may call close(), which
            # takes the same lock from the atexit thread.
            from repro.engine import lifecycle

            lifecycle.register(self)
        return pool

    def close(self) -> None:
        """Shut the worker pool down (a later ``pool()`` call recreates it).

        Idempotent.  Registered with :mod:`repro.engine.lifecycle` on first
        pool creation, so interpreter exit always joins the worker threads.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def execute(self, plan: Plan, db: Database) -> list[Row]:
        executor = ParallelExecutor(db, self.pool(), self.workers,
                                    self.min_partition_rows)
        return executor.batch(plan).rows()


#: The process-wide backend instance ``get_backend("parallel")`` serves.
PARALLEL_BACKEND = ParallelBackend()
