"""Insert-delta plan rewriting and incremental view maintenance.

This module is the engine half of the materialized-view subsystem (the
service half — registry, locking, refresh policy — lives in
:mod:`repro.core.service`).  Given the optimized logical plan of a query, it
derives the machinery to keep a materialized answer current under appends:

* :func:`delta_terms` rewrites a *bag-maintainable* plan fragment (scans,
  filters, projections, inner/cross joins, bag unions) into its **insert
  delta**: one term per base-relation occurrence, following the classic
  telescoping identity ``Δ(L ⋈ R) = ΔL ⋈ R_new  ∪  L_old ⋈ ΔR`` with
  :class:`~repro.engine.plan.DeltaScanP` windows at the leaves.  Each term is
  re-run through the cost-based optimizer, whose statistics estimate delta
  windows tiny — so every term is seated at its delta occurrence and probes
  the existing hash indexes, the semi-join discipline of semi-naive
  evaluation.
* :func:`find_core` decomposes a view plan into a maintainable **core**
  (plain bag, ``DISTINCT`` over a bag, or aggregation over a bag) plus a
  stack of *finishing* operators re-applied to the (small) core output on
  refresh.
* The maintainer classes hold the per-view state: the materialized bag, the
  first-seen set of a distinct view, per-group accumulators of an aggregate
  view, or the fact sets of a recursive Datalog view (maintained by resuming
  semi-naive evaluation from the new frontier — see
  :func:`repro.engine.execute.compute_datalog_facts`).

Everything here is **insert-only**: deletions and updates are out of scope,
and non-monotone operators (anti/semi joins, ``EXCEPT``/``INTERSECT``,
division, sorting with ``LIMIT``) raise :class:`DeltaRewriteError`, which the
service layer answers by falling back to rebuild-on-refresh.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.data.database import Database
from repro.data.relation import Relation
from repro.expr import ast as e
from repro.engine.execute import (
    Executor,
    Row,
    build_result_relation,
    compiled_expr,
    compute_datalog_facts,
    get_backend,
)
from repro.engine.plan import (
    AggregateP,
    DeltaScanP,
    DistinctP,
    FilterP,
    JoinP,
    Plan,
    ProjectP,
    ScanP,
    SetOpP,
    SortLimitP,
)
from repro.engine.verify import maybe_verify

__all__ = [
    "AggregateMaintainer",
    "BagMaintainer",
    "DatalogMaintainer",
    "DeltaRewriteError",
    "DistinctMaintainer",
    "ViewMaintainer",
    "anchor",
    "asof_plan",
    "base_relations",
    "build_maintainer",
    "delta_terms",
    "find_core",
    "finish_rows",
    "term_delta_relation",
]


class DeltaRewriteError(Exception):
    """The plan (or program) is outside the insert-delta-maintainable fragment."""


# ---------------------------------------------------------------------------
# Delta rewriting
# ---------------------------------------------------------------------------

def base_relations(plan: Plan) -> tuple[str, ...]:
    """Lower-cased base relations a plan reads, in first-occurrence order."""
    seen: dict[str, None] = {}
    for node in plan.walk():
        if isinstance(node, (ScanP, DeltaScanP)):
            seen.setdefault(node.relation.lower())
    return tuple(seen)


def asof_plan(plan: Plan) -> Plan:
    """The plan evaluated over every base relation's *old* state.

    Valid for the bag-maintainable fragment only: each operator there is
    computed leaf-wise, so substituting as-of windows at the leaves yields
    exactly the operator's old output.
    """
    if isinstance(plan, ScanP):
        return DeltaScanP(plan.relation, plan.columns, None, "asof")
    if isinstance(plan, FilterP):
        return FilterP(asof_plan(plan.input), plan.condition)
    if isinstance(plan, ProjectP):
        return ProjectP(asof_plan(plan.input), plan.exprs, plan.names)
    if isinstance(plan, JoinP) and plan.kind in ("inner", "cross"):
        return JoinP(asof_plan(plan.left), asof_plan(plan.right), plan.kind,
                     plan.left_keys, plan.right_keys, plan.residual,
                     plan.null_matches)
    if isinstance(plan, SetOpP) and plan.op == "union" and not plan.distinct:
        return SetOpP("union", asof_plan(plan.left), asof_plan(plan.right),
                      distinct=False)
    raise DeltaRewriteError(
        f"{type(plan).__name__} is not insert-delta maintainable"
    )


def _projection_positions(plan: Plan) -> list[int] | None:
    """Input positions of a pure column-pick projection, else ``None``."""
    from repro.engine.vectorized import _column_position

    if not isinstance(plan, ProjectP):
        return None
    positions = []
    for expr in plan.exprs:
        position = _column_position(expr, plan.input.columns)
        if position is None:
            return None
        positions.append(position)
    return positions


def hoist_projections(plan: Plan) -> Plan:
    """Bubble pure column-pick projections above joins and filters.

    The optimizer's join reordering restores column order with interior
    projections; those block the flattening (and hence the cost-based
    re-seating) of delta terms, leaving an as-of side evaluated as one big
    block join.  Hoisting is semantics-preserving — join keys, residuals and
    filter conditions are remapped positionally onto the projection's input —
    and turns the maintainable fragment into a pure join tree with a single
    projection stack on top, which delta terms then flatten through.  Any
    remapping ambiguity falls back to the unhoisted node (slower, correct).
    """
    from repro.engine.lower import _PositionCol
    from repro.engine.plan import PlanError, resolve_column

    if isinstance(plan, FilterP):
        child = hoist_projections(plan.input)
        positions = _projection_positions(child)
        if positions is None:
            return FilterP(child, plan.condition) if child is not plan.input \
                else plan
        inner = child.input
        try:
            condition = _remap_positional(plan.condition, child.columns,
                                          [inner.columns[p] for p in positions])
        except PlanError:
            return FilterP(child, plan.condition)
        assert isinstance(child, ProjectP)
        return ProjectP(FilterP(inner, condition), child.exprs, child.names)
    if isinstance(plan, ProjectP):
        child = hoist_projections(plan.input)
        outer = _projection_positions(
            ProjectP(child, plan.exprs, plan.names)
            if child is not plan.input else plan)
        inner_positions = _projection_positions(child)
        if outer is not None and inner_positions is not None:
            assert isinstance(child, ProjectP)
            composed = [inner_positions[p] for p in outer]
            return ProjectP(child.input,
                            tuple(_PositionCol(p) for p in composed),
                            plan.names)
        if child is not plan.input:
            return ProjectP(child, plan.exprs, plan.names)
        return plan
    if isinstance(plan, JoinP) and plan.kind in ("inner", "cross"):
        left = hoist_projections(plan.left)
        right = hoist_projections(plan.right)
        left_positions = _projection_positions(left)
        right_positions = _projection_positions(right)
        if left_positions is None and right_positions is None:
            if left is plan.left and right is plan.right:
                return plan
            return JoinP(left, right, plan.kind, plan.left_keys,
                         plan.right_keys, plan.residual, plan.null_matches)
        inner_left = left.input if left_positions is not None else left
        inner_right = right.input if right_positions is not None else right
        if left_positions is None:
            left_positions = list(range(len(left.columns)))
        if right_positions is None:
            right_positions = list(range(len(right.columns)))
        out_spellings = (
            [inner_left.columns[p] for p in left_positions]
            + [inner_right.columns[p] for p in right_positions])
        try:
            left_keys = tuple(
                inner_left.columns[left_positions[
                    resolve_column(left.columns, key)]]
                for key in plan.left_keys)
            right_keys = tuple(
                inner_right.columns[right_positions[
                    resolve_column(right.columns, key)]]
                for key in plan.right_keys)
            residual = None
            if plan.residual is not None:
                residual = _remap_positional(
                    plan.residual, plan.columns, out_spellings)
        except PlanError:
            return JoinP(left, right, plan.kind, plan.left_keys,
                         plan.right_keys, plan.residual, plan.null_matches)
        joined = JoinP(inner_left, inner_right, plan.kind, left_keys,
                       right_keys, residual, plan.null_matches)
        width = len(inner_left.columns)
        exprs = tuple(_PositionCol(p) for p in left_positions) \
            + tuple(_PositionCol(width + p) for p in right_positions)
        return ProjectP(joined, exprs, plan.columns)
    children = plan.children()
    if not children:
        return plan
    rebuilt = tuple(hoist_projections(child) for child in children)
    if all(new is old for new, old in zip(rebuilt, children)):
        return plan
    if isinstance(plan, (DistinctP, AggregateP, SortLimitP)):
        return replace(plan, input=rebuilt[0])
    if isinstance(plan, (JoinP, SetOpP)):
        return replace(plan, left=rebuilt[0], right=rebuilt[1])
    return plan


def _remap_positional(expr: e.Expr, from_cols: Sequence[str],
                      to_cols: Sequence[str]) -> e.Expr:
    """Rewrite every column ref by position from one layout to another."""
    from repro.engine.plan import resolve_column

    def remap(col: e.Col) -> e.Col:
        idx = resolve_column(tuple(from_cols), col.name, col.qualifier)
        spelling = to_cols[idx]
        qualifier, _, name = spelling.rpartition(".")
        return e.Col(name if qualifier else spelling, qualifier or None)

    return e.map_columns(expr, remap)


def delta_terms(plan: Plan) -> list[Plan]:
    """The insert delta of a bag-maintainable plan, as a list of terms.

    Each term contains exactly **one** ``delta``-window leaf (plus any number
    of full and as-of leaves); their bag union is exactly the rows the plan
    gains when the appends behind the delta windows are applied.  Keeping the
    terms separate (instead of one big union plan) lets the refresh prune
    terms whose delta relation saw no writes before executing anything.
    """
    if isinstance(plan, ScanP):
        return [DeltaScanP(plan.relation, plan.columns, None, "delta")]
    if isinstance(plan, FilterP):
        return [FilterP(term, plan.condition)
                for term in delta_terms(plan.input)]
    if isinstance(plan, ProjectP):
        return [ProjectP(term, plan.exprs, plan.names)
                for term in delta_terms(plan.input)]
    if isinstance(plan, JoinP) and plan.kind in ("inner", "cross"):
        old_left = None
        terms = [JoinP(term, plan.right, plan.kind, plan.left_keys,
                       plan.right_keys, plan.residual, plan.null_matches)
                 for term in delta_terms(plan.left)]
        for term in delta_terms(plan.right):
            if old_left is None:
                old_left = asof_plan(plan.left)
            terms.append(JoinP(old_left, term, plan.kind, plan.left_keys,
                               plan.right_keys, plan.residual,
                               plan.null_matches))
        return terms
    if isinstance(plan, SetOpP) and plan.op == "union" and not plan.distinct:
        return delta_terms(plan.left) + delta_terms(plan.right)
    raise DeltaRewriteError(
        f"{type(plan).__name__} is not insert-delta maintainable"
    )


def term_delta_relation(term: Plan) -> str:
    """The (lower-cased) relation behind a term's single delta window."""
    for node in term.walk():
        if isinstance(node, DeltaScanP) and node.mode == "delta":
            return node.relation.lower()
    raise DeltaRewriteError("term has no delta window")


def anchor(plan: Plan, anchors: Mapping[str, int]) -> Plan:
    """Substitute per-relation version anchors into a delta/as-of template.

    ``anchors`` maps lower-cased relation names to the
    :attr:`~repro.data.relation.Relation.version` the view last absorbed.
    """
    if isinstance(plan, DeltaScanP):
        since = anchors.get(plan.relation.lower())
        if since is None:
            raise DeltaRewriteError(
                f"no version anchor for relation {plan.relation!r}"
            )
        return replace(plan, since=since)
    children = plan.children()
    if not children:
        return plan
    rebuilt = tuple(anchor(child, anchors) for child in children)
    if all(new is old for new, old in zip(rebuilt, children)):
        return plan
    if isinstance(plan, (FilterP, ProjectP, DistinctP, AggregateP, SortLimitP)):
        return replace(plan, input=rebuilt[0])
    if isinstance(plan, (JoinP, SetOpP)):
        return replace(plan, left=rebuilt[0], right=rebuilt[1])
    raise DeltaRewriteError(f"cannot anchor {type(plan).__name__}")


# ---------------------------------------------------------------------------
# Core discovery
# ---------------------------------------------------------------------------

#: Operators that may sit *above* the maintainable core and are re-applied to
#: its (small) output on every refresh.  ``SortLimitP`` is excluded: ``LIMIT``
#: keeps a prefix of a bag whose order incremental maintenance does not
#: reproduce, so such views rebuild instead.
_FINISHING = (FilterP, ProjectP, DistinctP)


def _is_bag_maintainable(plan: Plan) -> bool:
    try:
        delta_terms(plan)
        return True
    except DeltaRewriteError:
        return False


def find_core(plan: Plan) -> tuple[Plan, str]:
    """Locate the maintainable core of a view plan.

    Returns ``(core_subplan, kind)`` with ``kind`` one of ``"bag"``,
    ``"distinct"``, ``"aggregate"``; raises :class:`DeltaRewriteError` when
    no maintainable core exists (the view must rebuild on refresh).
    """
    if _is_bag_maintainable(plan):
        return plan, "bag"
    if isinstance(plan, DistinctP) and _is_bag_maintainable(plan.input):
        return plan, "distinct"
    if isinstance(plan, AggregateP) and _is_bag_maintainable(plan.input):
        return plan, "aggregate"
    if isinstance(plan, _FINISHING):
        return find_core(plan.children()[0])
    raise DeltaRewriteError(
        f"no maintainable core under {type(plan).__name__}"
    )


def finish_rows(db: Database, plan: Plan, core: Plan,
                core_rows: list[Row]) -> list[Row]:
    """Apply the finishing operators above ``core`` to its maintained rows.

    Implemented by seeding a row executor's per-plan memo with the core's
    rows: every operator above the core then runs through the production
    row operators, so finishing semantics cannot drift from the executors'.
    """
    if plan is core or plan == core:
        return core_rows
    executor = Executor(db)
    executor._memo[core] = core_rows
    return executor.rows(plan)


# ---------------------------------------------------------------------------
# Delta source: shared execution plumbing for the maintainers
# ---------------------------------------------------------------------------

class _DeltaSource:
    """Optimized delta terms of one bag-maintainable plan.

    The terms are optimized once (cost-based reordering seats each at its
    tiny delta window); a refresh unions the terms whose delta relation
    actually changed and executes them as one plan, so the executor's
    per-plan memo shares as-of subplans across terms.
    """

    def __init__(self, plan: Plan, db: Database) -> None:
        from repro.engine.optimize import optimize

        self.plan = plan
        # Hoisting first lets every term flatten into one join tree, which
        # the cost-based reorder then seats at its tiny delta window.  Each
        # term is verified as produced (before the optimizer's own hooks
        # run) so a bad delta rewrite is reported under its own rule name.
        hoisted = hoist_projections(plan)
        self.terms = [(term_delta_relation(term),
                       optimize(maybe_verify(term, db, rule="delta_terms"),
                                db))
                      for term in delta_terms(hoisted)]

    def full_rows(self, db: Database, backend: str) -> list[Row]:
        return get_backend(backend).execute(self.plan, db)

    def delta_rows(self, db: Database, anchors: Mapping[str, int],
                   changed: set[str], backend: str) -> list[Row]:
        """Rows the plan gained since ``anchors``; empty if nothing changed."""
        active = [anchor(term, anchors)
                  for relation, term in self.terms if relation in changed]
        if not active:
            return []
        union = active[0]
        for term in active[1:]:
            union = SetOpP("union", union, term, distinct=False)
        # About to execute: every delta window must be anchored by now.
        maybe_verify(union, db, rule="anchor", require_anchored=True)
        return get_backend(backend).execute(union, db)


# ---------------------------------------------------------------------------
# Aggregate accumulators (insert-only, matching the executors' folds)
# ---------------------------------------------------------------------------

class _CountStarAcc:
    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def update(self, value: Any) -> None:
        self.n += 1

    def final(self) -> Any:
        return self.n

    @staticmethod
    def empty() -> Any:
        return 0


class _CountAcc:
    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def update(self, value: Any) -> None:
        if value is not None:
            self.n += 1

    def final(self) -> Any:
        return self.n

    @staticmethod
    def empty() -> Any:
        return 0


class _SumAcc:
    """SUM/AVG: a running total plus the non-NULL count."""

    __slots__ = ("total", "n", "average")

    def __init__(self, average: bool) -> None:
        self.total: Any = None
        self.n = 0
        self.average = average

    def update(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value
        self.n += 1

    def final(self) -> Any:
        if self.n == 0:
            return None
        return self.total / self.n if self.average else self.total

    @staticmethod
    def empty() -> Any:
        return None


class _MinMaxAcc:
    """MIN/MAX: monotone under inserts, so one running value suffices."""

    __slots__ = ("value", "pick")

    def __init__(self, pick: Callable[[Any, Any], Any]) -> None:
        self.value: Any = None
        self.pick = pick

    def update(self, value: Any) -> None:
        if value is None:
            return
        self.value = value if self.value is None else self.pick(self.value, value)

    def final(self) -> Any:
        return self.value

    @staticmethod
    def empty() -> Any:
        return None


class _DistinctAcc:
    """DISTINCT aggregates keep the ordered set of seen values."""

    __slots__ = ("name", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.values: dict[Any, None] = {}

    def update(self, value: Any) -> None:
        if value is not None:
            self.values.setdefault(value)

    def final(self) -> Any:
        from repro.engine.vectorized import _fold

        return _fold(self.name, list(self.values))

    def empty(self) -> Any:
        return 0 if self.name == "count" else None


def _accumulator_spec(call: e.FuncCall, columns: tuple[str, ...]
                      ) -> tuple[Callable[[], Any], Callable[[Row], Any] | None]:
    """``(make_accumulator, value_fn)`` for one aggregate call.

    ``value_fn`` is ``None`` for ``COUNT(*)`` (which counts rows, not
    values).  Unknown aggregates raise :class:`DeltaRewriteError` so the view
    falls back to rebuild-on-refresh instead of silently diverging.
    """
    name = call.name
    if name == "count" and call.args and isinstance(call.args[0], e.Star):
        return _CountStarAcc, None
    if not call.args:
        raise DeltaRewriteError(f"aggregate {name.upper()} needs an argument")
    value_fn = compiled_expr(call.args[0], columns)
    if call.distinct:
        if name not in ("count", "sum", "avg", "min", "max"):
            raise DeltaRewriteError(f"unknown aggregate {name!r}")
        return (lambda: _DistinctAcc(name)), value_fn
    if name == "count":
        return _CountAcc, value_fn
    if name == "sum":
        return (lambda: _SumAcc(False)), value_fn
    if name == "avg":
        return (lambda: _SumAcc(True)), value_fn
    if name == "min":
        return (lambda: _MinMaxAcc(min)), value_fn
    if name == "max":
        return (lambda: _MinMaxAcc(max)), value_fn
    raise DeltaRewriteError(f"unknown aggregate {name!r}")


# ---------------------------------------------------------------------------
# Maintainers
# ---------------------------------------------------------------------------

class ViewMaintainer:
    """Base class: incremental state for one materialized view core.

    Lifecycle (all calls made under the service's write lock):

    * :meth:`initialize` — full computation, resetting any previous state
      (also the rebuild path);
    * :meth:`apply_delta` — absorb the appends past ``anchors`` for the
      relations in ``changed``; raises
      :class:`~repro.engine.plan.DeltaUnavailable` when a relation's bounded
      delta log no longer covers the window (the caller rebuilds);
    * :meth:`rows` — the core's current output rows.
    """

    kind = "abstract"

    def initialize(self, db: Database, backend: str) -> None:
        raise NotImplementedError

    def apply_delta(self, db: Database, anchors: Mapping[str, int],
                    changed: set[str], backend: str) -> None:
        raise NotImplementedError

    def rows(self) -> list[Row]:
        raise NotImplementedError


class BagMaintainer(ViewMaintainer):
    """A plain bag view: the materialized rows grow by the delta terms."""

    kind = "bag"

    def __init__(self, plan: Plan, db: Database) -> None:
        self.source = _DeltaSource(plan, db)
        self._rows: list[Row] = []

    def initialize(self, db: Database, backend: str) -> None:
        self._rows = list(self.source.full_rows(db, backend))

    def apply_delta(self, db: Database, anchors: Mapping[str, int],
                    changed: set[str], backend: str) -> None:
        self._rows.extend(self.source.delta_rows(db, anchors, changed, backend))

    def rows(self) -> list[Row]:
        return self._rows


class DistinctMaintainer(ViewMaintainer):
    """``DISTINCT`` over a bag: first-seen set semantics, insert-monotone."""

    kind = "distinct"

    def __init__(self, plan: DistinctP, db: Database) -> None:
        self.source = _DeltaSource(plan.input, db)
        self._seen: set[Row] = set()
        self._rows: list[Row] = []

    def initialize(self, db: Database, backend: str) -> None:
        self._seen = set()
        self._rows = []
        self._absorb(self.source.full_rows(db, backend))

    def apply_delta(self, db: Database, anchors: Mapping[str, int],
                    changed: set[str], backend: str) -> None:
        self._absorb(self.source.delta_rows(db, anchors, changed, backend))

    def _absorb(self, rows: Iterable[Row]) -> None:
        seen = self._seen
        out = self._rows
        for row in rows:
            if row not in seen:
                seen.add(row)
                out.append(row)

    def rows(self) -> list[Row]:
        return self._rows


class AggregateMaintainer(ViewMaintainer):
    """Grouped aggregation over a bag, maintained via per-group accumulators.

    Replicates the executors' aggregate semantics exactly: the output row is
    the group's first input row (the representative) followed by one value
    per aggregate, groups in first-arrival order, and the SQL ungrouped-empty
    special case (one all-NULL representative, ``COUNT`` = 0).
    """

    kind = "aggregate"

    def __init__(self, plan: AggregateP, db: Database) -> None:
        self.plan = plan
        self.source = _DeltaSource(plan.input, db)
        columns = plan.input.columns
        self._width = len(columns)
        self._key_fns = [compiled_expr(x, columns) for x in plan.group_exprs]
        self._specs = [_accumulator_spec(call, columns)
                       for call, _name in plan.aggregates]
        # key -> (representative row, [accumulator per aggregate])
        self._groups: dict[tuple, tuple[Row, list[Any]]] = {}

    def initialize(self, db: Database, backend: str) -> None:
        self._groups = {}
        self._absorb(self.source.full_rows(db, backend))

    def apply_delta(self, db: Database, anchors: Mapping[str, int],
                    changed: set[str], backend: str) -> None:
        self._absorb(self.source.delta_rows(db, anchors, changed, backend))

    def _absorb(self, rows: Iterable[Row]) -> None:
        groups = self._groups
        key_fns = self._key_fns
        specs = self._specs
        for row in rows:
            key = tuple(fn(row) for fn in key_fns)
            entry = groups.get(key)
            if entry is None:
                entry = (row, [make() for make, _value in specs])
                groups[key] = entry
            for (_make, value_fn), acc in zip(specs, entry[1]):
                acc.update(row if value_fn is None else value_fn(row))

    def rows(self) -> list[Row]:
        if not self._key_fns and not self._groups:
            # SQL's ungrouped aggregate over empty input: one all-NULL
            # representative row with each aggregate's empty fold.
            empties = tuple(make().empty() for make, _value in self._specs)
            return [(None,) * self._width + empties]
        return [representative + tuple(acc.final() for acc in accs)
                for representative, accs in self._groups.values()]


class DatalogMaintainer(ViewMaintainer):
    """A (recursive) Datalog view: semi-naive resumption from the frontier.

    Keeps the full fact sets of the seeding run; a refresh re-enters
    :func:`~repro.engine.execute.compute_datalog_facts` with those facts as
    the seed and the relations' logged appends as the EDB deltas.  Programs
    with negation are rejected at construction (non-monotone under inserts)
    and served by rebuild instead.
    """

    kind = "datalog"

    def __init__(self, program: Any, db: Database, query: str = "ans") -> None:
        from repro.datalog.ast import Literal

        self.program = program
        self.query = query.lower()
        for rule in program.rules:
            for item in rule.body:
                if isinstance(item, Literal) and item.negated:
                    raise DeltaRewriteError(
                        "Datalog views with negation are not insert-monotone"
                    )
        predicates = {rule.head.predicate.lower() for rule in program.rules}
        for rule in program.rules:
            for item in rule.body:
                if isinstance(item, Literal):
                    predicates.add(item.predicate.lower())
        self.edb = tuple(sorted(p for p in predicates if p in db))
        self._facts: dict[str, set[Row]] = {}

    def base_relations(self) -> tuple[str, ...]:
        return self.edb

    def initialize(self, db: Database, backend: str) -> None:
        self._facts = compute_datalog_facts(self.program, db)

    def apply_delta(self, db: Database, anchors: Mapping[str, int],
                    changed: set[str], backend: str) -> None:
        from repro.engine.plan import DeltaUnavailable

        deltas: dict[str, Iterable[Row]] = {}
        for pred in self.edb:
            if pred not in changed:
                continue
            since = anchors.get(pred)
            if since is None:
                raise DeltaRewriteError(f"no anchor for EDB relation {pred!r}")
            delta = db.relation(pred).delta_since(since)
            if delta is None:
                raise DeltaUnavailable(
                    f"delta log of {pred} no longer covers version {since}"
                )
            deltas[pred] = delta
        self.apply_edb_deltas(db, deltas)

    def apply_edb_deltas(self, db: Database,
                         deltas: Mapping[str, Iterable[Row]]) -> None:
        """Resume semi-naive evaluation from precomputed EDB deltas.

        The sharded serving layer uses this directly: merged views over a
        sharded database are rebuilt frozen copies with no usable logs, so
        the per-relation deltas are gathered from the shard-local logs
        (the union of per-shard appends *is* the merged delta — facts are
        sets) and handed in here, while ``db`` supplies the full current
        relations the resumed fixpoint joins against.
        """
        self._facts = compute_datalog_facts(
            self.program, db, seed_facts=self._facts, edb_deltas=dict(deltas))

    def rows(self) -> list[Row]:
        rows = self._facts.get(self.query, set())
        return sorted(rows, key=lambda r: tuple(str(v) for v in r))

    def result_relation(self) -> Relation:
        """Mirror :func:`repro.engine.execute.execute_datalog`'s packaging."""
        from repro.datalog.evaluate import _build_relation, _output_names

        rows = self.rows()
        names = _output_names(self.program, self.query, rows)
        return _build_relation(names, rows)


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------

def build_maintainer(plan: Plan, db: Database) -> tuple[ViewMaintainer, Plan]:
    """``(maintainer, core_subplan)`` for an engine plan, or raise.

    The caller combines the maintained core rows with :func:`finish_rows`
    (for the operators above the core) and packages the output with
    :func:`~repro.engine.execute.build_result_relation` so a view's answers
    are indistinguishable from a from-scratch execution.
    """
    core, kind = find_core(plan)
    if kind == "bag":
        return BagMaintainer(core, db), core
    if kind == "distinct":
        assert isinstance(core, DistinctP)
        return DistinctMaintainer(core, db), core
    assert isinstance(core, AggregateP)
    return AggregateMaintainer(core, db), core


def view_result_relation(plan: Plan, rows: Sequence[Row]) -> Relation:
    """Package maintained rows exactly like :func:`execute_plan` would."""
    return build_result_relation(plan.columns, list(rows))
