"""A gallery of the surveyed formalisms applied to one query (Parts 4–5).

Builds the "sailors who reserved all red boats" query (Q4) — the tutorial's
favourite example for universal quantification — in every implemented
formalism that can express it, prints the ASCII rendering of a few, writes
SVG files for all of them into ``examples/out/``, and reports the element
counts compared in experiment T7.

Run with::

    python examples/diagram_gallery.py
"""

from __future__ import annotations

import os

from repro.core import save_svg
from repro.core.metrics import compare, size_table
from repro.data import sailors_database
from repro.diagrams import available_builders, build_diagram
from repro.diagrams.qbe import qbe_division_steps
from repro.queries import Q4_ALL_RED, Q4_ALL_RED_DIVISION_RA

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")


def main() -> None:
    schema = sailors_database().schema
    os.makedirs(OUT_DIR, exist_ok=True)

    diagrams = {}
    for key in available_builders():
        try:
            query = Q4_ALL_RED.ra if key == "dfql" else Q4_ALL_RED.sql
            diagrams[key] = build_diagram(key, query, schema)
        except Exception as exc:
            print(f"[{key}] cannot draw Q4 in one diagram: {exc}")

    # QBE needs its two-step recipe — include both screens in the gallery.
    for index, step in enumerate(qbe_division_steps(schema), start=1):
        diagrams[f"qbe_step{index}"] = step.to_diagram(schema, name=f"QBE step {index}")

    # DFQL is most interesting on the division form of the algebra.
    diagrams["dfql_division"] = build_diagram("dfql", Q4_ALL_RED_DIVISION_RA, schema)

    print(f"\nQuery: {Q4_ALL_RED.title}\nSQL:   {Q4_ALL_RED.sql}\n")

    for key in ("queryvis", "relational_diagrams", "peirce_beta"):
        if key in diagrams:
            print(f"--- {key} " + "-" * (70 - len(key)))
            print(diagrams[key].to_ascii())
            print()

    written = []
    for key, diagram in diagrams.items():
        path = os.path.join(OUT_DIR, f"q4_{key}.svg")
        save_svg(diagram, path)
        written.append(path)
    print(f"wrote {len(written)} SVG files to {OUT_DIR}")

    print("\nElement counts (experiment T7):")
    print(size_table(compare(diagrams)))


if __name__ == "__main__":
    main()
