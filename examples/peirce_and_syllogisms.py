"""The pre-database formalisms (Part 4): syllogisms, Venn diagrams, Peirce graphs.

Demonstrates the reasoning side of the early diagrammatic systems:
checking syllogisms with the Euler/Venn region semantics, manipulating
Peirce's alpha graphs with his inference rules, and translating a
first-order statement about the sailors database into a beta existential
graph and back.

Run with::

    python examples/peirce_and_syllogisms.py
"""

from __future__ import annotations

from repro.data import sailors_database
from repro.diagrams.peirce_alpha import (
    alpha_diagram,
    double_cut_insert,
    formula_of,
    graph_of,
    graphs_equivalent,
)
from repro.diagrams.peirce_beta import beta_diagram, beta_graph_of, drc_of_beta
from repro.diagrams.syllogism import NAMED_SYLLOGISMS, Syllogism, valid_syllogisms
from repro.diagrams.venn import VennDiagram
from repro.drc import evaluate_drc_boolean, format_drc_formula, parse_drc_formula
from repro.logic import Implies, prop


def syllogisms() -> None:
    print("=" * 78)
    print("Syllogisms under the region semantics shared by Euler and Venn diagrams")
    modern = valid_syllogisms()
    traditional = valid_syllogisms(existential_import=True)
    print(f"  forms checked: 256   valid (modern): {len(modern)}   "
          f"valid (existential import): {len(traditional)}")
    barbara = Syllogism("AAA", 1)
    darapti = Syllogism("AAI", 3)
    print(f"  Barbara (AAA-1) valid: {barbara.is_valid()}")
    print(f"  Darapti (AAI-3) valid: {darapti.is_valid()} "
          f"(with existential import: {darapti.is_valid(existential_import=True)})")
    print("  the 15 unconditionally valid forms:",
          ", ".join(sorted(NAMED_SYLLOGISMS.values())))

    diagram = VennDiagram.from_propositions(list(barbara.propositions()[:2]))
    print("\n  Venn diagram for Barbara's premises (symbolic):")
    print(f"    shaded regions   : {len(diagram.shaded)}")
    print(f"    entails conclusion: {diagram.entails(barbara.propositions()[2])}")


def alpha_graphs() -> None:
    print("\n" + "=" * 78)
    print("Peirce alpha graphs (propositional logic)")
    rain, wet = prop("rain"), prop("wet")
    implication = Implies(rain, wet)
    graph = graph_of(implication)
    print(f"  formula: {implication}")
    print(f"  cuts: {graph.cut_count()}   letters: {graph.letter_count()}")
    print(f"  read back: {formula_of(graph)}")
    print(f"  double-cut rule preserves meaning: "
          f"{graphs_equivalent(graph, double_cut_insert(graph))}")
    print()
    print(alpha_diagram(implication).to_ascii())


def beta_graphs() -> None:
    print("\n" + "=" * 78)
    print("Peirce beta graphs (first-order statements over the sailors database)")
    db = sailors_database()
    statement = parse_drc_formula(
        "exists s, n, r, a (Sailors(s, n, r, a) and "
        "forall b, bn (Boats(b, bn, 'red') -> exists d (Reserves(s, b, d))))")
    print("  statement:", format_drc_formula(statement, unicode=True))
    print("  true on the cow-book instance:", evaluate_drc_boolean(statement, db))
    graph = beta_graph_of(statement)
    print(f"  beta graph: {len(graph.spots)} spots, {len(graph.lines)} lines of identity, "
          f"{len(graph.cuts)} cuts (depth {graph.cut_depth()})")
    back = drc_of_beta(graph)
    print("  read back :", format_drc_formula(back, unicode=True))
    print("  truth preserved:", evaluate_drc_boolean(back, db) == evaluate_drc_boolean(statement, db))
    print()
    print(beta_diagram(graph).to_ascii())


def main() -> None:
    syllogisms()
    alpha_graphs()
    beta_graphs()


if __name__ == "__main__":
    main()
