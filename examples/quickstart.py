"""Quickstart: visualize a SQL query and get its answers (the Fig. 1 loop).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import QueryVisualizationPipeline
from repro.data import sailors_database

SQL = (
    "SELECT DISTINCT S.sname "
    "FROM Sailors S, Reserves R, Boats B "
    "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'"
)


def main() -> None:
    db = sailors_database()
    pipeline = QueryVisualizationPipeline(db, formalism="queryvis")

    result = pipeline.run(SQL)

    # The whole interaction of Fig. 1: query text, interpretation, diagram, answers.
    print(result.summary())

    # The same query in Tuple Relational Calculus (the language behind the diagram).
    print("\nTRC reading:")
    print(" ", result.languages.get("TRC", "(not translatable)"))

    # Machine-readable renderings for embedding elsewhere.
    print("\nGraphviz DOT (first lines):")
    print("\n".join(result.diagram.to_dot().splitlines()[:6]), "...")
    svg = result.diagram.to_svg()
    print(f"\nSVG rendering: {len(svg)} characters (use save_svg() to write it to a file)")


if __name__ == "__main__":
    main()
