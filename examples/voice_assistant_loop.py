"""The Fig. 1 / Fig. 2 scenario: dictate, visualize, refine, verify.

The paper's motivating figures show an analyst *dictating* a query; the
system (a speech interface or an LLM) produces a SQL guess, and the database
visualizes the guess so the analyst can check it before trusting the answers.
This example simulates that loop with a tiny template-based "assistant" in
place of the microphone: utterances are mapped to SQL, the pipeline shows the
query back (diagram + plain-language reading), the analyst refines the
request, and the pattern-isomorphism check reports whether the refinement
changed the meaning.

Run with::

    python examples/voice_assistant_loop.py
"""

from __future__ import annotations

from repro.core import QueryVisualizationPipeline
from repro.data import sailors_database

#: Our stand-in for the speech/LLM front end of Fig. 1: utterance -> SQL guess.
UTTERANCE_TO_SQL = {
    "who reserved boat 102":
        "SELECT DISTINCT S.sname FROM Sailors S, Reserves R "
        "WHERE S.sid = R.sid AND R.bid = 102",
    "who reserved a red boat":
        "SELECT DISTINCT S.sname FROM Sailors S, Reserves R, Boats B "
        "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'",
    "who reserved every red boat":
        "SELECT DISTINCT S.sname FROM Sailors S WHERE NOT EXISTS "
        "(SELECT B.bid FROM Boats B WHERE B.color = 'red' AND NOT EXISTS "
        "(SELECT R.sid FROM Reserves R WHERE R.sid = S.sid AND R.bid = B.bid))",
    # A rephrasing of the same request the analyst might try while refining:
    "who reserved all the red boats":
        "SELECT DISTINCT S.sname FROM Sailors S WHERE NOT EXISTS "
        "(SELECT B2.bid FROM Boats B2 WHERE B2.color = 'red' AND B2.bid NOT IN "
        "(SELECT R2.bid FROM Reserves R2 WHERE R2.sid = S.sid))",
}


def main() -> None:
    db = sailors_database()
    pipeline = QueryVisualizationPipeline(db, formalism="relational_diagrams")

    for utterance in ("who reserved boat 102", "who reserved a red boat",
                      "who reserved every red boat"):
        sql = UTTERANCE_TO_SQL[utterance]
        result = pipeline.run(sql)
        print("=" * 78)
        print(f'analyst says : "{utterance}"')
        print(f"system hears : {sql}")
        print()
        print("system shows the query back:")
        print(result.explanation)
        print()
        print(result.diagram.to_ascii())
        names = sorted(row[0] for row in result.answers.distinct_rows())
        print(f"\nanswers: {', '.join(names)}\n")

    # Fig. 2: the analyst refines the phrasing; the system verifies the two
    # guesses mean the same thing before re-running anything.
    first = UTTERANCE_TO_SQL["who reserved every red boat"]
    refined = UTTERANCE_TO_SQL["who reserved all the red boats"]
    same = pipeline.round_trip_consistent(first, refined)
    print("=" * 78)
    print("refinement check (Fig. 2):")
    print('  original : "who reserved every red boat"')
    print('  refined  : "who reserved all the red boats"')
    print(f"  same relational query pattern: {'yes' if same else 'NO — meaning changed!'}")
    different = UTTERANCE_TO_SQL["who reserved a red boat"]
    print("  sanity    : comparing against \"who reserved a red boat\" ->",
          "same" if pipeline.round_trip_consistent(first, different) else "different")


if __name__ == "__main__":
    main()
