"""The five tutorial queries in the five textual languages (Part 3 of the paper).

For every canonical query, print its SQL / RA / TRC / DRC / Datalog spelling,
evaluate all five with their own reference interpreters *and* with the
unified plan engine, and confirm everything agrees — the T1 experiment as a
narrative walk-through, now with a six-way semantic cross-check.

Run with::

    python examples/language_tour.py
"""

from __future__ import annotations

from repro.data import sailors_database
from repro.engine import run_query
from repro.queries import CANONICAL_QUERIES
from repro.translate import answer_set


def main() -> None:
    db = sailors_database()
    for query in CANONICAL_QUERIES:
        print("=" * 78)
        print(f"{query.id}: {query.title}")
        print(f"    {query.description}")
        print()
        answers = {}
        engine_agrees = True
        for language, text in query.languages().items():
            answers[language] = answer_set(text, db)
            engine = frozenset(run_query(text, db, language.lower()).distinct_rows())
            engine_agrees = engine_agrees and engine == answers[language]
            indented = "\n        ".join(text.splitlines())
            print(f"    {language}:")
            print(f"        {indented}")
        reference = answers["SQL"]
        agreement = all(answer == reference for answer in answers.values())
        names = sorted(row[0] for row in reference)
        print()
        print(f"    answers ({len(names)}): {', '.join(str(n) for n in names)}")
        print(f"    all five languages agree: {'yes' if agreement else 'NO'}")
        print(f"    unified engine matches all five: {'yes' if engine_agrees else 'NO'}")
        print()


if __name__ == "__main__":
    main()
