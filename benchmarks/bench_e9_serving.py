"""Experiment E9: the asyncio HTTP serving tier over the unified service API.

Two workload families against a :class:`~repro.server.app.ServerThread`
fronting a :class:`~repro.core.service.QueryService`:

* **serve-read** — closed-loop read throughput over real sockets at 1, 8,
  and 32 keep-alive clients, reporting requests/s and p50/p99 latency per
  client count.  Recorded speedup is the throughput scaling vs the
  1-client cell, **clamped below the compare gate floor**: client-scaling
  on a GIL-bound box is runner-dependent, so the cells are tracked
  informationally while the absolute numbers ride along in the artifact;
* **write-batching** — the serving tier's headline guarantee, and the
  gated cell: concurrent per-row ``POST /write`` requests are funneled
  through the background write worker, so a flush window costs **one**
  version bump per relation no matter how many clients write.  Gated:
  batched HTTP writes must finish with ≥``GATE_BATCH_RATIO``x fewer
  version bumps than the per-request write path (which bumps once per
  row by construction).

Runs standalone (the CI smoke job) or under pytest::

    PYTHONPATH=../src python bench_e9_serving.py --smoke
    PYTHONPATH=../src python -m pytest bench_e9_serving.py -q

Artifacts: a table on stdout, an ``E9-JSON`` line, and
``benchmarks/artifacts/bench_e9_serving.json``.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import threading
import time

from conftest import print_table

from repro.core import QueryService
from repro.data.sailors import random_sailors_database
from repro.server import ServerThread

REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")

#: (n_sailors, n_boats, n_reserves) for the served database.
FULL_SIZE = (2400, 100, 24000)
SMOKE_SIZE = (1200, 50, 12000)

READ_CLIENTS = (1, 8, 32)
FULL_READ_REQUESTS = 50   # per client
SMOKE_READ_REQUESTS = 25

WRITE_CLIENTS = 8
FULL_WRITES_EACH = 32
SMOKE_WRITES_EACH = 16
#: The batching window the write worker uses during the gated cell.
FLUSH_INTERVAL = 0.05

#: The acceptance gate: batched HTTP writes need this many times fewer
#: version bumps than per-request writes (which bump once per row).
GATE_BATCH_RATIO = 5.0
#: Throughput-scaling speedups are clamped just below compare_bench's
#: ``GATE_FLOOR`` (1.5): client scaling on shared CI hardware is noise, so
#: those cells must stay informational, never gated.
SCALING_CLAMP = 1.49

ARTIFACT_DIR = os.environ.get(
    "REPRO_BENCH_ARTIFACTS",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "artifacts"))

READ_QUERIES = (
    "SELECT COUNT(*) AS n FROM Reserves R",
    "SELECT S.sname FROM Sailors S, Reserves R "
    "WHERE S.sid = R.sid AND R.bid = 101",
)


def _write_artifact(name: str, artifact: dict) -> None:
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


class _Client:
    def __init__(self, port: int) -> None:
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)

    def post(self, path: str, body: dict) -> dict:
        self.conn.request("POST", path, json.dumps(body),
                          {"Content-Type": "application/json"})
        response = self.conn.getresponse()
        payload = json.loads(response.read())
        if response.status != 200:
            raise RuntimeError(f"{path} -> {response.status}: {payload}")
        return payload

    def close(self) -> None:
        self.conn.close()


def _read_cell(port: int, n_clients: int, requests_each: int,
               reference_rps: "float | None") -> dict:
    barrier = threading.Barrier(n_clients + 1)
    latencies: list[list[float]] = [[] for _ in range(n_clients)]
    errors: list[BaseException] = []

    def run_client(slot: int) -> None:
        client = _Client(port)
        try:
            for query in READ_QUERIES:  # warm the caches off the clock
                client.post("/query", {"text": query})
            barrier.wait()
            for i in range(requests_each):
                text = READ_QUERIES[i % len(READ_QUERIES)]
                start = time.perf_counter()
                client.post("/query", {"text": text})
                latencies[slot].append(time.perf_counter() - start)
        except BaseException as exc:  # surfaced by the main thread
            errors.append(exc)
        finally:
            client.close()

    threads = [threading.Thread(target=run_client, args=(slot,))
               for slot in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    if errors:
        raise errors[0]
    flat = sorted(lat * 1000 for per_client in latencies for lat in per_client)
    total = n_clients * requests_each
    rps = total / wall_s if wall_s > 0 else 0.0
    scaling = rps / reference_rps if reference_rps else 1.0
    return {
        "workload": f"serve-read@{n_clients}c",
        "family": "serve-read",
        "clients": n_clients,
        "requests": total,
        "serving_ms": round(wall_s * 1000, 3),
        "throughput_rps": round(rps, 1),
        "p50_ms": round(_percentile(flat, 0.50), 3),
        "p99_ms": round(_percentile(flat, 0.99), 3),
        "scaling_vs_1c": round(scaling, 2),
        # Clamped: scaling cells are tracked informationally (see module).
        "speedup": round(min(scaling, SCALING_CLAMP), 2),
    }


def _write_cell(size: tuple[int, int, int], writes_each: int) -> dict:
    n_sailors, n_boats, n_reserves = size
    total = WRITE_CLIENTS * writes_each

    # Per-request baseline: one version bump per row by construction.
    baseline = QueryService(random_sailors_database(
        n_sailors=n_sailors, n_boats=n_boats, n_reserves=n_reserves, seed=9))
    before = baseline.db.version
    start = time.perf_counter()
    for i in range(total):
        baseline.add_row("Reserves", [1 + (i % n_sailors), 101,
                                      "1998-08-09"])
    per_request_s = time.perf_counter() - start
    per_request_bumps = baseline.db.version - before
    assert per_request_bumps == total

    # Batched: the same row count as concurrent per-row HTTP writes.
    service = QueryService(random_sailors_database(
        n_sailors=n_sailors, n_boats=n_boats, n_reserves=n_reserves, seed=9))
    before = service.db.version
    with ServerThread(service, max_concurrent=64, max_queue_depth=1024,
                      flush_interval=FLUSH_INTERVAL) as server:
        barrier = threading.Barrier(WRITE_CLIENTS + 1)
        errors: list[BaseException] = []

        def run_writer(slot: int) -> None:
            client = _Client(server.port)
            try:
                barrier.wait()
                for i in range(writes_each):
                    client.post("/write", {
                        "relation": "Reserves",
                        "row": [1 + ((slot * writes_each + i) % n_sailors),
                                102, "1998-08-10"]})
            except BaseException as exc:
                errors.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=run_writer, args=(slot,))
                   for slot in range(WRITE_CLIENTS)]
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        batched_s = time.perf_counter() - start
        if errors:
            raise errors[0]
        worker_counts = server.app.worker.counts()
    batched_bumps = service.db.version - before
    assert worker_counts["write_requests"] == total
    assert worker_counts["write_rows"] == total
    assert batched_bumps == worker_counts["write_batched_calls"]
    ratio = per_request_bumps / batched_bumps if batched_bumps else 0.0
    return {
        "workload": "write-batching",
        "family": "write-batching",
        "clients": WRITE_CLIENTS,
        "requests": total,
        "serving_ms": round(batched_s * 1000, 3),
        "per_request_ms": round(per_request_s * 1000, 3),
        "per_request_bumps": per_request_bumps,
        "version_bumps": batched_bumps,
        "batch_ratio": round(ratio, 2),
        "flushes": worker_counts["write_flushes"],
        # Capped at the gate: the compare baseline then stays a constant
        # 5.0x while check_gates() enforces the raw ratio, so a run that
        # batches *better* than 5x never moves the tracked number.
        "speedup": round(min(ratio, GATE_BATCH_RATIO), 2),
    }


def run_experiment(smoke: bool) -> dict:
    size = SMOKE_SIZE if smoke else FULL_SIZE
    read_requests = SMOKE_READ_REQUESTS if smoke else FULL_READ_REQUESTS
    writes_each = SMOKE_WRITES_EACH if smoke else FULL_WRITES_EACH
    n_sailors, n_boats, n_reserves = size

    cells: list[dict] = []
    service = QueryService(random_sailors_database(
        n_sailors=n_sailors, n_boats=n_boats, n_reserves=n_reserves, seed=9))
    with ServerThread(service, max_concurrent=64,
                      max_queue_depth=1024) as server:
        reference_rps: "float | None" = None
        for n_clients in READ_CLIENTS:
            cell = _read_cell(server.port, n_clients, read_requests,
                              reference_rps)
            if n_clients == READ_CLIENTS[0]:
                reference_rps = cell["throughput_rps"]
            cells.append(cell)
    cells.append(_write_cell(size, writes_each))

    artifact = {
        "experiment": "E9-async-serving",
        "reduced": smoke,
        "sailors": n_sailors, "boats": n_boats, "reserves": n_reserves,
        "read_clients": list(READ_CLIENTS),
        "write_clients": WRITE_CLIENTS,
        "flush_interval": FLUSH_INTERVAL,
        "gate_batch_ratio": GATE_BATCH_RATIO,
        "cells": cells,
    }
    _write_artifact("bench_e9_serving.json", artifact)

    rows = []
    for cell in cells:
        if cell["family"] == "serve-read":
            rows.append([cell["workload"], cell["requests"],
                         f"{cell['serving_ms']:.1f}",
                         f"{cell['throughput_rps']:.0f} req/s",
                         f"{cell['p50_ms']:.2f}", f"{cell['p99_ms']:.2f}",
                         f"{cell['scaling_vs_1c']:.2f}x vs 1c"])
        else:
            rows.append([cell["workload"], cell["requests"],
                         f"{cell['serving_ms']:.1f}",
                         f"{cell['version_bumps']} bumps "
                         f"(vs {cell['per_request_bumps']})",
                         "-", "-", f"{cell['batch_ratio']:.1f}x fewer bumps"])
    print_table(
        "E9: asyncio HTTP serving over the unified service API "
        f"(gate: write batching >= {GATE_BATCH_RATIO:.0f}x fewer bumps)",
        ["workload", "requests", "wall ms", "throughput / bumps",
         "p50 ms", "p99 ms", "headline"],
        rows,
    )
    print("E9-JSON " + json.dumps(artifact))
    return artifact


def check_gates(artifact: dict) -> list[str]:
    """The E9 acceptance gate over a measured artifact; [] when green.

    Batched HTTP writes must land with ≥``GATE_BATCH_RATIO``x fewer
    version bumps than the per-request write path.  The read-throughput
    cells are informational (their recorded speedups are clamped below
    compare_bench's gate floor) — client scaling is hardware noise, the
    batching ratio is a structural guarantee of the worker.
    """
    failures: list[str] = []
    write_cells = [c for c in artifact["cells"]
                   if c["family"] == "write-batching"]
    if not write_cells:
        return ["no write-batching cell measured"]
    for cell in write_cells:
        if cell["batch_ratio"] < GATE_BATCH_RATIO:
            failures.append(
                f"write-batching: {cell['version_bumps']} version bumps for "
                f"{cell['requests']} HTTP writes — only "
                f"{cell['batch_ratio']:.1f}x fewer than per-request "
                f"(gate {GATE_BATCH_RATIO:.0f}x)")
    return failures


# -- pytest entry points -----------------------------------------------------

def test_e9_serving_artifact(capsys):
    with capsys.disabled():
        artifact = run_experiment(smoke=REDUCED)
    cells = artifact["cells"]
    assert {c["family"] for c in cells} == {"serve-read", "write-batching"}
    assert [c["clients"] for c in cells
            if c["family"] == "serve-read"] == list(READ_CLIENTS)
    failures = check_gates(artifact)
    assert not failures, "\n".join(failures)


# -- standalone entry point --------------------------------------------------

def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes (the CI configuration)")
    args = parser.parse_args(argv)
    artifact = run_experiment(smoke=args.smoke or REDUCED)
    failures = check_gates(artifact)
    for failure in failures:
        print(f"E9 GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
