"""Experiment T2 (Parts 4–5): which formalism can represent which query.

The tutorial's historical comparison boils down to a coverage matrix:
formalism × canonical query.  The expected shape (and the tutorial's
headline, following Shin): disjunction (Q5) is representable by strictly
fewer formalisms than the conjunctive queries, and conjunctive-only tools
(commercial query builders) drop out already at negation/universals.
For implemented formalisms the matrix is confirmed by actually building the
diagram rather than trusting the capability table.
"""

from __future__ import annotations

from conftest import print_table

from repro.core.registry import REGISTRY, coverage_matrix, formalism
from repro.diagrams import available_builders, build_diagram
from repro.queries import CANONICAL_QUERIES


def test_t2_coverage_matrix_artifact(schema, capsys):
    matrix = coverage_matrix()
    rows = []
    for info in REGISTRY:
        cells = ["yes" if matrix[info.key][q.id] else "-" for q in CANONICAL_QUERIES]
        rows.append([info.name[:34], info.family, *cells])

    per_query = {q.id: sum(1 for info in REGISTRY if matrix[info.key][q.id])
                 for q in CANONICAL_QUERIES}
    # Shape: disjunction is the hardest; plain joins are the easiest.
    assert per_query["Q5"] < per_query["Q1"]
    assert per_query["Q4"] <= per_query["Q2"]
    assert not matrix["query_builders"]["Q4"]
    assert matrix["peirce_beta"]["Q5"]

    with capsys.disabled():
        print_table("T2: formalism x query coverage",
                    ["formalism", "family", *(q.id for q in CANONICAL_QUERIES)], rows)
        print_table("T2 summary: formalisms covering each query",
                    ["query", "feature", "#formalisms"],
                    [[q.id, "/".join(q.features), per_query[q.id]] for q in CANONICAL_QUERIES])


def test_t2_builders_confirm_capabilities(schema):
    """Whenever the capability table says 'yes' and a builder exists, the build must succeed."""
    from repro.diagrams.qbe import qbe_division_steps

    matrix = coverage_matrix()
    checked = 0
    for key in available_builders():
        info = formalism(key)
        for query in CANONICAL_QUERIES:
            if not matrix[key][query.id]:
                continue
            if key == "qbe" and "universal" in query.features:
                # QBE covers division only through its two-step recipe.
                steps = qbe_division_steps(schema)
                assert len(steps) == 2 and all(s.to_diagram(schema).nodes for s in steps)
                checked += 1
                continue
            diagram = build_diagram(key, query.sql if info.based_on != "RA" else query.ra,
                                    schema)
            assert diagram.nodes
            checked += 1
    assert checked >= 25


def test_t2_build_all_formalisms_latency(benchmark, schema):
    """Time building Q3 (join + negation) in every implemented formalism."""
    query = CANONICAL_QUERIES[2]

    def build_all():
        return [build_diagram(key, query.sql, schema) for key in available_builders()]

    diagrams = benchmark(build_all)
    assert len(diagrams) == len(available_builders())
