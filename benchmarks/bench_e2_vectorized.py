"""Experiment E2: the columnar executor and the pipeline caches.

Two claims measured, each emitted as a table and a JSON artifact (printed
with an ``E2-JSON`` prefix and written under ``benchmarks/artifacts/``):

* **row vs vectorized** — the batch-at-a-time backend against the row
  reference backend on the two hot workload families: an n-way equi-join
  chain and a grouped aggregation.  Both backends run the *same* optimized
  plan; answers are asserted bag-equal.  Timings are steady-state (one
  warm-up run per backend, then best of three), which is the serving regime
  the caches target.
* **cold vs warm cache** — the pipeline's serving path
  (:meth:`QueryVisualizationPipeline.answer`): first request (parse → lower
  → optimize → execute) against repeated request (result-cache hit keyed on
  query fingerprint + database version).

Reduced-size mode for CI: set ``REPRO_BENCH_REDUCED=1``.
"""

from __future__ import annotations

import json
import os
import time

from conftest import print_table

from repro.core import QueryVisualizationPipeline
from repro.data.sailors import random_sailors_database
from repro.engine import clear_compiled_cache, execute_plan, lower, optimize

REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")

#: (n_sailors, n_boats, n_reserves) scales, smallest → largest.
SIZES = [(100, 10, 1000), (200, 20, 2000)] if REDUCED else \
        [(200, 20, 2000), (400, 30, 4000), (800, 40, 8000)]

ARTIFACT_DIR = os.environ.get(
    "REPRO_BENCH_ARTIFACTS",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "artifacts"))


def _chain_sql(n_reserves_refs: int) -> str:
    tables = ["Sailors S", "Boats B"] + [f"Reserves R{i}" for i in range(n_reserves_refs)]
    conditions = ["B.color = 'red'"]
    for i in range(n_reserves_refs):
        conditions.append(f"S.sid = R{i}.sid")
        conditions.append(f"R{i}.bid = B.bid")
    return (f"SELECT DISTINCT S.sname FROM {', '.join(tables)} "
            f"WHERE {' AND '.join(conditions)}")


JOIN_CHAIN_SQL = _chain_sql(3)

AGGREGATION_SQL = (
    "SELECT S.rating, COUNT(*) AS n, AVG(S.age) AS avg_age, MAX(S.age) AS oldest "
    "FROM Sailors S, Reserves R WHERE S.sid = R.sid GROUP BY S.rating"
)

WORKLOADS = [("join-chain", JOIN_CHAIN_SQL), ("aggregation", AGGREGATION_SQL)]


def _best_of(fn, reps: int = 5):
    result = fn()  # warm-up: key indexes, compiled closures, column stores
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _write_artifact(name: str, artifact: dict) -> None:
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")


def test_e2_row_vs_vectorized_artifact(capsys):
    clear_compiled_cache()
    rows = []
    artifact = {"experiment": "E2-row-vs-vectorized",
                "reduced": REDUCED, "cells": []}
    largest = SIZES[-1]
    for n_sailors, n_boats, n_reserves in SIZES:
        db = random_sailors_database(n_sailors=n_sailors, n_boats=n_boats,
                                     n_reserves=n_reserves, seed=7)
        for workload, sql in WORKLOADS:
            plan = optimize(lower(sql, db.schema, "sql"), db)
            row_rel, row_s = _best_of(lambda: execute_plan(plan, db, backend="row"))
            vec_rel, vec_s = _best_of(
                lambda: execute_plan(plan, db, backend="vectorized"))
            assert row_rel.bag_equal(vec_rel), f"{workload} backends disagree"
            speedup = row_s / vec_s if vec_s > 0 else float("inf")
            if (n_sailors, n_boats, n_reserves) == largest and not REDUCED:
                # Wall-clock gates only run at full size; reduced (CI) mode
                # records the numbers in the artifact without a flaky gate.
                assert speedup >= 3.0, (
                    f"{workload} at the largest size: vectorized must be ≥3x "
                    f"the row backend, measured {speedup:.2f}x"
                )
            rows.append([workload, n_reserves, len(row_rel),
                         f"{row_s * 1000:.2f}", f"{vec_s * 1000:.2f}",
                         f"{speedup:.1f}x"])
            artifact["cells"].append({
                "workload": workload,
                "sailors": n_sailors, "boats": n_boats, "reserves": n_reserves,
                "answer_rows": len(row_rel),
                "row_ms": round(row_s * 1000, 3),
                "vectorized_ms": round(vec_s * 1000, 3),
                "speedup": round(speedup, 2),
                "largest_size": (n_sailors, n_boats, n_reserves) == largest,
            })
    _write_artifact("bench_e2_backends.json", artifact)
    with capsys.disabled():
        print_table(
            "E2: row vs vectorized backend (same optimized plan, steady state)",
            ["workload", "reserves", "answers", "row ms", "vectorized ms", "speedup"],
            rows,
        )
        print("E2-JSON " + json.dumps(artifact))


def test_e2_cold_vs_warm_cache_artifact(capsys):
    n_sailors, n_boats, n_reserves = SIZES[-1]
    db = random_sailors_database(n_sailors=n_sailors, n_boats=n_boats,
                                 n_reserves=n_reserves, seed=11)
    rows = []
    artifact = {"experiment": "E2-cold-vs-warm",
                "reduced": REDUCED,
                "database": {"sailors": n_sailors, "boats": n_boats,
                             "reserves": n_reserves},
                "cells": []}
    for workload, sql in WORKLOADS:
        clear_compiled_cache()
        pipeline = QueryVisualizationPipeline(db)
        start = time.perf_counter()
        cold_answers = pipeline.answer(sql)
        cold_s = time.perf_counter() - start
        warm_s = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            warm_answers = pipeline.answer(sql)
            warm_s = min(warm_s, time.perf_counter() - start)
        assert cold_answers.bag_equal(warm_answers)
        info = pipeline.cache_info()
        assert info["result_hits"] >= 5 and info["result_misses"] == 1
        speedup = cold_s / warm_s if warm_s > 0 else float("inf")
        if not REDUCED:
            assert speedup >= 10.0, (
                f"{workload}: a warm result-cache hit must be ≥10x faster "
                f"than a cold run, measured {speedup:.1f}x"
            )
        rows.append([workload, f"{cold_s * 1000:.2f}", f"{warm_s * 1000:.4f}",
                     f"{speedup:.0f}x"])
        artifact["cells"].append({
            "workload": workload,
            "cold_ms": round(cold_s * 1000, 3),
            "warm_ms": round(warm_s * 1000, 5),
            "speedup": round(speedup, 1),
        })
    _write_artifact("bench_e2_cache.json", artifact)
    with capsys.disabled():
        print_table(
            "E2: pipeline serving path, cold (full compile) vs warm (result cache)",
            ["workload", "cold ms", "warm ms", "speedup"],
            rows,
        )
        print("E2-JSON " + json.dumps(artifact))


def test_e2_vectorized_latency_join_chain(benchmark):
    n_sailors, n_boats, n_reserves = SIZES[0]
    db = random_sailors_database(n_sailors=n_sailors, n_boats=n_boats,
                                 n_reserves=n_reserves, seed=7)
    plan = optimize(lower(JOIN_CHAIN_SQL, db.schema, "sql"), db)
    execute_plan(plan, db, backend="vectorized")  # warm caches
    result = benchmark(lambda: execute_plan(plan, db, backend="vectorized"))
    assert len(result) > 0


def test_e2_warm_cache_latency(benchmark):
    db = random_sailors_database(n_sailors=SIZES[0][0], n_boats=SIZES[0][1],
                                 n_reserves=SIZES[0][2], seed=11)
    pipeline = QueryVisualizationPipeline(db)
    pipeline.answer(AGGREGATION_SQL)  # populate both caches
    result = benchmark(lambda: pipeline.answer(AGGREGATION_SQL))
    assert len(result) > 0
