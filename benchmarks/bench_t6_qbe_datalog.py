"""Experiment T6 (Part 5): QBE's division recipe vs. Datalog.

The tutorial observes that QBE expresses relational division by "breaking the
query into two logical steps and using a temporary relation", i.e. by the
same dataflow-style pattern Datalog uses — and then asks whether QBE is
really more "visual" than Datalog.  This harness regenerates the comparison:
the two-step QBE plan, the equivalent Datalog program, the RA division
compiled to Datalog, and the structural counts that let the reader judge.
"""

from __future__ import annotations

from conftest import print_table

from repro.datalog import evaluate_datalog, parse_datalog
from repro.diagrams.qbe import qbe_division_steps, qbe_from_query
from repro.queries import CANONICAL_QUERIES, Q4_ALL_RED, Q4_ALL_RED_DIVISION_RA
from repro.ra import parse_ra
from repro.translate import answer_set, ra_to_datalog


def test_t6_division_comparison_artifact(db, schema, capsys):
    # The Datalog program of the catalog (hand-written, 4 rules).
    program = parse_datalog(Q4_ALL_RED.datalog)
    datalog_answer = {row[0] for row in evaluate_datalog(program, db).rows()}
    assert datalog_answer == {"Dustin", "Lubber"}

    # The QBE two-step plan for the same query.
    steps = qbe_division_steps(schema)
    assert len(steps) == 2

    # RA division compiled into Datalog: same double-negation structure.
    compiled = ra_to_datalog(parse_ra(Q4_ALL_RED_DIVISION_RA), schema)
    compiled_negations = sum(len(rule.negative_literals()) for rule in compiled)
    handwritten_negations = sum(len(rule.negative_literals()) for rule in program)
    assert compiled_negations >= 2 and handwritten_negations == 2

    rows = [
        ["QBE (two screens + temp relation)",
         sum(len(step.tables) for step in steps),
         len(steps),
         sum(1 for step in steps for table in step.tables if table.negated)],
        ["Datalog (hand-written)", len(program), 1, handwritten_negations],
        ["Datalog (compiled from RA division)", len(compiled), 1, compiled_negations],
    ]
    with capsys.disabled():
        print_table("T6: universal quantification — QBE steps vs Datalog rules (Q4)",
                    ["representation", "tables/rules", "screens", "negations"], rows)


def test_t6_single_screen_queries_match(db, schema, capsys):
    """For the queries QBE *can* do in one screen, its structure tracks the Datalog body."""
    rows = []
    for query in CANONICAL_QUERIES:
        if "universal" in query.features:
            continue
        qbe = qbe_from_query(query.sql, schema)
        program = parse_datalog(query.datalog)
        body_literals = sum(len(rule.positive_literals()) + len(rule.negative_literals())
                            for rule in program)
        rows.append([query.id, len(qbe.tables), body_literals, len(program)])
        assert len(qbe.tables) <= body_literals + 1
    with capsys.disabled():
        print_table("T6: single-screen QBE vs Datalog size",
                    ["query", "QBE skeleton tables", "Datalog body literals", "rules"], rows)


def test_t6_datalog_division_latency(benchmark, db):
    program = parse_datalog(Q4_ALL_RED.datalog)

    result = benchmark(lambda: evaluate_datalog(program, db))
    assert len(result) == 2


def test_t6_ra_division_latency(benchmark, db):
    expr = parse_ra(Q4_ALL_RED_DIVISION_RA)

    answer = benchmark(lambda: answer_set(expr, db))
    assert {row[0] for row in answer} == {"Dustin", "Lubber"}
