"""Experiment E5: sharded scatter-gather execution across shard counts.

Measures the ``"sharded"`` backend (:mod:`repro.engine.sharded`) at 1, 2,
and 4 shards against the single-node ``"vectorized"`` baseline on three
workload families:

* **join-chain** — the E4 five-relation chain: co-partitioned
  Sailors⋈Reserves legs with the small Boats side broadcast;
* **aggregation** — a group-by off the partition key, exercising the
  partial→final aggregation split;
* **point-lookup** — a shard-key equality query, exercising single-shard
  routing: the gather step disappears and only ``1/k`` of the data is
  scanned, so wall time genuinely improves as the shard count grows.

Answers are asserted bag-equal against ``"vectorized"`` for every cell, so
every reported number compares identical results.  Two ratios are
recorded per cell: ``speedup`` (vectorized over sharded, the
cross-backend view ``run_all.py`` normalizes into ``BENCH_e5.json``) and
``vs_one_shard`` (the same workload at one shard over this cell — the
gather-path scaling curve the ISSUE asks about).  Scatter workloads run
their per-shard subplans on CPython threads, so their scaling is reported
honestly rather than gated (the GIL interleaves the row loops; the
partitioned structure is what a free-threaded build or a process pool
scales with) — the routed point-lookup path is the cell where sharding
must and does win single-process.

Runs standalone (the CI smoke job) or under pytest::

    PYTHONPATH=../src python bench_e5_sharded.py --smoke
    PYTHONPATH=../src python -m pytest bench_e5_sharded.py -q

Artifacts: a table on stdout, an ``E5-JSON`` line, and
``benchmarks/artifacts/bench_e5_sharded.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from conftest import print_table

from repro.data.sharded import ShardedDatabase
from repro.data.sailors import random_sailors_database
from repro.engine import clear_compiled_cache, execute_plan, lower, optimize
from repro.engine.sharded import ShardedBackend, shard_plan
from repro.engine.stats import StatsCatalog

REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")

#: (n_sailors, n_boats, n_reserves) scales, smallest → largest.
FULL_SIZES = [(1200, 50, 12000), (2400, 90, 24000), (4800, 150, 48000)]
SMOKE_SIZES = [(400, 30, 4000), (1200, 50, 12000)]

SHARD_COUNTS = (1, 2, 4)

ARTIFACT_DIR = os.environ.get(
    "REPRO_BENCH_ARTIFACTS",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "artifacts"))

JOIN_CHAIN_SQL = (
    "SELECT DISTINCT S.sname FROM Sailors S, Boats B, Reserves R0, "
    "Reserves R1, Reserves R2 WHERE B.color = 'red' "
    "AND S.sid = R0.sid AND R0.bid = B.bid "
    "AND S.sid = R1.sid AND R1.bid = B.bid "
    "AND S.sid = R2.sid AND R2.bid = B.bid"
)

AGGREGATION_SQL = (
    "SELECT S.rating, COUNT(*) AS n, AVG(S.age) AS avg_age, MAX(S.age) AS oldest "
    "FROM Sailors S, Reserves R WHERE S.sid = R.sid GROUP BY S.rating"
)

POINT_LOOKUP_SQL = "SELECT S.sname, S.age FROM Sailors S WHERE S.sid = {sid}"

#: How many distinct point lookups one point-lookup measurement serves.
POINT_BATCH = 24

WORKLOADS = ("join-chain", "aggregation", "point-lookup")


def _best_of(fn, reps: int = 5):
    result = fn()  # warm-up: shard plans, key indexes, column stores
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _write_artifact(name: str, artifact: dict) -> None:
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")


def _point_plans(db, n_sailors: int):
    plans = []
    for i in range(POINT_BATCH):
        sid = (i * 97) % n_sailors + 1
        sql = POINT_LOOKUP_SQL.format(sid=sid)
        plans.append(optimize(lower(sql, db.schema, "sql"), db))
    return plans


def _measure_size(size: tuple[int, int, int]) -> list[dict]:
    n_sailors, n_boats, n_reserves = size
    db = random_sailors_database(n_sailors=n_sailors, n_boats=n_boats,
                                 n_reserves=n_reserves, seed=21)
    plans = {
        "join-chain": optimize(lower(JOIN_CHAIN_SQL, db.schema, "sql"), db),
        "aggregation": optimize(lower(AGGREGATION_SQL, db.schema, "sql"), db),
    }
    point_plans = _point_plans(db, n_sailors)

    baselines = {}
    for workload, plan in plans.items():
        relation, seconds = _best_of(
            lambda plan=plan: execute_plan(plan, db, backend="vectorized"))
        baselines[workload] = (relation, seconds)
    point_base, point_base_s = _best_of(
        lambda: [execute_plan(p, db, backend="vectorized")
                 for p in point_plans])

    cells = []
    one_shard_ms: dict[str, float] = {}
    for shards in SHARD_COUNTS:
        sharded = ShardedDatabase.from_database(db, shards)
        backend = ShardedBackend(n_shards=shards)
        for workload, plan in plans.items():
            compiled = shard_plan(plan, sharded, StatsCatalog(sharded))
            relation, seconds = _best_of(
                lambda plan=plan, sharded=sharded, backend=backend:
                execute_plan(plan, sharded, backend=backend))
            assert baselines[workload][0].bag_equal(relation), (
                f"{workload}@{shards}: sharded disagrees with vectorized")
            cells.append(_cell(workload, size, shards, seconds,
                               baselines[workload][1], one_shard_ms,
                               compiled.describe()))
        # Summarize the routing of the WHOLE batch, not just the first
        # plan: each lookup pins a different sid, so the batch fans out
        # over the shards while every individual query touches only one.
        point_stats = StatsCatalog(sharded)
        routed = [shard_plan(p, sharded, point_stats).shard_index
                  for p in point_plans]
        assert all(index is not None for index in routed), \
            "a point lookup failed to route to a single shard"
        shape = (f"routed({len(point_plans)} lookups over "
                 f"{len(set(routed))}/{shards} shards)")
        point_rel, seconds = _best_of(
            lambda sharded=sharded, backend=backend:
            [execute_plan(p, sharded, backend=backend) for p in point_plans])
        for want, got in zip(point_base, point_rel):
            assert want.bag_equal(got), "point-lookup disagrees"
        cells.append(_cell("point-lookup", size, shards, seconds,
                           point_base_s, one_shard_ms, shape))
    return cells


def _cell(workload: str, size: tuple[int, int, int], shards: int,
          seconds: float, baseline_s: float, one_shard_ms: dict[str, float],
          shape: str) -> dict:
    ms = seconds * 1000
    if shards == 1:
        one_shard_ms[workload] = ms
    reference = one_shard_ms.get(workload)
    return {
        "workload": f"{workload}@{shards}sh",
        "family": workload,
        "shards": shards,
        "sailors": size[0], "boats": size[1], "reserves": size[2],
        "plan_shape": shape,
        "sharded_ms": round(ms, 3),
        "vectorized_ms": round(baseline_s * 1000, 3),
        "speedup": round(baseline_s * 1000 / ms, 2) if ms > 0 else None,
        "vs_one_shard": round(reference / ms, 2)
        if reference and ms > 0 else None,
        "largest_size": False,  # stamped by run_experiment
    }


def run_experiment(smoke: bool) -> dict:
    clear_compiled_cache()
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    cells: list[dict] = []
    for size in sizes:
        cells.extend(_measure_size(size))
    largest = sizes[-1]
    for cell in cells:
        cell["largest_size"] = \
            (cell["sailors"], cell["boats"], cell["reserves"]) == largest
    artifact = {
        "experiment": "E5-sharded-scatter-gather",
        "reduced": smoke,
        "shard_counts": list(SHARD_COUNTS),
        "point_batch": POINT_BATCH,
        "cells": cells,
    }
    _write_artifact("bench_e5_sharded.json", artifact)
    rows = [
        [cell["family"], cell["reserves"], cell["shards"],
         f"{cell['vectorized_ms']:.2f}", f"{cell['sharded_ms']:.2f}",
         f"{cell['speedup']:.2f}x", f"{cell['vs_one_shard']:.2f}x"]
        for cell in cells
    ]
    print_table(
        "E5: sharded scatter-gather vs single-node vectorized "
        "(bag-equal asserted per cell)",
        ["workload", "reserves", "shards", "vectorized ms", "sharded ms",
         "vs vectorized", "vs 1 shard"],
        rows,
    )
    print("E5-JSON " + json.dumps(artifact))
    return artifact


# -- pytest entry points -----------------------------------------------------

def test_e5_sharded_artifact(capsys):
    with capsys.disabled():
        artifact = run_experiment(smoke=REDUCED)
    cells = artifact["cells"]
    assert cells, "no cells measured"
    families = {c["family"] for c in cells}
    assert families == set(WORKLOADS)
    # The routed point-lookup path must actually benefit from sharding at
    # the largest size: 4 shards scan a quarter of the rows per lookup.
    routed = [c for c in cells
              if c["family"] == "point-lookup" and c["largest_size"]]
    by_shards = {c["shards"]: c for c in routed}
    assert by_shards[4]["vs_one_shard"] >= 1.2, by_shards
    assert all(c["plan_shape"].startswith("routed(") for c in routed), routed


# -- standalone entry point --------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes (the CI configuration)")
    args = parser.parse_args(argv)
    run_experiment(smoke=args.smoke or REDUCED)
    return 0


if __name__ == "__main__":
    sys.exit(main())
