"""Experiment S1: scalability of the engines and of diagram generation.

The tutorial's "automatic translation" principle presumes query visualization
is cheap enough to run on every keystroke.  This harness measures how the
SQL/RA/TRC evaluators scale with database size, how diagram building and
layout scale with query size (length of the join chain), and benchmarks the
renderers.  Shape expectations: evaluation grows with the data, but diagram
generation is independent of the data and grows linearly with the query.
"""

from __future__ import annotations

from conftest import print_table

from repro.core import compute_layout, visualize_sql
from repro.data import random_sailors_database
from repro.queries import Q2_RED_BOAT
from repro.ra import evaluate as evaluate_ra, parse_ra
from repro.sql import evaluate_sql
from repro.translate import sql_to_trc
from repro.trc import evaluate_trc

SIZES = [10, 40, 160]


def _database(n: int):
    return random_sailors_database(n_sailors=n, n_boats=max(4, n // 5),
                                   n_reserves=n * 3, seed=42)


def _chain_sql(n_tables: int) -> str:
    tables = ["Sailors S"] + [f"Reserves R{i}" for i in range(n_tables)]
    conditions = [f"S.sid = R{i}.sid" for i in range(n_tables)]
    return f"SELECT S.sname FROM {', '.join(tables)} WHERE {' AND '.join(conditions)}"


def test_s1_engine_scaling_artifact(capsys):
    rows = []
    for size in SIZES:
        db = _database(size)
        import time

        timings = {}
        start = time.perf_counter()
        sql_rows = len(evaluate_sql(Q2_RED_BOAT.sql, db))
        timings["SQL"] = time.perf_counter() - start
        start = time.perf_counter()
        ra_rows = len(evaluate_ra(parse_ra(Q2_RED_BOAT.ra), db))
        timings["RA"] = time.perf_counter() - start
        start = time.perf_counter()
        trc_rows = len(evaluate_trc(sql_to_trc(Q2_RED_BOAT.sql, db.schema), db))
        timings["TRC"] = time.perf_counter() - start
        assert ra_rows == trc_rows
        rows.append([size, db.total_rows(), sql_rows,
                     *(f"{timings[k] * 1000:.1f}" for k in ("SQL", "RA", "TRC"))])
    with capsys.disabled():
        print_table("S1: evaluation time vs database size (Q2, ms)",
                    ["sailors", "total rows", "result rows (bag)", "SQL ms", "RA ms", "TRC ms"],
                    rows)


def test_s1_diagram_scaling_artifact(capsys):
    rows = []
    previous_ink = 0
    for n_tables in (1, 2, 4, 8):
        diagram = visualize_sql(_chain_sql(n_tables), formalism="relational_diagrams")
        ink = diagram.total_ink()
        assert ink > previous_ink
        previous_ink = ink
        layout = compute_layout(diagram)
        rows.append([n_tables + 1, len(diagram.nodes), len(diagram.edges), ink,
                     f"{layout.width:.0f}x{layout.height:.0f}"])
    with capsys.disabled():
        print_table("S1: diagram size vs join-chain length (Relational Diagrams)",
                    ["tables", "nodes", "edges", "ink", "layout (px)"], rows)


def test_s1_sql_evaluation_latency(benchmark):
    db = _database(80)
    result = benchmark(lambda: evaluate_sql(Q2_RED_BOAT.sql, db))
    assert result is not None


def test_s1_trc_evaluation_latency(benchmark):
    db = _database(40)
    trc = sql_to_trc(Q2_RED_BOAT.sql, db.schema)
    result = benchmark(lambda: evaluate_trc(trc, db))
    assert result is not None


def test_s1_diagram_generation_latency(benchmark):
    sql = _chain_sql(6)
    diagram = benchmark(lambda: visualize_sql(sql, formalism="queryvis"))
    assert diagram.nodes


def test_s1_svg_rendering_latency(benchmark):
    diagram = visualize_sql(_chain_sql(6), formalism="queryvis")
    svg = benchmark(diagram.to_svg)
    assert svg.startswith("<svg")
