"""Experiment E4: incremental view maintenance vs full recomputation.

The serving-path scenario of ISSUE 4: a :class:`~repro.core.QueryService`
holds registered materialized views while a writer keeps appending batches.
For each workload and size the experiment measures, over the same stream of
insert batches,

* **full** — recomputing the query from scratch after every batch (what the
  PR-3 service had to do: any write invalidates the result cache), and
* **incremental** — refreshing the registered view, which executes only the
  delta plans of the appended rows (plus per-group accumulator updates /
  semi-naive resumption for the recursive workload).

Answers are asserted bag-equal after every batch, so the speedup is honest:
both sides produce identical results at every version.  The ISSUE gates
``join-chain`` and ``aggregation`` at the largest size on **>= 10x**.

Runs standalone (the CI smoke job) or under pytest::

    PYTHONPATH=../src python bench_e4_ivm.py --smoke
    PYTHONPATH=../src python -m pytest bench_e4_ivm.py -q

Artifacts: a table on stdout, an ``E4-JSON`` line, and
``benchmarks/artifacts/bench_e4_ivm.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from conftest import print_table

from repro.core import QueryService, QueryVisualizationPipeline
from repro.data.sailors import random_sailors_database
from repro.engine import clear_compiled_cache

REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")

#: (n_sailors, n_boats, n_reserves) scales, smallest → largest.  The gated
#: workloads run at serving-path scale (incremental refresh cost is constant,
#: full recomputation grows with the data, which is the point of the
#: experiment); the recursive workload uses smaller databases because its
#: from-scratch fixpoint grows superlinearly.
FULL_SIZES = [(1200, 50, 12000), (2400, 90, 24000), (4800, 150, 48000)]
#: The smoke run keeps the full-scale largest size: the >=10x acceptance
#: gate is asserted there, and headroom (not wall clock) is what CI needs.
SMOKE_SIZES = [(800, 40, 8000), (4800, 150, 48000)]
RECURSION_FULL_SIZES = [(200, 20, 2000), (400, 30, 4000), (800, 40, 8000)]
RECURSION_SMOKE_SIZES = [(100, 10, 1000), (200, 20, 2000)]

#: Insert batches applied per measurement (each batch = one service write).
BATCHES = 10
BATCH_ROWS = 10

ARTIFACT_DIR = os.environ.get(
    "REPRO_BENCH_ARTIFACTS",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "artifacts"))

JOIN_CHAIN_SQL = (
    "SELECT DISTINCT S.sname FROM Sailors S, Boats B, Reserves R0, "
    "Reserves R1, Reserves R2 WHERE B.color = 'red' "
    "AND S.sid = R0.sid AND R0.bid = B.bid "
    "AND S.sid = R1.sid AND R1.bid = B.bid "
    "AND S.sid = R2.sid AND R2.bid = B.bid"
)

AGGREGATION_SQL = (
    "SELECT S.rating, COUNT(*) AS n, AVG(S.age) AS avg_age, MAX(S.age) AS oldest "
    "FROM Sailors S, Reserves R WHERE S.sid = R.sid GROUP BY S.rating"
)

RECURSION_DATALOG = (
    "reach(X, Y) :- reserves(X, Y, D). "
    "reach(X, Z) :- reach(X, Y), reserves(Y, Z, D). "
    "ans(X, Z) :- reach(X, Z)."
)

#: (workload, language, text, gated) — the first two are the ISSUE's >=10x
#: acceptance gate; recursion is measured and reported, not gated.
WORKLOADS = [
    ("join-chain", "sql", JOIN_CHAIN_SQL, True),
    ("aggregation", "sql", AGGREGATION_SQL, True),
    ("recursion", "datalog", RECURSION_DATALOG, False),
]


def _write_artifact(name: str, artifact: dict) -> None:
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")


def _batch(i: int, n_sailors: int, n_boats: int) -> list[tuple]:
    return [((i * BATCH_ROWS + j) % n_sailors + 1,
             (i * 3 + j) % n_boats + 101,
             f"2025-{(i % 12) + 1:02d}-{(j % 28) + 1:02d}")
            for j in range(BATCH_ROWS)]


def _measure_cell(size: tuple[int, int, int], workload: str, language: str,
                  text: str) -> dict:
    n_sailors, n_boats, n_reserves = size

    # Incremental side: a service with the registered view.
    service = QueryService(random_sailors_database(
        n_sailors=n_sailors, n_boats=n_boats, n_reserves=n_reserves, seed=4))
    view = service.register_view(text, language=language, name=workload)
    view.answer()  # settle the initial materialization

    # Full side: an identical database served without views — every batch
    # invalidates the result cache, so each answer is a full recomputation.
    full_pipeline = QueryVisualizationPipeline(
        random_sailors_database(n_sailors=n_sailors, n_boats=n_boats,
                                n_reserves=n_reserves, seed=4),
        result_cache_size=0)
    full_pipeline.answer(text, language=language)  # warm plan cache + stores

    # Steady-state warm-up (same discipline as the other experiments'
    # ``_best_of``): the first refresh pays one-time costs — building the
    # join-key indexes the delta terms probe — that every later refresh
    # reuses; both sides absorb one unmeasured batch first.
    warmup = _batch(BATCHES, n_sailors, n_boats)
    service.add_rows("Reserves", warmup, validate=False)
    full_pipeline.db.relation("Reserves").add_rows(warmup, validate=False)
    view.answer()
    full_pipeline.answer(text, language=language)

    incremental_s = 0.0
    full_s = 0.0
    for i in range(BATCHES):
        rows = _batch(i, n_sailors, n_boats)
        service.add_rows("Reserves", rows, validate=False)
        full_pipeline.db.relation("Reserves").add_rows(rows, validate=False)

        start = time.perf_counter()
        incremental_answers = view.answer()
        incremental_s += time.perf_counter() - start

        start = time.perf_counter()
        full_answers = full_pipeline.answer(text, language=language)
        full_s += time.perf_counter() - start

        assert incremental_answers.bag_equal(full_answers), (
            f"{workload}: view diverged from recomputation at batch {i}"
        )

    info = view.info()
    return {
        "workload": workload,
        "language": language,
        "sailors": n_sailors, "boats": n_boats, "reserves": n_reserves,
        "batches": BATCHES, "rows_per_batch": BATCH_ROWS,
        "strategy": info["strategy"],
        "answer_rows": info["rows"],
        "incremental_refreshes": info["incremental_refreshes"],
        "rebuilds": info["rebuilds"],
        "full_ms": round(full_s * 1000, 3),
        "incremental_ms": round(incremental_s * 1000, 3),
        "speedup": round(full_s / incremental_s, 2) if incremental_s > 0 else None,
    }


def run_experiment(smoke: bool) -> dict:
    clear_compiled_cache()
    artifact: dict = {"experiment": "E4-ivm-vs-recompute", "reduced": smoke,
                      "cells": []}
    for workload, language, text, gated in WORKLOADS:
        if workload == "recursion":
            sizes = RECURSION_SMOKE_SIZES if smoke else RECURSION_FULL_SIZES
        else:
            sizes = SMOKE_SIZES if smoke else FULL_SIZES
        for size in sizes:
            cell = _measure_cell(size, workload, language, text)
            cell["largest_size"] = size == sizes[-1]
            cell["gated"] = gated
            artifact["cells"].append(cell)
    _write_artifact("bench_e4_ivm.json", artifact)
    print_table(
        "E4: incremental view refresh vs full recomputation "
        f"({BATCHES} batches x {BATCH_ROWS} rows, answers asserted equal)",
        ["workload", "reserves", "strategy", "answers", "full ms",
         "incremental ms", "full/incremental"],
        [[c["workload"], c["reserves"], c["strategy"], c["answer_rows"],
          f"{c['full_ms']:.2f}", f"{c['incremental_ms']:.2f}",
          f"{c['speedup']:.1f}x"]
         for c in artifact["cells"]],
    )
    print("E4-JSON " + json.dumps(artifact))
    return artifact


# -- pytest entry points -----------------------------------------------------

def test_e4_ivm_artifact(capsys):
    with capsys.disabled():
        artifact = run_experiment(smoke=REDUCED)
    assert artifact["cells"], "no cells measured"
    gated = [c for c in artifact["cells"] if c["largest_size"] and c["gated"]]
    assert {c["workload"] for c in gated} == {"join-chain", "aggregation"}
    for cell in gated:
        assert cell["rebuilds"] <= 1, f"{cell['workload']} fell back to rebuild"
        assert cell["speedup"] is not None and cell["speedup"] >= 10.0, (
            f"{cell['workload']}: incremental refresh only "
            f"{cell['speedup']}x faster at the largest size (gate: >=10x)"
        )


# -- standalone entry point --------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes for CI smoke runs")
    args = parser.parse_args(argv)
    artifact = run_experiment(smoke=args.smoke or REDUCED)
    gated = [c for c in artifact["cells"] if c["largest_size"] and c["gated"]]
    failures = [c for c in gated
                if c["speedup"] is None or c["speedup"] < 10.0]
    if failures:
        names = ", ".join(c["workload"] for c in failures)
        print(f"E4 GATE FAILED: {names} below 10x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
