"""Experiment T5 (Part 4): Peirce beta graphs ↔ DRC.

The tutorial spends a section on the imperfect mapping between beta
existential graphs and the Boolean fragment of DRC.  This harness quantifies
the part that *does* work: for a battery of DRC sentences over the sailors
schema, translating to a beta graph and reading the graph back preserves the
truth value on the database; and it demonstrates the advertised structural
facts (cuts = negation depth, universal quantification = two nested cuts).
"""

from __future__ import annotations

from conftest import print_table

from repro.diagrams.peirce_beta import beta_diagram, beta_graph_of, drc_of_beta
from repro.drc import evaluate_drc_boolean, parse_drc_formula

SENTENCES = [
    ("some red boat exists", "exists b, n (Boats(b, n, 'red'))", True),
    ("no purple boat exists", "not exists b, n (Boats(b, n, 'purple'))", True),
    ("every boat is red", "forall b, n, c (Boats(b, n, c) -> c = 'red')", False),
    ("every reservation has a sailor",
     "forall s, b, d (Reserves(s, b, d) -> exists n, r, a (Sailors(s, n, r, a)))", True),
    ("every red boat is reserved",
     "forall b, n (Boats(b, n, 'red') -> exists s, d (Reserves(s, b, d)))", True),
    ("some sailor reserved every red boat",
     "exists s, n, r, a (Sailors(s, n, r, a) and "
     "forall b, bn (Boats(b, bn, 'red') -> exists d (Reserves(s, b, d))))", True),
    ("no sailor reserved every boat (false: Dustin reserved all four)",
     "not exists s, n, r, a (Sailors(s, n, r, a) and "
     "forall b, bn, c (Boats(b, bn, c) -> exists d (Reserves(s, b, d))))", False),
]


def test_t5_roundtrip_artifact(db, capsys):
    rows = []
    preserved = 0
    for title, text, expected in SENTENCES:
        formula = parse_drc_formula(text)
        truth = evaluate_drc_boolean(formula, db)
        assert truth == expected
        graph = beta_graph_of(formula)
        back = drc_of_beta(graph)
        round_truth = evaluate_drc_boolean(back, db)
        preserved += int(round_truth == truth)
        rows.append([title, str(truth), len(graph.cuts), len(graph.lines),
                     len(graph.spots), "yes" if round_truth == truth else "NO"])
    assert preserved == len(SENTENCES)
    with capsys.disabled():
        print_table("T5: DRC sentence -> beta graph -> DRC round trip",
                    ["statement", "truth", "cuts", "lines of identity", "spots",
                     "round trip preserves truth"], rows)


def test_t5_universal_needs_two_cuts():
    graph = beta_graph_of(parse_drc_formula(
        "forall b, n (Boats(b, n, 'red') -> exists s, d (Reserves(s, b, d)))"))
    assert graph.cut_depth() == 2
    diagram = beta_diagram(graph)
    assert diagram.element_counts()["negation_groups"] == 2


def test_t5_translation_latency(benchmark):
    formula = parse_drc_formula(SENTENCES[5][1])

    graph = benchmark(lambda: beta_graph_of(formula))
    assert graph.spots


def test_t5_roundtrip_latency(benchmark, db):
    formula = parse_drc_formula(SENTENCES[5][1])

    def roundtrip():
        return evaluate_drc_boolean(drc_of_beta(beta_graph_of(formula)), db)

    assert benchmark(roundtrip) is True
