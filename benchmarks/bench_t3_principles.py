"""Experiment T3 (Part 2): scoring formalisms against the QV principles.

The tutorial's principles of query visualization (correspondence, invariance,
completeness, economy) are evaluated programmatically for the implemented
formalisms.  The shape to reproduce: pattern-based formalisms (QueryVis,
Relational Diagrams) satisfy the correspondence and invariance principles,
syntax-based visualizations (SQLVis, Visual SQL) do not.
"""

from __future__ import annotations

from conftest import print_table

from repro.core import PRINCIPLES, principles_table, score_formalism

SCORED = ["queryvis", "relational_diagrams", "sqlvis", "visual_sql", "dfql", "peirce_beta"]


def _cell(value) -> str:
    if value is True:
        return "yes"
    if value is False:
        return "no"
    return "n/a"


def test_t3_principles_artifact(capsys):
    table = principles_table(SCORED)
    rows = []
    for key in SCORED:
        score = table[key]
        rows.append([key] + [_cell(score.scores.get(p.key)) for p in PRINCIPLES])

    # Shape assertions: pattern-based beats syntax-based on invariance/correspondence.
    assert table["queryvis"].scores["invariance"] is True
    assert table["relational_diagrams"].scores["correspondence"] is True
    assert table["sqlvis"].scores["invariance"] is False
    assert table["visual_sql"].scores["correspondence"] is False
    assert table["queryvis"].satisfied_count() > table["sqlvis"].satisfied_count() - 1

    with capsys.disabled():
        print_table("T3: principles of query visualization (programmatic scoring)",
                    ["formalism", *(p.key for p in PRINCIPLES)], rows)


def test_t3_scoring_latency(benchmark):
    score = benchmark(lambda: score_formalism("relational_diagrams"))
    assert score.scores["invariance"] is True
