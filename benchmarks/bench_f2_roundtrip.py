"""Experiment F2 (Fig. 2): query -> visualization -> refinement -> verification.

Fig. 2 closes the loop: the user refines the query and the system must show
whether the new phrasing still means the same thing.  The check behind that
interaction is pattern isomorphism; this harness verifies that syntactic
refinements (alias renaming, NOT IN ↔ NOT EXISTS, reordered predicates) are
recognised as "same query", that real changes are not, and benchmarks the
consistency check.
"""

from __future__ import annotations

from conftest import print_table

from repro.core import QueryVisualizationPipeline

#: (original, refinement, should be recognised as the same pattern?)
REFINEMENTS = [
    (
        "SELECT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid AND R.bid = 102",
        "SELECT X.sname FROM Sailors X, Reserves Y WHERE Y.bid = 102 AND X.sid = Y.sid",
        True,
    ),
    (
        "SELECT S.sname FROM Sailors S WHERE S.sid NOT IN "
        "(SELECT R.sid FROM Reserves R WHERE R.bid = 103)",
        "SELECT S.sname FROM Sailors S WHERE NOT EXISTS "
        "(SELECT R.sid FROM Reserves R WHERE R.sid = S.sid AND R.bid = 103)",
        True,
    ),
    (
        "SELECT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid AND R.bid = 102",
        "SELECT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid AND R.bid = 104",
        False,
    ),
    (
        "SELECT S.sname FROM Sailors S WHERE S.sid IN (SELECT R.sid FROM Reserves R)",
        "SELECT S.sname FROM Sailors S WHERE S.sid NOT IN (SELECT R.sid FROM Reserves R)",
        False,
    ),
]


def test_f2_roundtrip_artifact(db, capsys):
    pipeline = QueryVisualizationPipeline(db)
    rows = []
    for original, refined, expected in REFINEMENTS:
        same = pipeline.round_trip_consistent(original, refined)
        assert same == expected
        rows.append([original[:48] + "...", refined[:48] + "...",
                     "same pattern" if same else "DIFFERENT"])
    with capsys.disabled():
        print_table("F2: refinement verification (pattern round trip)",
                    ["original", "refinement", "verdict"], rows)


def test_f2_roundtrip_latency(benchmark, db):
    pipeline = QueryVisualizationPipeline(db)
    original, refined, _ = REFINEMENTS[1]

    same = benchmark(lambda: pipeline.round_trip_consistent(original, refined))
    assert same
