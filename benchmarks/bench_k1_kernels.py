"""Experiment K1: kernel microbenchmarks — probe and DISTINCT vs fallback.

Isolates the numpy kernels of :mod:`repro.engine.kernels` from the
backend transports the E-series experiments measure.  Each cell runs one
plan through :class:`~repro.engine.kernels.KernelExecutor` (dictionary
encodings, cached probe structures, packed-code DISTINCT) and through
:class:`~repro.engine.vectorized.VectorizedExecutor` — the bit-identical
pure-Python fallback that every kernel declines to when numpy is absent
or ``REPRO_KERNELS=0`` — on a synthetic star schema:

* **probe-int-key** — fact⋈dim on an int64 key column;
* **probe-str-key** — fact⋈dim on a dictionary-encoded string key: the
  probe maps probe-side dictionary codes onto the build-side domain, so
  no string comparison happens per row;
* **probe-multi-key** — fact⋈dim on (int, string): both columns lower to
  codes and pack into one int64 lexicographic key per row;
* **distinct** — ``SELECT DISTINCT`` over a low-cardinality string
  column: the DISTINCT kernel deduplicates dictionary codes without
  touching a single string (the packed multi-column path is pinned by
  the fuzz suite and E6's join chain).

Gated: every family must beat the fallback by ``GATE_SPEEDUP`` at the
largest size (answers are bag-equal asserted per cell).  The artifact
also snapshots :func:`repro.engine.kernels.cache_stats` after the run —
probe structures for the shared dim table must be cache hits across
iterations, which is the "cached probe tables" half of what this suite
pins.

Runs standalone (the CI smoke job) or under pytest::

    PYTHONPATH=../src python bench_k1_kernels.py --smoke
    PYTHONPATH=../src python -m pytest bench_k1_kernels.py -q

Artifacts: a table on stdout, a ``K1-JSON`` line, and
``benchmarks/artifacts/bench_k1_kernels.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from collections import Counter

from conftest import print_table

from repro.data.database import Database
from repro.data.relation import relation_from_rows
from repro.engine import lower, optimize
from repro.engine.kernels import (
    KernelExecutor,
    cache_stats,
    clear_cache,
    kernels_enabled,
)
from repro.engine.vectorized import VectorizedExecutor

REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")

#: Fact-table row counts, smallest → largest; the dim table scales 1:16.
FULL_SIZES = [12000, 48000, 192000]
SMOKE_SIZES = [12000, 48000]

#: Every family must beat the pure-Python fallback by this factor at the
#: largest size.  Deliberately below the measured headroom: the gate
#: catches "kernel silently declined", not single-digit noise.
GATE_SPEEDUP = 1.5

ARTIFACT_DIR = os.environ.get(
    "REPRO_BENCH_ARTIFACTS",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "artifacts"))

#: The probe families join bare scans: a ``ScanP`` build side is what the
#: probe-structure cache keys on, so iteration two onward the kernel
#: executor reuses the sorted-key structure while the Python fallback
#: rebuilds its hash table from scratch every run — exactly the "cached
#: probe tables" contrast this suite exists to pin.
WORKLOADS = {
    "probe-int-key": (
        "SELECT d.k FROM fact f, dim d WHERE f.fk = d.k"),
    "probe-str-key": (
        "SELECT d.k FROM fact f, dim d WHERE f.tag = d.tag"),
    "probe-multi-key": (
        "SELECT d.k FROM fact f, dim d "
        "WHERE f.fk = d.k AND f.tag = d.tag"),
    "distinct": "SELECT DISTINCT f.cat FROM fact f",
}


def synthetic_star(n_fact: int, seed: int = 7) -> Database:
    """A fact⋈dim star with int, string, and low-cardinality columns.

    Deterministic congruential mixing instead of :mod:`random`: the rows
    only need to be well-shuffled, and arithmetic keeps generation far
    cheaper than the measurement it feeds.
    """
    n_dim = max(16, n_fact // 4)
    dim = relation_from_rows(
        "dim", [("k", "int"), ("tag", "string"), ("region", "string")],
        [(i, f"tag{i:06d}", f"r{i % 23:02d}") for i in range(n_dim)])
    fact_rows = []
    state = seed
    for _ in range(n_fact):
        state = (state * 1103515245 + 12345) % (1 << 31)
        fk = state % n_dim
        fact_rows.append(
            (fk, f"tag{fk:06d}", f"c{state % 13:02d}", state % 97))
    fact = relation_from_rows(
        "fact",
        [("fk", "int"), ("tag", "string"), ("cat", "string"),
         ("bucket", "int")],
        fact_rows)
    return Database([dim, fact])


def _best_of(fn, reps: int = 5, warm: int = 2):
    result = None
    for _ in range(warm):  # column encodings + probe-structure cache fill
        result = fn()
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _write_artifact(name: str, artifact: dict) -> None:
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")


def _measure_size(n_fact: int) -> list[dict]:
    db = synthetic_star(n_fact)
    cells = []
    for family, sql in WORKLOADS.items():
        plan = optimize(lower(sql, db.schema, "sql"), db)
        fast_rows, fast_s = _best_of(
            lambda plan=plan: KernelExecutor(db).batch(plan).rows())
        slow_rows, slow_s = _best_of(
            lambda plan=plan: VectorizedExecutor(db).batch(plan).rows(),
            warm=1)
        assert Counter(map(tuple, fast_rows)) == \
            Counter(map(tuple, slow_rows)), (
            f"{family}@{n_fact}: kernel disagrees with fallback")
        cells.append({
            "workload": family,
            "family": family,
            "reserves": n_fact,  # record-schema size key (fact rows)
            "rows_out": len(fast_rows),
            "kernel_ms": round(fast_s * 1000, 3),
            "python_ms": round(slow_s * 1000, 3),
            "speedup": round(slow_s / fast_s, 2) if fast_s > 0 else None,
            "largest_size": False,  # stamped by run_experiment
        })
    return cells


def run_experiment(smoke: bool) -> dict:
    clear_cache()
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    cells: list[dict] = []
    for n_fact in sizes:
        cells.extend(_measure_size(n_fact))
    for cell in cells:
        cell["largest_size"] = cell["reserves"] == sizes[-1]
    artifact = {
        "experiment": "K1-kernel-microbench",
        "reduced": smoke,
        "kernels": kernels_enabled(),
        "gate_speedup": GATE_SPEEDUP,
        "cache": cache_stats(),
        "cells": cells,
    }
    _write_artifact("bench_k1_kernels.json", artifact)
    rows = [
        [cell["family"], cell["reserves"], cell["rows_out"],
         f"{cell['python_ms']:.2f}", f"{cell['kernel_ms']:.2f}",
         f"{cell['speedup']:.2f}x"]
        for cell in cells
    ]
    print_table(
        "K1: numpy kernels vs pure-Python fallback "
        "(bag-equal asserted per cell)",
        ["workload", "fact rows", "out rows", "python ms", "kernel ms",
         "speedup"],
        rows,
    )
    print("K1-JSON " + json.dumps(artifact))
    return artifact


def check_gates(artifact: dict) -> list[str]:
    """The K1 acceptance gates over a measured artifact; [] when green.

    Every workload family at the largest size must beat the pure-Python
    fallback by ``GATE_SPEEDUP``, and the probe-structure cache must
    have registered hits (the dim-side build is shared across probe
    iterations — zero hits would mean the cache key is broken).
    """
    if not artifact.get("kernels", False):
        return []  # numpy absent: the fallback ran against itself
    failures: list[str] = []
    largest = {c["family"]: c for c in artifact["cells"]
               if c["largest_size"]}
    if set(largest) != set(WORKLOADS):
        failures.append(f"missing gated K1 cells: have {sorted(largest)}")
    for family, cell in sorted(largest.items()):
        if cell["speedup"] < artifact["gate_speedup"]:
            failures.append(
                f"{family} at the largest size: {cell['speedup']:.2f}x < "
                f"{artifact['gate_speedup']}x over the Python fallback")
    if artifact["cache"]["hits"] <= 0:
        failures.append("probe-structure cache recorded zero hits")
    return failures


# -- pytest entry points -----------------------------------------------------

def test_k1_kernel_artifact(capsys):
    with capsys.disabled():
        artifact = run_experiment(smoke=REDUCED)
    assert artifact["cells"], "no cells measured"
    failures = check_gates(artifact)
    assert not failures, "\n".join(failures)


# -- standalone entry point --------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes (the CI configuration)")
    args = parser.parse_args(argv)
    artifact = run_experiment(smoke=args.smoke or REDUCED)
    failures = check_gates(artifact)
    for failure in failures:
        print(f"K1 GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
