"""Experiment T1 (Part 3 of the tutorial): the 5-query × 5-language matrix.

The tutorial expresses each example query in SQL, RA, TRC, DRC, and Datalog
and relies on their equivalence throughout.  This harness regenerates that
matrix: every cell is evaluated by its own engine on the cow-book instance,
the empty instance, and a family of random instances, and all 25 cells must
agree query-wise.  The shape to reproduce: 25/25 agreement.
"""

from __future__ import annotations

from conftest import print_table

from repro.queries import CANONICAL_QUERIES, LANGUAGES
from repro.translate import answer_set, check_equivalence, standard_database_battery


def test_t1_language_matrix_artifact(db, capsys):
    battery = standard_database_battery(extra_random=3, rows=8)
    rows = []
    agreeing = 0
    for query in CANONICAL_QUERIES:
        reference = answer_set(query.sql, db)
        cells = []
        for language in LANGUAGES:
            answer = answer_set(query.languages()[language], db)
            same = answer == reference
            agreeing += int(same)
            cells.append(f"{len(answer)}{'' if same else '!'}")
        result = check_equivalence(list(query.languages().values()), battery)
        assert result.equivalent, result.details
        rows.append([query.id, *cells, f"{result.databases_checked} dbs"])
    assert agreeing == len(CANONICAL_QUERIES) * len(LANGUAGES)
    with capsys.disabled():
        print_table(
            "T1: answers per language on the cow-book instance "
            "(! would mark a disagreement; none expected)",
            ["query", *LANGUAGES, "equivalence checked on"],
            rows,
        )


def test_t1_equivalence_check_latency(benchmark):
    """Time the full five-way equivalence check for the division query (Q4)."""
    query = CANONICAL_QUERIES[3]
    battery = standard_database_battery(extra_random=2, rows=6)

    result = benchmark(lambda: check_equivalence(list(query.languages().values()), battery))
    assert result.equivalent


def test_t1_single_language_evaluation(benchmark, db):
    """Baseline: evaluating just the SQL representation of Q4."""
    query = CANONICAL_QUERIES[3]

    answers = benchmark(lambda: answer_set(query.sql, db))
    assert {row[0] for row in answers} == {"Dustin", "Lubber"}
