"""Experiment E6: multi-process scatter-gather over shared-memory pages.

Measures the ``"process"`` backend (:mod:`repro.engine.process`) at 1, 2,
and 4 worker processes against the single-node ``"vectorized"`` baseline
on two workload families:

* **join-chain** — the E4/E5 five-relation chain: co-partitioned
  Sailors⋈Reserves legs with the small Boats side broadcast.  Since
  dictionary-encoded string columns and the packed-key probe structures
  landed, the chain runs kernel-resident (sorted-code probes over
  encodings cached per column, DISTINCT pre-reduction on packed codes)
  and is **gated**: ≥1.5x over ``vectorized`` at 4 workers on the
  largest size;
* **aggregation** — a full-table group-by rollup over the fact table,
  the shape the compiled kernels (:mod:`repro.engine.kernels`) and the
  partial→final aggregation split were built for.  Per-shard partial
  aggregates run numpy-resident in the workers over zero-copy page
  views; only a few hundred partial rows cross the pipe back.  Gated:
  ≥1.8x over ``vectorized`` at 4 workers on the largest size.

Both gated families must also show a monotonically non-decreasing
1→2→4 worker curve, checked only between cells whose *pinned* worker
counts actually differ — on a core-starved runner the cells collapse to
identical configurations and comparing them would gate on timer noise.

Answers are asserted bag-equal against ``"vectorized"`` for every cell.
Worker counts are pinned to the runner's core count (``effective_workers
= min(requested, cpu_count)``): oversubscribing a small CI box would
measure scheduler thrash, not the backend, and is the flake the pin
avoids.  ``vs_one_worker`` records the worker-scaling curve; on a
single-core runner all three cells collapse to the same 1-worker
configuration and the curve is flat by construction (recorded as such —
the kernels carry the speedup there, the processes carry it on real
cores).

Runs standalone (the CI smoke job) or under pytest::

    PYTHONPATH=../src python bench_e6_process.py --smoke
    PYTHONPATH=../src python -m pytest bench_e6_process.py -q

Artifacts: a table on stdout, an ``E6-JSON`` line, and
``benchmarks/artifacts/bench_e6_process.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from conftest import print_table

from repro.data.sailors import random_sailors_database
from repro.data.sharded import ShardedDatabase
from repro.engine import clear_compiled_cache, execute_plan, lower, optimize
from repro.engine.kernels import kernels_enabled
from repro.engine.process import ProcessBackend

REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")

#: (n_sailors, n_boats, n_reserves) scales, smallest → largest.  The
#: largest smoke size matches the middle full size so the gated cell is
#: comparable between the CI smoke run and a full run.
FULL_SIZES = [(1200, 50, 12000), (4800, 150, 48000), (19200, 600, 192000)]
SMOKE_SIZES = [(1200, 50, 12000), (4800, 150, 48000)]

N_SHARDS = 4
WORKER_COUNTS = (1, 2, 4)

#: The acceptance gate: aggregation at 4 workers on the largest size must
#: beat ``vectorized`` by this factor.
GATE_SPEEDUP = 1.8
#: The join-chain gate at 4 workers on the largest size: the dictionary
#: probe structures make the chain kernel-resident, so it must beat the
#: pure-Python ``vectorized`` baseline even on a single core.
JOIN_GATE_SPEEDUP = 1.5
#: family → required speedup at ``WORKER_COUNTS[-1]`` on the largest size.
GATED_FAMILIES = {"join-chain": JOIN_GATE_SPEEDUP, "aggregation": GATE_SPEEDUP}
#: Tolerance for the 1→2→4 monotonicity check: each step may dip at most
#: this fraction below the previous one (timer noise on shared runners;
#: on a core-starved box the steps are the same configuration entirely).
MONOTONE_TOLERANCE = 0.10

ARTIFACT_DIR = os.environ.get(
    "REPRO_BENCH_ARTIFACTS",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "artifacts"))

JOIN_CHAIN_SQL = (
    "SELECT DISTINCT S.sname FROM Sailors S, Boats B, Reserves R0, "
    "Reserves R1, Reserves R2 WHERE B.color = 'red' "
    "AND S.sid = R0.sid AND R0.bid = B.bid "
    "AND S.sid = R1.sid AND R1.bid = B.bid "
    "AND S.sid = R2.sid AND R2.bid = B.bid"
)

AGGREGATION_SQL = (
    "SELECT R.bid, COUNT(*) AS n, MIN(R.sid) AS first_sailor, "
    "MAX(R.sid) AS last_sailor FROM Reserves R GROUP BY R.bid"
)

WORKLOADS = ("join-chain", "aggregation")


def effective_workers(requested: int) -> int:
    """``requested`` pinned to the runner's core count (≥1)."""
    return max(1, min(requested, os.cpu_count() or 1))


def _best_of(fn, reps: int = 5, warm: int = 2):
    result = None
    for _ in range(warm):  # shard plans, page publication, worker attach
        result = fn()
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _write_artifact(name: str, artifact: dict) -> None:
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")


def _measure_size(size: tuple[int, int, int]) -> list[dict]:
    n_sailors, n_boats, n_reserves = size
    db = random_sailors_database(n_sailors=n_sailors, n_boats=n_boats,
                                 n_reserves=n_reserves, seed=21)
    plans = {
        "join-chain": optimize(lower(JOIN_CHAIN_SQL, db.schema, "sql"), db),
        "aggregation": optimize(lower(AGGREGATION_SQL, db.schema, "sql"), db),
    }
    baselines = {}
    for workload, plan in plans.items():
        relation, seconds = _best_of(
            lambda plan=plan: execute_plan(plan, db, backend="vectorized"),
            warm=1)
        baselines[workload] = (relation, seconds)

    sharded = ShardedDatabase.from_database(db, N_SHARDS)
    cells = []
    one_worker_ms: dict[str, float] = {}
    try:
        for requested in WORKER_COUNTS:
            pinned = effective_workers(requested)
            backend = ProcessBackend(n_shards=N_SHARDS, workers=pinned)
            try:
                for workload, plan in plans.items():
                    # Extra warm-up proportional to the pool width: every
                    # (worker, shard) pair must attach its segments once
                    # before steady state is measurable.
                    relation, seconds = _best_of(
                        lambda plan=plan, backend=backend:
                        execute_plan(plan, sharded, backend=backend),
                        warm=1 + 2 * pinned)
                    assert baselines[workload][0].bag_equal(relation), (
                        f"{workload}@{requested}w: process disagrees "
                        "with vectorized")
                    cells.append(_cell(workload, size, requested, pinned,
                                       seconds, baselines[workload][1],
                                       one_worker_ms))
            finally:
                backend.close()
    finally:
        sharded.close()
    return cells


def _cell(workload: str, size: tuple[int, int, int], requested: int,
          pinned: int, seconds: float, baseline_s: float,
          one_worker_ms: dict[str, float]) -> dict:
    ms = seconds * 1000
    if requested == 1:
        one_worker_ms[workload] = ms
    reference = one_worker_ms.get(workload)
    return {
        "workload": f"{workload}@{requested}w",
        "family": workload,
        "workers": requested,
        "effective_workers": pinned,
        "sailors": size[0], "boats": size[1], "reserves": size[2],
        "process_ms": round(ms, 3),
        "vectorized_ms": round(baseline_s * 1000, 3),
        "speedup": round(baseline_s * 1000 / ms, 2) if ms > 0 else None,
        "vs_one_worker": round(reference / ms, 2)
        if reference and ms > 0 else None,
        "largest_size": False,  # stamped by run_experiment
    }


def run_experiment(smoke: bool) -> dict:
    clear_compiled_cache()
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    cells: list[dict] = []
    for size in sizes:
        cells.extend(_measure_size(size))
    largest = sizes[-1]
    for cell in cells:
        cell["largest_size"] = \
            (cell["sailors"], cell["boats"], cell["reserves"]) == largest
    artifact = {
        "experiment": "E6-process-scatter-gather",
        "reduced": smoke,
        "n_shards": N_SHARDS,
        "worker_counts": list(WORKER_COUNTS),
        "cpu_count": os.cpu_count() or 1,
        "kernels": kernels_enabled(),
        "gate_speedup": GATE_SPEEDUP,
        "join_gate_speedup": JOIN_GATE_SPEEDUP,
        "cells": cells,
    }
    _write_artifact("bench_e6_process.json", artifact)
    rows = [
        [cell["family"], cell["reserves"],
         f"{cell['workers']} ({cell['effective_workers']})",
         f"{cell['vectorized_ms']:.2f}", f"{cell['process_ms']:.2f}",
         f"{cell['speedup']:.2f}x", f"{cell['vs_one_worker']:.2f}x"]
        for cell in cells
    ]
    print_table(
        "E6: process scatter-gather + kernels vs single-node vectorized "
        "(bag-equal asserted per cell)",
        ["workload", "reserves", "workers (pinned)", "vectorized ms",
         "process ms", "vs vectorized", "vs 1 worker"],
        rows,
    )
    print("E6-JSON " + json.dumps(artifact))
    return artifact


def check_gates(artifact: dict) -> list[str]:
    """The E6 acceptance gates over a measured artifact; [] when green.

    * each family in ``GATED_FAMILIES`` at 4 workers on the largest size
      beats ``vectorized`` by its gate factor (aggregation
      ``GATE_SPEEDUP``, join-chain ``JOIN_GATE_SPEEDUP``);
    * speedup is monotonically non-decreasing 1→2→4 workers (within
      ``MONOTONE_TOLERANCE`` for timer noise), comparing only cells
      whose pinned worker counts differ — cells that collapsed to the
      same configuration on a core-starved runner measure only noise.
    """
    failures: list[str] = []
    for family, gate in GATED_FAMILIES.items():
        gated = {c["workers"]: c for c in artifact["cells"]
                 if c["family"] == family and c["largest_size"]}
        if set(gated) != set(WORKER_COUNTS):
            failures.append(
                f"missing gated {family} cells: have {sorted(gated)}")
            continue
        top = gated[WORKER_COUNTS[-1]]
        if top["speedup"] < gate:
            failures.append(
                f"{family}@{WORKER_COUNTS[-1]}w at the largest size: "
                f"{top['speedup']:.2f}x < {gate}x over vectorized")
        for lo, hi in zip(WORKER_COUNTS, WORKER_COUNTS[1:]):
            if gated[hi]["effective_workers"] <= \
                    gated[lo]["effective_workers"]:
                continue  # same pinned configuration: noise, not scaling
            slow, fast = gated[lo]["speedup"], gated[hi]["speedup"]
            if fast < slow * (1.0 - MONOTONE_TOLERANCE):
                failures.append(
                    f"{family} speedup not monotone: {lo}w {slow:.2f}x → "
                    f"{hi}w {fast:.2f}x (tolerance "
                    f"{MONOTONE_TOLERANCE:.0%})")
    return failures


# -- pytest entry points -----------------------------------------------------

def test_e6_process_artifact(capsys):
    with capsys.disabled():
        artifact = run_experiment(smoke=REDUCED)
    cells = artifact["cells"]
    assert cells, "no cells measured"
    assert {c["family"] for c in cells} == set(WORKLOADS)
    failures = check_gates(artifact)
    assert not failures, "\n".join(failures)


# -- standalone entry point --------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes (the CI configuration)")
    args = parser.parse_args(argv)
    artifact = run_experiment(smoke=args.smoke or REDUCED)
    failures = check_gates(artifact)
    for failure in failures:
        print(f"E6 GATE FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
