#!/usr/bin/env python
"""Fail CI when a tracked benchmark speedup regresses vs the baselines.

``run_all.py`` writes one unified ``BENCH_<suite>.json`` per suite; the
committed snapshots live in ``benchmarks/baselines/``.  This gate compares
the **speedup ratios** (engine vs interpreter, vectorized vs row, parallel vs
vectorized, incremental view refresh vs recompute, warm vs cold cache) —
ratios, not wall-clock, so the gate holds across CI hardware generations.

A record regresses when its speedup falls more than ``--threshold`` (default
30%) below the committed baseline for the same ``(workload, size, backend)``
key.  A baseline record with no matching fresh measurement also fails — a
silently vanished benchmark is a regression of coverage.  Fresh records with
no baseline are reported as new and pass (commit updated baselines to start
tracking them), and a whole **suite** present in the artifacts but absent
from the committed baselines is the new-suite bootstrap case: it is reported
as informational (with its record count) and never fails the build — a
freshly landed benchmark must be able to ride one CI cycle before its
baseline is promoted with ``--update``.

Usage::

    PYTHONPATH=../src python run_all.py --smoke
    python compare_bench.py                 # gate against baselines/
    python compare_bench.py --update        # rewrite baselines from artifacts
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_ARTIFACTS = os.environ.get("REPRO_BENCH_ARTIFACTS",
                                   os.path.join(HERE, "artifacts"))
DEFAULT_BASELINES = os.path.join(HERE, "baselines")
DEFAULT_THRESHOLD = 0.30

#: Baseline speedups below this are treated as informational, not gated: a
#: ratio hovering around 1.0x (e.g. thread-pool parallelism on tiny smoke
#: inputs under the GIL) moves with runner noise, and a 30% band around
#: "roughly break-even" would flake on shared CI hardware.
GATE_FLOOR = 1.5


def _load_records(path: str) -> dict[tuple, dict]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    records = {}
    for record in payload.get("records", []):
        key = (record["workload"], record["size"], record["backend"])
        records[key] = record
    return records


def compare_suite(suite: str, baseline_path: str, artifact_path: str,
                  threshold: float) -> tuple[list[str], list[str]]:
    """``(failures, notes)`` for one suite's baseline vs fresh artifact."""
    failures: list[str] = []
    notes: list[str] = []
    if not os.path.exists(artifact_path):
        return ([f"{suite}: no fresh artifact at {artifact_path} "
                 "(did run_all.py run?)"], notes)
    baseline = _load_records(baseline_path)
    fresh = _load_records(artifact_path)
    for key, base_record in sorted(baseline.items()):
        workload, size, backend = key
        label = f"{suite}/{workload}@{size}[{backend}]"
        fresh_record = fresh.get(key)
        if fresh_record is None:
            failures.append(f"{label}: tracked benchmark disappeared")
            continue
        base_speedup = base_record.get("speedup")
        new_speedup = fresh_record.get("speedup")
        if base_speedup is None or new_speedup is None:
            continue
        if base_speedup < GATE_FLOOR:
            notes.append(f"{label}: {new_speedup:.2f}x (baseline "
                         f"{base_speedup:.2f}x, near break-even: not gated)")
            continue
        floor = base_speedup * (1.0 - threshold)
        if new_speedup < floor:
            failures.append(
                f"{label}: speedup {new_speedup:.2f}x regressed more than "
                f"{threshold:.0%} below baseline {base_speedup:.2f}x "
                f"(floor {floor:.2f}x)")
        else:
            notes.append(f"{label}: {new_speedup:.2f}x "
                         f"(baseline {base_speedup:.2f}x) ok")
    for key in sorted(set(fresh) - set(baseline)):
        workload, size, backend = key
        notes.append(f"{suite}/{workload}@{size}[{backend}]: new, untracked")
    return failures, notes


def update_baselines(artifacts: str, baselines: str) -> int:
    os.makedirs(baselines, exist_ok=True)
    copied = 0
    for name in sorted(os.listdir(artifacts)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            shutil.copyfile(os.path.join(artifacts, name),
                            os.path.join(baselines, name))
            print(f"[compare_bench] baseline updated: {name}")
            copied += 1
    return copied


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifacts", default=DEFAULT_ARTIFACTS)
    parser.add_argument("--baselines", default=DEFAULT_BASELINES)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional speedup regression "
                             "(default 0.30)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baselines from the fresh artifacts "
                             "instead of comparing")
    args = parser.parse_args(argv)

    if args.update:
        if update_baselines(args.artifacts, args.baselines) == 0:
            print("[compare_bench] no BENCH_*.json artifacts to promote",
                  file=sys.stderr)
            return 1
        return 0

    if not os.path.isdir(args.baselines):
        print(f"[compare_bench] no baselines directory at {args.baselines}; "
              "run with --update to create it", file=sys.stderr)
        return 1

    def _suite_files(directory: str) -> set[str]:
        if not os.path.isdir(directory):
            return set()
        return {name for name in os.listdir(directory)
                if name.startswith("BENCH_") and name.endswith(".json")}

    baseline_files = _suite_files(args.baselines)
    artifact_files = _suite_files(args.artifacts)
    all_failures: list[str] = []
    compared = 0
    for name in sorted(baseline_files | artifact_files):
        suite = name[len("BENCH_"):-len(".json")]
        if name not in baseline_files:
            # New-suite bootstrap: measured but not yet tracked.  This is
            # informational, never a failure — promote with --update once
            # the suite has landed to start gating it.
            records = _load_records(os.path.join(args.artifacts, name))
            print(f"[compare_bench] {suite}: new suite, {len(records)} "
                  "record(s) with no committed baseline — informational "
                  "(bootstrap; run compare_bench.py --update to track)")
            continue
        failures, notes = compare_suite(
            suite, os.path.join(args.baselines, name),
            os.path.join(args.artifacts, name), args.threshold)
        for note in notes:
            print(f"[compare_bench] {note}")
        all_failures.extend(failures)
        compared += 1
    if compared == 0 and not artifact_files:
        print("[compare_bench] no BENCH_*.json baselines or artifacts found",
              file=sys.stderr)
        return 1
    if all_failures:
        print(f"\n[compare_bench] {len(all_failures)} regression(s):",
              file=sys.stderr)
        for failure in all_failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        return 1
    print(f"[compare_bench] all tracked speedups within {args.threshold:.0%} "
          "of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
