"""Experiment F1 (Fig. 1): the query-visualization pipeline.

The paper's Fig. 1 shows an analyst dictating a query; the system parses it,
shows the query back as a diagram, and returns the answers.  This harness
runs that loop for every canonical query, reports the per-stage latency, and
benchmarks the end-to-end pipeline — establishing that the "visualize the
query back" step adds only milliseconds on top of answering it.
"""

from __future__ import annotations

from conftest import print_table

from repro.core import QueryVisualizationPipeline
from repro.queries import CANONICAL_QUERIES


def test_f1_pipeline_artifact(db, capsys):
    """Regenerate the Fig. 1 interaction for all canonical queries."""
    pipeline = QueryVisualizationPipeline(db)
    rows = []
    for query in CANONICAL_QUERIES:
        result = pipeline.run(query.sql)
        answers = {row[0] for row in result.answers.distinct_rows()}
        assert answers == set(query.expected_names)
        assert result.diagram.nodes and result.diagram.validate() == []
        rows.append([
            query.id,
            len(result.answers),
            result.diagram.total_ink(),
            f"{result.timings['parse'] * 1000:.2f}",
            f"{result.timings['diagram'] * 1000:.2f}",
            f"{result.timings['evaluate'] * 1000:.2f}",
        ])
    with capsys.disabled():
        print_table(
            "F1: dictate -> visualize -> answer (per canonical query)",
            ["query", "answers", "diagram ink", "parse ms", "diagram ms", "evaluate ms"],
            rows,
        )


def test_f1_pipeline_latency(benchmark, db):
    """End-to-end pipeline latency for the hardest canonical query (Q4)."""
    pipeline = QueryVisualizationPipeline(db)
    sql = CANONICAL_QUERIES[3].sql

    result = benchmark(lambda: pipeline.run(sql))
    assert {row[0] for row in result.answers.distinct_rows()} == {"Dustin", "Lubber"}


def test_f1_visualization_only_latency(benchmark, db):
    """Diagram generation alone (the incremental cost of Fig. 1's visual reply)."""
    pipeline = QueryVisualizationPipeline(db)
    sql = CANONICAL_QUERIES[3].sql

    result = benchmark(lambda: pipeline.run(sql, evaluate=False))
    assert result.answers is None
