"""Experiment E10: shard-aware view maintenance vs full scatter-gather.

The composition ISSUE 10 closes: materialized views (E4) now work on the
sharded service, maintained as one delta-driven partial per shard with a
gather-side combine.  For each workload and shard count the experiment
measures, over the same stream of routed insert batches,

* **full** — answering the query through a sharded service with no views
  and no result cache: every batch forces a full scatter-gather
  recomputation (what serving looked like before shard-aware IVM), and
* **incremental** — refreshing the registered
  :class:`~repro.core.sharded_service.ShardedMaterializedView`, which
  applies each touched shard's delta plans to its partial and re-combines.

Answers are asserted bag-equal after every batch, so the speedup is
honest: both sides produce identical results at every version.  The ISSUE
gates ``join-chain`` and ``aggregation`` at the largest size on **>= 5x**
for every shard count (1, 2, and 4).

Runs standalone (the CI smoke job) or under pytest::

    PYTHONPATH=../src python bench_e10_sharded_ivm.py --smoke
    PYTHONPATH=../src python -m pytest bench_e10_sharded_ivm.py -q

Artifacts: a table on stdout, an ``E10-JSON`` line, and
``benchmarks/artifacts/bench_e10_sharded_ivm.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from conftest import print_table

from repro.core.sharded_service import ShardedQueryService
from repro.data.sailors import random_sailors_database
from repro.engine import clear_compiled_cache

REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")

SHARD_COUNTS = (1, 2, 4)

#: (n_sailors, n_boats, n_reserves) scales.  Incremental refresh cost is
#: per-delta (constant); the full side re-scatters the whole database, so
#: the gap widens with size — the gate is asserted at the largest.  Smoke
#: keeps only the largest size so the gated cells measure the same point.
FULL_SIZES = [(1200, 50, 12000), (2400, 90, 24000)]
SMOKE_SIZES = [(2400, 90, 24000)]

#: Insert batches applied per measurement (each batch = one routed write).
BATCHES = 10
BATCH_ROWS = 10

GATE_SPEEDUP = 5.0

ARTIFACT_DIR = os.environ.get(
    "REPRO_BENCH_ARTIFACTS",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "artifacts"))

#: Sailors co-partitions with Reserves on sid; Boats rides along as a
#: broadcast alias — so the view exercises both scatter shapes while the
#: write stream lands on partitioned delta logs.
JOIN_CHAIN_SQL = (
    "SELECT DISTINCT S.sname FROM Sailors S, Boats B, Reserves R0, "
    "Reserves R1 WHERE B.color = 'red' "
    "AND S.sid = R0.sid AND R0.bid = B.bid "
    "AND S.sid = R1.sid AND R1.bid = B.bid"
)

#: AVG forces the partial→final split (per-shard SUM + COUNT, recombined
#: at gather), the shape the ISSUE names.
AGGREGATION_SQL = (
    "SELECT S.rating, COUNT(*) AS n, AVG(S.age) AS avg_age "
    "FROM Sailors S, Reserves R WHERE S.sid = R.sid GROUP BY S.rating"
)

WORKLOADS = [
    ("join-chain", JOIN_CHAIN_SQL),
    ("aggregation", AGGREGATION_SQL),
]


def _write_artifact(name: str, artifact: dict) -> None:
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")


def _batch(i: int, n_sailors: int, n_boats: int) -> list[tuple]:
    return [((i * BATCH_ROWS + j) % n_sailors + 1,
             (i * 3 + j) % n_boats + 101,
             f"2025-{(i % 12) + 1:02d}-{(j % 28) + 1:02d}")
            for j in range(BATCH_ROWS)]


def _measure_cell(size: tuple[int, int, int], n_shards: int, workload: str,
                  text: str) -> dict:
    n_sailors, n_boats, n_reserves = size

    def database():
        return random_sailors_database(n_sailors=n_sailors, n_boats=n_boats,
                                       n_reserves=n_reserves, seed=10)

    # Incremental side: the sharded service with the registered view.
    service = ShardedQueryService(database(), n_shards=n_shards)
    view = service.register_view(text, name=workload)
    view.answer()  # settle the initial materialization

    # Full side: the same deployment without views or result cache —
    # every batch forces a full scatter-gather recomputation.
    full = ShardedQueryService(database(), n_shards=n_shards,
                               result_cache_size=0)
    full.answer(text)  # warm plan cache + probe structures

    # Steady-state warm-up: both sides absorb one unmeasured batch so the
    # first measured refresh reuses the join indexes built on the first.
    warmup = _batch(BATCHES, n_sailors, n_boats)
    service.add_rows("Reserves", warmup, validate=False)
    full.add_rows("Reserves", warmup, validate=False)
    view.answer()
    full.answer(text)

    incremental_s = 0.0
    full_s = 0.0
    for i in range(BATCHES):
        rows = _batch(i, n_sailors, n_boats)
        service.add_rows("Reserves", rows, validate=False)
        full.add_rows("Reserves", rows, validate=False)

        start = time.perf_counter()
        incremental_answers = view.answer()
        incremental_s += time.perf_counter() - start

        start = time.perf_counter()
        full_answers = full.answer(text)
        full_s += time.perf_counter() - start

        assert incremental_answers.bag_equal(full_answers), (
            f"{workload}@{n_shards}sh: view diverged from recomputation "
            f"at batch {i}"
        )

    info = view.info()
    service.close()
    full.close()
    return {
        "workload": f"{workload}-{n_shards}sh",
        "base_workload": workload,
        "n_shards": n_shards,
        "sailors": n_sailors, "boats": n_boats, "reserves": n_reserves,
        "batches": BATCHES, "rows_per_batch": BATCH_ROWS,
        "strategy": info["strategy"],
        "answer_rows": info["rows"],
        "incremental_refreshes": info["incremental_refreshes"],
        "shard_rebuilds": info["shard_rebuilds"],
        "rebuilds": info["rebuilds"],
        "full_ms": round(full_s * 1000, 3),
        "incremental_ms": round(incremental_s * 1000, 3),
        "speedup": round(full_s / incremental_s, 2)
                   if incremental_s > 0 else None,
    }


def run_experiment(smoke: bool) -> dict:
    clear_compiled_cache()
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    artifact: dict = {"experiment": "E10-sharded-ivm", "reduced": smoke,
                      "cells": []}
    for workload, text in WORKLOADS:
        for n_shards in SHARD_COUNTS:
            for size in sizes:
                cell = _measure_cell(size, n_shards, workload, text)
                cell["largest_size"] = size == sizes[-1]
                artifact["cells"].append(cell)
    _write_artifact("bench_e10_sharded_ivm.json", artifact)
    print_table(
        "E10: sharded view refresh vs full scatter-gather recomputation "
        f"({BATCHES} batches x {BATCH_ROWS} rows, answers asserted equal)",
        ["workload", "shards", "reserves", "strategy", "answers",
         "full ms", "incremental ms", "full/incremental"],
        [[c["base_workload"], c["n_shards"], c["reserves"], c["strategy"],
          c["answer_rows"], f"{c['full_ms']:.2f}",
          f"{c['incremental_ms']:.2f}", f"{c['speedup']:.1f}x"]
         for c in artifact["cells"]],
    )
    print("E10-JSON " + json.dumps(artifact))
    return artifact


def check_gates(artifact: dict) -> list[str]:
    """Failure strings for every gated cell below the >=5x bar."""
    failures = []
    gated = [c for c in artifact["cells"] if c["largest_size"]]
    for cell in gated:
        if cell["rebuilds"] > 1:
            failures.append(f"{cell['workload']}: fell back to rebuild "
                            f"({cell['rebuilds']} rebuilds)")
        if cell["speedup"] is None or cell["speedup"] < GATE_SPEEDUP:
            failures.append(
                f"{cell['workload']}: incremental refresh only "
                f"{cell['speedup']}x faster at the largest size "
                f"(gate: >={GATE_SPEEDUP:.0f}x)")
    return failures


# -- pytest entry points -----------------------------------------------------

def test_e10_sharded_ivm_artifact(capsys):
    with capsys.disabled():
        artifact = run_experiment(smoke=REDUCED)
    assert artifact["cells"], "no cells measured"
    gated = [c for c in artifact["cells"] if c["largest_size"]]
    assert {(c["base_workload"], c["n_shards"]) for c in gated} \
        == {(w, n) for w, _ in WORKLOADS for n in SHARD_COUNTS}
    failures = check_gates(artifact)
    assert not failures, "\n".join(failures)


# -- standalone entry point --------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes for CI smoke runs")
    args = parser.parse_args(argv)
    artifact = run_experiment(smoke=args.smoke or REDUCED)
    failures = check_gates(artifact)
    if failures:
        print("E10 GATE FAILED:\n" + "\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
