"""Experiment E1: the unified plan engine vs. the reference interpreters.

The engine compiles all five languages into one logical plan IR, optimizes it
(pushdown, join reordering, CSE), and executes it with hash joins — replacing
the interpreters' nested-loop products on the hot path.  This harness
measures that replacement on two workload families and emits a JSON artifact
(machine-readable, one blob per table) alongside the usual tables:

* **join-heavy**: an n-way equi-join chain where the interpreter's FROM
  expansion is a materialized cross product;
* **recursive**: transitive closure, naive fixpoint vs. the engine's
  semi-naive evaluation.

Shape to reproduce: the engine wins by orders of magnitude and the gap grows
with both the join arity and the data size, while both sides return
identical answers (asserted, not assumed).
"""

from __future__ import annotations

import json
import time

from conftest import print_table

from repro.data.database import Database
from repro.data.relation import relation_from_rows
from repro.data.sailors import random_sailors_database
from repro.datalog.evaluate import evaluate_datalog
from repro.engine import run_query
from repro.queries import CANONICAL_QUERIES
from repro.sql.evaluate import evaluate_sql


def _chain_sql(n_reserves_refs: int) -> str:
    tables = ["Sailors S", "Boats B"] + [f"Reserves R{i}" for i in range(n_reserves_refs)]
    conditions = ["B.color = 'red'"]
    for i in range(n_reserves_refs):
        conditions.append(f"S.sid = R{i}.sid")
        conditions.append(f"R{i}.bid = B.bid")
    return (f"SELECT DISTINCT S.sname FROM {', '.join(tables)} "
            f"WHERE {' AND '.join(conditions)}")


def _edge_db(n: int) -> Database:
    edges = [(i, i + 1) for i in range(1, n)] + [(n // 2, 2), (n - 1, n // 3)]
    return Database([
        relation_from_rows("edge", [("src", "int"), ("dst", "int")], edges)
    ])


TC_PROGRAM = ("tc(X, Y) :- edge(X, Y).\n"
              "tc(X, Z) :- tc(X, Y), edge(Y, Z).\n"
              "ans(X, Y) :- tc(X, Y).")


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_e1_join_heavy_artifact(capsys):
    # Sized so the interpreter's materialized FROM product (sailors x boats x
    # reserves^n) stays CI-friendly while still losing by orders of magnitude.
    db = random_sailors_database(n_sailors=12, n_boats=5, n_reserves=12, seed=9)
    rows = []
    artifact = {"experiment": "E1-join-heavy",
                "database": {"sailors": 12, "boats": 5, "reserves": 12},
                "cells": []}
    run_query(_chain_sql(1), db, "sql")  # warm both code paths before timing
    evaluate_sql(_chain_sql(1), db)
    for refs in (1, 2, 3):
        sql = _chain_sql(refs)
        interp, interp_s = _timed(lambda: evaluate_sql(sql, db))
        engine, engine_s = _timed(lambda: run_query(sql, db, "sql"))
        assert engine.bag_equal(interp), f"{refs}-reference chain disagrees"
        speedup = interp_s / engine_s if engine_s > 0 else float("inf")
        rows.append([refs + 2, len(engine),
                     f"{interp_s * 1000:.1f}", f"{engine_s * 1000:.1f}",
                     f"{speedup:.0f}x"])
        artifact["cells"].append({
            "tables": refs + 2, "answer_rows": len(engine),
            "interpreter_ms": round(interp_s * 1000, 2),
            "engine_ms": round(engine_s * 1000, 2),
            "speedup": round(speedup, 1),
        })
    with capsys.disabled():
        print_table(
            "E1: n-way join chain, SQL interpreter vs unified engine",
            ["tables", "answers", "interpreter ms", "engine ms", "speedup"],
            rows,
        )
        print("E1-JSON " + json.dumps(artifact))


def test_e1_catalog_artifact(db, capsys):
    """Engine vs interpreter on every catalog query, every language."""
    from repro.translate.equivalence import answer_relation

    rows = []
    artifact = {"experiment": "E1-catalog", "cells": []}
    for query in CANONICAL_QUERIES:
        for language, text in query.languages().items():
            interp, interp_s = _timed(lambda: answer_relation(text, db))
            engine, engine_s = _timed(lambda: run_query(text, db, language.lower()))
            assert engine.bag_equal(interp), f"{query.id}/{language} disagrees"
            rows.append([query.id, language, len(engine),
                         f"{interp_s * 1000:.2f}", f"{engine_s * 1000:.2f}"])
            artifact["cells"].append({
                "query": query.id, "language": language,
                "interpreter_ms": round(interp_s * 1000, 3),
                "engine_ms": round(engine_s * 1000, 3),
            })
    with capsys.disabled():
        print_table(
            "E1: 5x5 catalog matrix, interpreter vs engine (cow-book instance)",
            ["query", "language", "answers", "interpreter ms", "engine ms"],
            rows,
        )
        print("E1-JSON " + json.dumps(artifact))


def test_e1_recursive_artifact(capsys):
    rows = []
    artifact = {"experiment": "E1-recursive", "program": "transitive closure",
                "cells": []}
    for nodes in (15, 30, 45):
        db = _edge_db(nodes)
        naive, naive_s = _timed(lambda: evaluate_datalog(TC_PROGRAM, db))
        engine, engine_s = _timed(lambda: run_query(TC_PROGRAM, db, "datalog"))
        assert engine.bag_equal(naive), f"TC({nodes}) disagrees"
        speedup = naive_s / engine_s if engine_s > 0 else float("inf")
        rows.append([nodes, len(engine), f"{naive_s * 1000:.1f}",
                     f"{engine_s * 1000:.1f}", f"{speedup:.1f}x"])
        artifact["cells"].append({
            "nodes": nodes, "tc_facts": len(engine),
            "naive_ms": round(naive_s * 1000, 2),
            "semi_naive_ms": round(engine_s * 1000, 2),
            "speedup": round(speedup, 1),
        })
    with capsys.disabled():
        print_table(
            "E1: transitive closure, naive fixpoint vs semi-naive engine",
            ["graph nodes", "tc facts", "naive ms", "semi-naive ms", "speedup"],
            rows,
        )
        print("E1-JSON " + json.dumps(artifact))


def test_e1_engine_latency_q4(benchmark, db):
    """Engine latency on the hardest catalog query (Q4, double negation)."""
    sql = CANONICAL_QUERIES[3].sql
    result = benchmark(lambda: run_query(sql, db, "sql"))
    assert {row[0] for row in result.distinct_rows()} == {"Dustin", "Lubber"}


def test_e1_engine_latency_recursion(benchmark):
    db = _edge_db(30)
    result = benchmark(lambda: run_query(TC_PROGRAM, db, "datalog"))
    assert len(result) > 30
