"""Experiment E3: partitioned parallel execution vs the vectorized baseline.

Measures the ``"parallel"`` backend (span-partitioned hash-join probes,
hash-partitioned group-by — :mod:`repro.engine.parallel`) against the
sequential ``"vectorized"`` backend on the two partitionable workload
families, plus the :class:`~repro.core.service.QueryService` serving path
under a concurrent reader storm.  Answers are asserted bag-equal cell by
cell; timings are steady-state (warm-up, then best of N).  Throughput is
recorded as an honest measurement, not gated: CPython's GIL interleaves the
workers' row loops, so single-process thread parallelism is about structure
(the same partitioning scales on free-threaded builds / process pools), not
guaranteed speedup.

Runs standalone (the CI smoke job) or under pytest like the other benches::

    PYTHONPATH=../src python bench_e3_parallel.py --smoke
    PYTHONPATH=../src python -m pytest bench_e3_parallel.py -q

Artifacts: a table on stdout, an ``E3-JSON`` line, and
``benchmarks/artifacts/bench_e3_parallel.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time

from conftest import print_table

from repro.core import QueryService
from repro.data.sailors import random_sailors_database
from repro.engine import (
    ParallelBackend,
    clear_compiled_cache,
    execute_plan,
    lower,
    optimize,
)

REDUCED = os.environ.get("REPRO_BENCH_REDUCED", "") not in ("", "0")

#: (n_sailors, n_boats, n_reserves) scales, smallest → largest.
FULL_SIZES = [(200, 20, 2000), (400, 30, 4000), (800, 40, 8000)]
SMOKE_SIZES = [(100, 10, 1000), (200, 20, 2000)]

ARTIFACT_DIR = os.environ.get(
    "REPRO_BENCH_ARTIFACTS",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "artifacts"))

JOIN_CHAIN_SQL = (
    "SELECT DISTINCT S.sname FROM Sailors S, Boats B, Reserves R0, "
    "Reserves R1, Reserves R2 WHERE B.color = 'red' "
    "AND S.sid = R0.sid AND R0.bid = B.bid "
    "AND S.sid = R1.sid AND R1.bid = B.bid "
    "AND S.sid = R2.sid AND R2.bid = B.bid"
)

AGGREGATION_SQL = (
    "SELECT S.rating, COUNT(*) AS n, AVG(S.age) AS avg_age, MAX(S.age) AS oldest "
    "FROM Sailors S, Reserves R WHERE S.sid = R.sid GROUP BY S.rating"
)

WORKLOADS = [("join-chain", JOIN_CHAIN_SQL), ("aggregation", AGGREGATION_SQL)]

SERVING_THREADS = 4
SERVING_REQUESTS = 200


def _best_of(fn, reps: int = 5):
    result = fn()  # warm-up: key indexes, compiled closures, column stores
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _write_artifact(name: str, artifact: dict) -> None:
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")


def _backend_cells(sizes, parallel_backend):
    """parallel vs vectorized on the same optimized plans, per size."""
    cells = []
    largest = sizes[-1]
    for n_sailors, n_boats, n_reserves in sizes:
        db = random_sailors_database(n_sailors=n_sailors, n_boats=n_boats,
                                     n_reserves=n_reserves, seed=7)
        for workload, sql in WORKLOADS:
            plan = optimize(lower(sql, db.schema, "sql"), db)
            vec_rel, vec_s = _best_of(
                lambda: execute_plan(plan, db, backend="vectorized"))
            par_rel, par_s = _best_of(
                lambda: execute_plan(plan, db, backend=parallel_backend))
            assert vec_rel.bag_equal(par_rel), f"{workload}: backends disagree"
            cells.append({
                "workload": workload,
                "sailors": n_sailors, "boats": n_boats, "reserves": n_reserves,
                "answer_rows": len(vec_rel),
                "vectorized_ms": round(vec_s * 1000, 3),
                "parallel_ms": round(par_s * 1000, 3),
                "vectorized_qps": round(1.0 / vec_s, 1) if vec_s > 0 else None,
                "parallel_qps": round(1.0 / par_s, 1) if par_s > 0 else None,
                "speedup": round(vec_s / par_s, 2) if par_s > 0 else None,
                "largest_size": (n_sailors, n_boats, n_reserves) == largest,
            })
    return cells


def _serving_cell(sizes):
    """Concurrent QueryService throughput (warm cache, parallel backend)."""
    n_sailors, n_boats, n_reserves = sizes[-1]
    db = random_sailors_database(n_sailors=n_sailors, n_boats=n_boats,
                                 n_reserves=n_reserves, seed=11)
    service = QueryService(db, backend="parallel")
    handles = [service.prepare(sql) for _w, sql in WORKLOADS]
    for handle in handles:
        handle.answer()  # warm plan + result caches

    def storm() -> None:
        for i in range(SERVING_REQUESTS // SERVING_THREADS):
            handles[i % len(handles)].answer()

    threads = [threading.Thread(target=storm) for _ in range(SERVING_THREADS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    served = (SERVING_REQUESTS // SERVING_THREADS) * SERVING_THREADS
    info = service.cache_info()
    assert info["result_hits"] >= served - len(handles)
    return {
        "threads": SERVING_THREADS,
        "requests": served,
        "total_s": round(elapsed, 4),
        "requests_per_s": round(served / elapsed, 1) if elapsed > 0 else None,
        "cache": info,
    }


def run_experiment(smoke: bool) -> dict:
    clear_compiled_cache()
    sizes = SMOKE_SIZES if smoke else FULL_SIZES
    backend = ParallelBackend()  # fresh pool: the artifact names its width
    artifact = {
        "experiment": "E3-parallel-vs-vectorized",
        "reduced": smoke,
        "workers": backend.workers,
        "min_partition_rows": backend.min_partition_rows,
        "cells": _backend_cells(sizes, backend),
        "serving": _serving_cell(sizes),
    }
    _write_artifact("bench_e3_parallel.json", artifact)
    rows = [
        [cell["workload"], cell["reserves"], cell["answer_rows"],
         f"{cell['vectorized_ms']:.2f}", f"{cell['parallel_ms']:.2f}",
         f"{cell['speedup']:.2f}x"]
        for cell in artifact["cells"]
    ]
    print_table(
        f"E3: vectorized vs parallel backend ({backend.workers} workers, "
        "same optimized plan, steady state)",
        ["workload", "reserves", "answers", "vectorized ms", "parallel ms",
         "parallel/vectorized"],
        rows,
    )
    serving = artifact["serving"]
    print_table(
        "E3: QueryService warm serving under concurrency (parallel backend)",
        ["threads", "requests", "total s", "req/s"],
        [[serving["threads"], serving["requests"], serving["total_s"],
          serving["requests_per_s"]]],
    )
    print("E3-JSON " + json.dumps(artifact))
    return artifact


# -- pytest entry points -----------------------------------------------------

def test_e3_parallel_vs_vectorized_artifact(capsys):
    with capsys.disabled():
        artifact = run_experiment(smoke=REDUCED)
    assert artifact["cells"], "no cells measured"
    largest = [c for c in artifact["cells"] if c["largest_size"]]
    assert {c["workload"] for c in largest} == {w for w, _sql in WORKLOADS}
    assert artifact["serving"]["requests_per_s"] is not None


# -- standalone entry point --------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes for CI smoke runs")
    args = parser.parse_args(argv)
    run_experiment(smoke=args.smoke or REDUCED)
    return 0


if __name__ == "__main__":
    sys.exit(main())
