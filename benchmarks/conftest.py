"""Shared fixtures for the benchmark / experiment harness."""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.data import sailors_database  # noqa: E402


@pytest.fixture(scope="session")
def db():
    return sailors_database()


@pytest.fixture(scope="session")
def schema(db):
    return db.schema


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    """Print an experiment artifact the way the paper would tabulate it."""
    widths = [max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows
              else len(str(headers[i])) for i in range(len(headers))]
    print(f"\n=== {title} ===")
    print(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("-+-".join("-" * w for w in widths))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
