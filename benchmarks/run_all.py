#!/usr/bin/env python
"""Run every benchmark suite and emit unified ``BENCH_<suite>.json`` artifacts.

Each suite keeps its own detailed artifact (``bench_e*_*.json`` and the
``E*-JSON`` stdout lines), but nothing compared those across runs.  This
driver runs the suites — reduced sizes with ``--smoke`` — and normalizes
every measured cell into one shared record schema::

    {"suite": "e4", "workload": "join-chain", "size": 48000,
     "backend": "view", "wall_ms": 9.1, "speedup": 19.6}

written to ``benchmarks/artifacts/BENCH_<suite>.json``.  The companion
``compare_bench.py`` diffs those files against the committed baselines in
``benchmarks/baselines/`` and fails CI when a tracked speedup ratio
regresses — speedups, not wall-clock, so the gate is hardware-portable.

Usage::

    PYTHONPATH=../src python run_all.py --smoke
    PYTHONPATH=../src python run_all.py --suite e4
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
ARTIFACT_DIR = os.environ.get("REPRO_BENCH_ARTIFACTS",
                              os.path.join(HERE, "artifacts"))

#: Which per-cell field is the suite's headline wall-clock measurement, and
#: what to call the measured configuration.
_WALL_MS_KEYS = ("engine_ms", "process_ms", "sharded_ms", "kernel_ms",
                 "vectorized_ms", "parallel_ms", "warm_ms", "incremental_ms",
                 "semi_naive_ms", "serving_ms")
_BACKEND_LABELS = {
    "E1-join-heavy": "engine",
    "E1-catalog": "engine",
    "E1-recursive": "engine",
    "E2-row-vs-vectorized": "vectorized",
    "E2-cold-vs-warm": "warm-cache",
    "E3-parallel-vs-vectorized": "parallel",
    "E4-ivm-vs-recompute": "view",
    "E5-sharded-scatter-gather": "sharded",
    "E6-process-scatter-gather": "process",
    "K1-kernel-microbench": "kernel",
    "E9-async-serving": "server",
    "E10-sharded-ivm": "sharded-view",
}


def _normalize_cell(experiment: str, cell: dict) -> dict | None:
    """One suite cell → the shared record schema (None if unmeasurable)."""
    speedup = cell.get("speedup")
    wall_ms = next((cell[k] for k in _WALL_MS_KEYS if k in cell), None)
    if speedup is None or wall_ms is None:
        return None
    workload = cell.get("workload") or cell.get("query") \
        or (f"{cell['tables']}-table-chain" if "tables" in cell else None) \
        or experiment
    size = cell.get("clients") or cell.get("reserves") or cell.get("tables") \
        or cell.get("nodes") or cell.get("rounds") or cell.get("answer_rows") \
        or 0
    return {
        "workload": str(workload),
        "size": int(size),
        "backend": _BACKEND_LABELS.get(experiment, "engine"),
        "wall_ms": float(wall_ms),
        "speedup": float(speedup),
    }


def _records_from_artifacts(artifacts: list[dict]) -> list[dict]:
    records = []
    for artifact in artifacts:
        experiment = artifact.get("experiment", "unknown")
        for cell in artifact.get("cells", []):
            record = _normalize_cell(experiment, cell)
            if record is not None:
                records.append(record)
    return records


def _pytest_json_lines(script: str, marker: str, smoke: bool) -> list[dict]:
    """Run a pytest-style suite, harvesting its ``E*-JSON`` stdout lines."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(HERE, "..", "src") \
        + os.pathsep + env.get("PYTHONPATH", "")
    if smoke:
        env["REPRO_BENCH_REDUCED"] = "1"
    result = subprocess.run(
        [sys.executable, "-m", "pytest", script, "-q", "--benchmark-disable",
         "-p", "no:cacheprovider"],
        cwd=HERE, env=env, capture_output=True, text=True)
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if result.returncode != 0:
        raise SystemExit(f"{script} failed with exit code {result.returncode}")
    artifacts = []
    for line in result.stdout.splitlines():
        if line.startswith(marker):
            artifacts.append(json.loads(line[len(marker):].strip()))
    return artifacts


def _run_e1(smoke: bool) -> list[dict]:
    return _pytest_json_lines("bench_e1_engine.py", "E1-JSON", smoke)


def _run_e2(smoke: bool) -> list[dict]:
    return _pytest_json_lines("bench_e2_vectorized.py", "E2-JSON", smoke)


def _run_e3(smoke: bool) -> list[dict]:
    import bench_e3_parallel

    return [bench_e3_parallel.run_experiment(smoke=smoke)]


def _run_e4(smoke: bool) -> list[dict]:
    import bench_e4_ivm

    return [bench_e4_ivm.run_experiment(smoke=smoke)]


def _run_e5(smoke: bool) -> list[dict]:
    import bench_e5_sharded

    return [bench_e5_sharded.run_experiment(smoke=smoke)]


def _run_e6(smoke: bool) -> list[dict]:
    import bench_e6_process

    artifact = bench_e6_process.run_experiment(smoke=smoke)
    failures = bench_e6_process.check_gates(artifact)
    if failures:
        raise SystemExit("E6 gate failed:\n" + "\n".join(failures))
    return [artifact]


def _run_e9(smoke: bool) -> list[dict]:
    import bench_e9_serving

    artifact = bench_e9_serving.run_experiment(smoke=smoke)
    failures = bench_e9_serving.check_gates(artifact)
    if failures:
        raise SystemExit("E9 gate failed:\n" + "\n".join(failures))
    return [artifact]


def _run_e10(smoke: bool) -> list[dict]:
    import bench_e10_sharded_ivm

    artifact = bench_e10_sharded_ivm.run_experiment(smoke=smoke)
    failures = bench_e10_sharded_ivm.check_gates(artifact)
    if failures:
        raise SystemExit("E10 gate failed:\n" + "\n".join(failures))
    return [artifact]


def _run_k1(smoke: bool) -> list[dict]:
    import bench_k1_kernels

    artifact = bench_k1_kernels.run_experiment(smoke=smoke)
    failures = bench_k1_kernels.check_gates(artifact)
    if failures:
        raise SystemExit("K1 gate failed:\n" + "\n".join(failures))
    return [artifact]


SUITES = {
    "e1": _run_e1,
    "e2": _run_e2,
    "e3": _run_e3,
    "e4": _run_e4,
    "e5": _run_e5,
    "e6": _run_e6,
    "e9": _run_e9,
    "e10": _run_e10,
    "k1": _run_k1,
}


def run_suite(suite: str, smoke: bool) -> dict:
    artifacts = SUITES[suite](smoke)
    unified = {
        "suite": suite,
        "reduced": smoke,
        "schema": ["suite", "workload", "size", "backend", "wall_ms",
                   "speedup"],
        "records": [dict(record, suite=suite)
                    for record in _records_from_artifacts(artifacts)],
    }
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    path = os.path.join(ARTIFACT_DIR, f"BENCH_{suite}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(unified, handle, indent=2)
        handle.write("\n")
    print(f"[run_all] {path}: {len(unified['records'])} record(s)")
    return unified


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes (the CI gate configuration)")
    parser.add_argument("--suite", action="append", choices=sorted(SUITES),
                        help="run only the given suite(s); default: all")
    args = parser.parse_args(argv)
    for suite in (args.suite or sorted(SUITES)):
        run_suite(suite, args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
