"""Experiment T7 (Part 6): diagram sizes and the "three abuses of the line".

The tutorial's closing lesson concerns overloaded visual vocabulary: lines
that mean identity in one place, membership in another, and mere reading
order in a third.  This harness measures, per formalism and per canonical
query, the element counts and how many distinct jobs lines perform.  The
shapes to reproduce: QueryVis uses lines for two jobs (joins + reading-order
arrows) where Relational Diagrams use them for one; syntax trees (Visual SQL)
use strictly more nodes than pattern-based diagrams for the same query.
"""

from __future__ import annotations

from conftest import print_table

from repro.core.metrics import measure
from repro.diagrams import build_diagram
from repro.queries import CANONICAL_QUERIES

FORMALISMS = ["queryvis", "relational_diagrams", "peirce_beta", "string_diagrams",
              "conceptual", "sqlvis", "visual_sql"]


def _diagrams_for(query, schema):
    out = {}
    for key in FORMALISMS:
        try:
            out[key] = build_diagram(key, query.sql, schema)
        except Exception:
            continue
    return out


def test_t7_diagram_size_artifact(schema, capsys):
    rows = []
    queryvis_roles = None
    relational_roles = None
    for query in CANONICAL_QUERIES:
        for key, diagram in _diagrams_for(query, schema).items():
            metric = measure(diagram)
            counts = metric.counts
            rows.append([query.id, key, counts["nodes"], counts["attribute_rows"],
                         counts["edges"], counts["groups"], counts["max_nesting_depth"],
                         metric.total_ink, metric.distinct_line_roles])
            if query.id == "Q4" and key == "queryvis":
                queryvis_roles = metric.distinct_line_roles
            if query.id == "Q4" and key == "relational_diagrams":
                relational_roles = metric.distinct_line_roles

    # The "abuse of the line" shape: QueryVis needs one more line job (reading
    # order) than Relational Diagrams for the same query.
    assert queryvis_roles is not None and relational_roles is not None
    assert queryvis_roles == relational_roles + 1

    with capsys.disabled():
        print_table("T7: diagram element counts per formalism",
                    ["query", "formalism", "nodes", "rows", "edges", "groups",
                     "depth", "ink", "line jobs"], rows)


def test_t7_pattern_beats_syntax_on_size(schema):
    """Pattern-based diagrams stay smaller than full syntax trees for nested queries."""
    query = CANONICAL_QUERIES[3]  # Q4, doubly nested
    relational = build_diagram("relational_diagrams", query.sql, schema)
    visual_sql = build_diagram("visual_sql", query.sql, schema)
    assert len(relational.nodes) < len(visual_sql.nodes)


def test_t7_measurement_latency(benchmark, schema):
    query = CANONICAL_QUERIES[3]

    def build_and_measure():
        return [measure(d) for d in _diagrams_for(query, schema).values()]

    metrics = benchmark(build_and_measure)
    assert len(metrics) >= 5
