"""Experiment T4 (Part 4): syllogistic reasoning with Euler/Venn semantics.

The early diagrammatic systems were built for syllogisms.  The classical
results are sharp and make a good correctness anchor for the region-model
semantics shared by the Euler and Venn modules: of the 256 syllogistic forms,
exactly 15 are valid under modern semantics and 24 under existential import,
and Venn-diagram entailment agrees with the region semantics on every form.
"""

from __future__ import annotations

from conftest import print_table

from repro.diagrams.syllogism import (
    NAMED_SYLLOGISMS,
    Syllogism,
    all_syllogisms,
    valid_syllogisms,
)
from repro.diagrams.venn import venn_syllogism_test


def test_t4_syllogism_counts_artifact(capsys):
    modern = valid_syllogisms()
    traditional = valid_syllogisms(existential_import=True)
    assert len(all_syllogisms()) == 256
    assert len(modern) == 15
    assert len(traditional) == 24
    assert {(s.mood, s.figure) for s in modern} <= {(s.mood, s.figure) for s in traditional}

    rows = []
    for syllogism in traditional:
        name = NAMED_SYLLOGISMS.get((syllogism.mood, syllogism.figure), "")
        unconditional = syllogism in modern or any(
            s.mood == syllogism.mood and s.figure == syllogism.figure for s in modern)
        rows.append([syllogism.name(), name or "(conditionally valid)",
                     "yes" if unconditional else "needs existential import"])
    with capsys.disabled():
        print_table("T4: valid syllogisms (15 modern / 24 with existential import)",
                    ["form", "traditional name", "valid unconditionally"], rows)


def test_t4_venn_agrees_with_region_semantics():
    """Reading validity off the Venn diagram matches the region-model answer."""
    sample = [Syllogism(mood, figure)
              for mood in ("AAA", "AAI", "EAE", "AII", "OAO", "IAI", "EIO", "AEE", "III", "OOO")
              for figure in (1, 2, 3, 4)]
    for syllogism in sample:
        major, minor, conclusion = syllogism.propositions()
        assert venn_syllogism_test(major, minor, conclusion) == syllogism.is_valid()


def test_t4_full_enumeration_latency(benchmark):
    counts = benchmark(lambda: (len(valid_syllogisms()),
                                len(valid_syllogisms(existential_import=True))))
    assert counts == (15, 24)
