"""Pipeline-layer serving features: plan cache, result cache, backends, fallback.

The pipeline keys its plan cache on a query fingerprint and its result cache
on (fingerprint, database version); `Relation.add` bumps the version, so
writes invalidate results but not plans.  The engine→interpreter fallback
path is pinned here too: structured warning, interpreter answers, timings.
"""

from __future__ import annotations

import pytest

from repro.core import QueryVisualizationPipeline, answer_any, fingerprint_query
from repro.data.sailors import sailors_database
from repro.queries import CANONICAL_QUERIES

JOIN_SQL = "SELECT DISTINCT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid"


@pytest.fixture
def pipeline():
    return QueryVisualizationPipeline(sailors_database())


class TestFingerprint:
    def test_strips_outer_whitespace_only(self):
        a = fingerprint_query("  SELECT S.sname FROM Sailors S\n", "sql")
        b = fingerprint_query("SELECT S.sname FROM Sailors S", "sql")
        c = fingerprint_query("SELECT S.sid FROM Sailors S", "sql")
        assert a == b
        assert a != c

    def test_interior_whitespace_is_significant(self):
        # 'a  b' and 'a b' are different string literals; collapsing interior
        # whitespace would alias two semantically different queries.
        a = fingerprint_query("SELECT S.sname FROM Sailors S WHERE S.sname = 'a  b'",
                              "sql")
        b = fingerprint_query("SELECT S.sname FROM Sailors S WHERE S.sname = 'a b'",
                              "sql")
        assert a != b

    def test_language_is_part_of_the_key(self):
        assert fingerprint_query("Sailors", "ra") != fingerprint_query("Sailors", "sql")


class TestResultCache:
    def test_second_run_hits_the_result_cache(self, pipeline):
        first = pipeline.run(JOIN_SQL)
        assert pipeline.cache_info()["result_misses"] == 1
        second = pipeline.run(JOIN_SQL)
        info = pipeline.cache_info()
        assert info["result_hits"] == 1
        assert first.answers is not None and second.answers is not None
        assert first.answers.bag_equal(second.answers)
        assert second.used_engine  # the cached plan is still reported

    def test_write_invalidates_results_but_keeps_plans(self, pipeline):
        before = pipeline.answer(JOIN_SQL)
        pipeline.db.relation("Reserves").add((29, 101, "2025-05-05"))
        after = pipeline.answer(JOIN_SQL)
        info = pipeline.cache_info()
        assert info["result_misses"] == 2  # stale version missed
        assert info["plan_hits"] == 1      # but the plan was reused
        assert after.row_set() - before.row_set() == {("Brutus",)}

    def test_result_cache_is_bounded_lru(self):
        pipeline = QueryVisualizationPipeline(
            sailors_database(), result_cache_size=2)
        queries = [f"SELECT S.sname FROM Sailors S WHERE S.rating > {n}"
                   for n in (1, 2, 3)]
        for sql in queries:
            pipeline.answer(sql)
        assert pipeline.cache_info()["result_entries"] == 2
        pipeline.answer(queries[0])  # evicted: misses again
        assert pipeline.cache_info()["result_misses"] == 4

    def test_caches_can_be_disabled(self):
        pipeline = QueryVisualizationPipeline(
            sailors_database(), plan_cache_size=0, result_cache_size=0)
        pipeline.answer(JOIN_SQL)
        pipeline.answer(JOIN_SQL)
        info = pipeline.cache_info()
        assert info["result_hits"] == 0
        assert info["plan_hits"] == 0
        assert info["result_entries"] == info["plan_entries"] == 0

    def test_clear_caches_resets_everything(self, pipeline):
        pipeline.answer(JOIN_SQL)
        pipeline.clear_caches()
        info = pipeline.cache_info()
        assert info == {"plan_entries": 0, "result_entries": 0,
                        "plan_hits": 0, "plan_misses": 0,
                        "result_hits": 0, "result_misses": 0}

    def test_replacing_a_relation_with_fewer_rows_still_invalidates(self, pipeline):
        # Database.version must be monotonic: swapping a relation for a
        # smaller one may not reproduce an earlier version value, or the
        # result cache would serve the old relation's answers.
        from repro.data.relation import Relation

        sql = "SELECT S.sname FROM Sailors S"
        before = pipeline.answer(sql)
        sailors = pipeline.db.relation("Sailors")
        shrunk = Relation(sailors.schema, sailors.rows()[:-1], validate=False)
        pipeline.db.add_relation(shrunk)
        after = pipeline.answer(sql)
        assert len(after) == len(before) - 1

    def test_schema_change_invalidates_cached_plans(self, pipeline):
        # add_relation can change column layout under the same name; plans
        # resolve columns positionally, so they must not outlive the schema.
        from repro.data.relation import Relation, relation_from_rows

        sql = "SELECT T.b FROM T"
        pipeline.db.add_relation(relation_from_rows(
            "T", [("a", "int"), ("b", "str")], [(1, "x")]))
        assert pipeline.answer(sql).rows() == [("x",)]
        swapped = relation_from_rows("T", [("b", "str"), ("a", "int")],
                                     [("y", 2)])
        pipeline.db.add_relation(swapped)
        assert pipeline.answer(sql).rows() == [("y",)]

    def test_datalog_results_are_cached_too(self, pipeline):
        program = "ans(N) :- sailors(S, N, R, A), reserves(S, B, D)."
        first = pipeline.answer(program, language="datalog")
        second = pipeline.answer(program, language="datalog")
        assert first.bag_equal(second)
        assert pipeline.cache_info()["result_hits"] == 1

    def test_cached_answers_cannot_be_poisoned_by_mutation(self, pipeline):
        # Regression: the result cache used to hand out the cached Relation
        # by reference, so one caller's .add() silently changed what every
        # later request (and `run`'s .answers) saw.  Cached relations are
        # frozen now: the mutation raises, and a re-query still serves the
        # original rows.
        from repro.data.relation import RelationError

        first = pipeline.answer(JOIN_SQL)
        baseline = first.row_multiset()
        with pytest.raises(RelationError):
            first.add(("Mallory",))
        second = pipeline.answer(JOIN_SQL)
        assert pipeline.cache_info()["result_hits"] == 1
        assert second.row_multiset() == baseline
        assert ("Mallory",) not in second.row_set()

    def test_mutable_copy_of_cached_answers(self, pipeline):
        answers = pipeline.answer(JOIN_SQL)
        copy = answers.copy()
        copy.add(("Mallory",))  # private copy: allowed, cache untouched
        assert ("Mallory",) not in pipeline.answer(JOIN_SQL).row_set()

    def test_run_freezes_cached_answers_too(self, pipeline):
        from repro.data.relation import RelationError

        result = pipeline.run(JOIN_SQL)
        with pytest.raises(RelationError):
            result.answers.add(("Mallory",))

    def test_cache_off_pipelines_return_mutable_answers(self):
        # With the result cache disabled nothing is shared, so the legacy
        # mutate-my-answers behavior is preserved.
        pipeline = QueryVisualizationPipeline(
            sailors_database(), result_cache_size=0)
        answers = pipeline.answer(JOIN_SQL)
        answers.add(("Mallory",))
        assert ("Mallory",) not in pipeline.answer(JOIN_SQL).row_set()


class TestLRUCacheSentinel:
    """Regression: ``_LRUCache.get`` used ``None`` as its miss marker, so a
    legitimately-``None``/falsy cached value was re-missed forever (and
    miscounted the hit/miss stats).  A dedicated sentinel fixes both."""

    def test_none_and_falsy_values_are_cache_hits(self):
        from repro.core.pipeline import _LRUCache

        miss = object()
        cache = _LRUCache(4)
        cache.put("none", None)
        cache.put("empty", ())
        cache.put("zero", 0)
        assert cache.get("none", miss) is None
        assert cache.get("empty", miss) == ()
        assert cache.get("zero", miss) == 0
        assert cache.get("absent", miss) is miss
        assert len(cache) == 3

    def test_none_values_count_as_lru_recency(self):
        from repro.core.pipeline import _LRUCache

        miss = object()
        cache = _LRUCache(2)
        cache.put("a", None)
        cache.put("b", 1)
        assert cache.get("a", miss) is None  # refreshes recency despite None
        cache.put("c", 2)  # evicts "b", not the just-touched "a"
        assert cache.get("a", miss) is None
        assert cache.get("b", miss) is miss


class TestAnswerFallbackWarnings:
    """Regression: ``answer()`` swallowed the engine-fallback reason that
    ``run()`` surfaces; the serving path now reports it too."""

    FALLBACK_SQL = ("SELECT S.sname FROM Sailors S LEFT JOIN Reserves R "
                    "ON S.sid = R.sid WHERE R.sid IS NULL")

    def test_answer_surfaces_the_fallback_reason(self, pipeline):
        warnings: list[str] = []
        pipeline.answer(self.FALLBACK_SQL, warnings=warnings)
        assert len(warnings) == 1
        assert warnings[0].startswith("engine fallback to the SQL interpreter:")
        assert warnings[0].removeprefix(
            "engine fallback to the SQL interpreter:").strip()

    def test_answer_logs_the_fallback_reason(self, pipeline, caplog):
        import logging

        with caplog.at_level(logging.INFO, logger="repro.core.pipeline"):
            pipeline.answer(self.FALLBACK_SQL)
        assert any("engine fallback to the SQL interpreter" in record.message
                   for record in caplog.records)

    def test_engine_path_leaves_warnings_empty(self, pipeline):
        warnings: list[str] = []
        pipeline.answer(JOIN_SQL, warnings=warnings)
        assert warnings == []


class TestAnswerServingPath:
    def test_answer_matches_run_for_all_languages(self, pipeline):
        for query in CANONICAL_QUERIES[:2]:
            for key, language in (("SQL", "sql"), ("RA", "ra"), ("TRC", "trc"),
                                  ("DRC", "drc"), ("Datalog", "datalog")):
                text = query.languages()[key]
                served = pipeline.answer(text, language=language)
                full = pipeline.run(text, language=language)
                assert full.answers is not None
                assert served.bag_equal(full.answers)

    def test_answer_autodetects_language(self, pipeline):
        names = {row[0] for row in
                 pipeline.answer("project[sname](Sailors)").distinct_rows()}
        assert "Dustin" in names

    def test_answer_falls_back_outside_the_fragment(self, pipeline):
        sql = ("SELECT S.sname FROM Sailors S LEFT JOIN Reserves R "
               "ON S.sid = R.sid WHERE R.sid IS NULL")
        from repro.sql.evaluate import evaluate_sql

        assert pipeline.answer(sql).bag_equal(evaluate_sql(sql, pipeline.db))

    def test_answer_rejects_unknown_language(self, pipeline):
        with pytest.raises(ValueError):
            pipeline.answer("SELECT 1", language="cypher")

    def test_answer_any_uses_the_serving_path(self):
        result = answer_any(JOIN_SQL, sailors_database())
        assert {row[0] for row in result.distinct_rows()} >= {"Dustin"}


class TestBackendSelection:
    @pytest.mark.parametrize("backend", ["row", "vectorized"])
    def test_both_backends_serve_the_catalog(self, backend):
        pipeline = QueryVisualizationPipeline(sailors_database(), backend=backend)
        for query in CANONICAL_QUERIES:
            result = pipeline.run(query.sql)
            assert result.answers is not None
            assert {row[0] for row in result.answers.distinct_rows()} == set(
                query.expected_names), f"{query.id} on {backend}"

    def test_unknown_backend_rejected_eagerly(self):
        from repro.engine import PlanError

        with pytest.raises(PlanError):
            QueryVisualizationPipeline(sailors_database(), backend="quantum")


class TestInterpreterFallback:
    """Satellite coverage for ``QueryVisualizationPipeline._evaluate``."""

    FALLBACK_SQL = ("SELECT S.sname FROM Sailors S LEFT JOIN Reserves R "
                    "ON S.sid = R.sid WHERE R.sid IS NULL")

    def test_structured_warning_is_emitted(self, pipeline):
        result = pipeline.run(self.FALLBACK_SQL, formalism="sqlvis")
        assert not result.used_engine
        fallback_warnings = [w for w in result.warnings
                             if w.startswith("engine fallback to the SQL interpreter:")]
        assert len(fallback_warnings) == 1
        # The warning names the concrete reason, not just the fact
        assert fallback_warnings[0].removeprefix(
            "engine fallback to the SQL interpreter:").strip()

    def test_interpreter_answer_is_returned(self, pipeline):
        from repro.sql.evaluate import evaluate_sql

        result = pipeline.run(self.FALLBACK_SQL, formalism="sqlvis")
        assert result.answers is not None
        assert result.answers.bag_equal(evaluate_sql(self.FALLBACK_SQL, pipeline.db))

    def test_timings_record_evaluate_but_not_failed_engine_stages(self, pipeline):
        result = pipeline.run(self.FALLBACK_SQL, formalism="sqlvis")
        assert "evaluate" in result.timings
        assert result.timings["evaluate"] >= 0.0
        for stage in ("lower", "optimize", "execute"):
            assert stage not in result.timings, (
                f"{stage} belongs to the failed engine attempt and must be dropped"
            )

    def test_engine_path_still_records_all_stages(self, pipeline):
        result = pipeline.run(CANONICAL_QUERIES[0].sql)
        assert result.used_engine
        assert {"parse", "lower", "optimize", "execute", "evaluate"} <= set(
            result.timings)
