"""The columnar executor stack: storage, vectorized backend, statistics.

Three layers under differential test:

* **storage** — ``ColumnStore`` / ``Relation.version`` / positional
  ``key_index`` caches stay consistent under interleaved mutation;
* **executor** — the ``"vectorized"`` backend is bag-equal to the ``"row"``
  reference backend and to all five reference interpreters over the whole
  canonical catalog, with and without the optimizer;
* **optimizer** — table statistics drive selectivity and join-order
  decisions (and the delta-first semi-join reduction of the Datalog path).
"""

from __future__ import annotations

import pytest

from repro.data.database import Database
from repro.data.relation import ColumnStore, relation_from_rows
from repro.data.sailors import random_sailors_database, sailors_database
from repro.engine import (
    DistinctP,
    FilterP,
    JoinP,
    ProjectP,
    ScanP,
    StatsCatalog,
    clear_compiled_cache,
    collect_table_stats,
    execute_plan,
    get_backend,
    lower,
    optimize,
    run_query,
)
from repro.engine.stats import DELTA_ESTIMATE
from repro.queries import CANONICAL_QUERIES, LANGUAGES
from repro.translate.equivalence import answer_relation, standard_database_battery

ALL_CELLS = [
    pytest.param(query, language, id=f"{query.id}-{language}")
    for query in CANONICAL_QUERIES
    for language in LANGUAGES
]

PLAN_CELLS = [p for p in ALL_CELLS if p.values[1].lower() != "datalog"]


class TestDifferentialVectorized:
    """Vectorized backend == row backend == reference, whole catalog."""

    @pytest.mark.parametrize("query,language", PLAN_CELLS)
    def test_backends_agree_optimized_and_not(self, db, query, language):
        text = query.languages()[language]
        for use_optimizer in (True, False):
            plan = lower(text, db.schema, language.lower())
            if use_optimizer:
                plan = optimize(plan, db)
            row = execute_plan(plan, db, backend="row")
            vectorized = execute_plan(plan, db, backend="vectorized")
            assert row.bag_equal(vectorized), (
                f"{query.id}/{language} optimizer={use_optimizer}: "
                f"row {sorted(row.rows())} != vectorized {sorted(vectorized.rows())}"
            )

    @pytest.mark.parametrize("query,language", ALL_CELLS)
    def test_vectorized_matches_reference(self, db, query, language):
        text = query.languages()[language]
        engine = run_query(text, db, language.lower(), backend="vectorized")
        reference = answer_relation(text, db)
        assert engine.bag_equal(reference), f"{query.id}/{language} disagrees"

    @pytest.mark.parametrize("query,language", ALL_CELLS)
    def test_vectorized_matches_reference_on_random_instances(self, query, language):
        text = query.languages()[language]
        for instance in standard_database_battery(extra_random=2, rows=8):
            engine = run_query(text, instance, language.lower(),
                               backend="vectorized")
            reference = answer_relation(text, instance)
            assert engine.bag_equal(reference), f"{query.id}/{language} disagrees"

    def test_backends_agree_on_extra_sql_shapes(self, db):
        shapes = [
            "SELECT B.color, COUNT(*) AS n FROM Boats B GROUP BY B.color",
            "SELECT S.sname FROM Sailors S WHERE S.rating > 7 ORDER BY S.sname LIMIT 3",
            "SELECT S.sid FROM Sailors S EXCEPT SELECT R.sid FROM Reserves R",
            "SELECT R.sid FROM Reserves R UNION ALL SELECT R2.sid FROM Reserves R2",
            "SELECT MAX(S.age) AS m, MIN(S.rating) AS lo FROM Sailors S",
            "SELECT AVG(S.age) AS a FROM Sailors S WHERE S.rating > 100",
            "SELECT S.sname FROM Sailors S WHERE S.sname LIKE 'H%'",
            "SELECT S.sname FROM Sailors S WHERE S.rating IN (9, 10)",
        ]
        for sql in shapes:
            row = run_query(sql, db, "sql", backend="row")
            vectorized = run_query(sql, db, "sql", backend="vectorized")
            assert row.bag_equal(vectorized), sql

    def test_backend_order_matches_row_backend_exactly(self, db):
        # Not just bag-equal: the vectorized operators emit rows in the same
        # order as the row executor, so LIMIT without ORDER BY agrees too.
        sql = ("SELECT S.sname, B.color FROM Sailors S, Reserves R, Boats B "
               "WHERE S.sid = R.sid AND R.bid = B.bid")
        plan = optimize(lower(sql, db.schema, "sql"), db)
        assert get_backend("row").execute(plan, db) \
            == get_backend("vectorized").execute(plan, db)

    def test_unknown_backend_rejected(self, db):
        from repro.engine import PlanError

        with pytest.raises(PlanError):
            get_backend("gpu")

    def test_error_raising_conjunct_behaves_like_row_backend(self, db):
        # Conjuncts are evaluated in the conjunction's order on both
        # backends: the int+str arithmetic raises before the (row-emptying)
        # fast comparison may hide it.
        sql = ("SELECT S.sname FROM Sailors S "
               "WHERE S.age + S.sname > 0 AND S.sid < 0")
        plan = lower(sql, db.schema, "sql")
        with pytest.raises(TypeError):
            execute_plan(plan, db, backend="row")
        with pytest.raises(TypeError):
            execute_plan(plan, db, backend="vectorized")


class TestColumnStore:
    def test_lazy_materialization_and_incremental_append(self):
        rel = relation_from_rows("R", [("a", "int"), ("b", "str")],
                                 [(1, "x"), (2, "y")])
        store = rel.column_store()
        assert store.arrays == ([1, 2], ["x", "y"])
        rel.add((3, "z"))  # store already built: maintained incrementally
        assert store.arrays == ([1, 2, 3], ["x", "y", "z"])
        assert rel.column_store() is store
        assert store.to_rows() == rel.rows()
        assert store.row(1) == (2, "y")

    def test_from_rows_empty(self):
        store = ColumnStore.from_rows(("a", "b"), [])
        assert len(store) == 0
        assert store.to_rows() == []

    def test_column_uses_store_when_built(self):
        rel = relation_from_rows("R", [("a", "int")], [(1,), (2,)])
        assert rel.column("a") == [1, 2]
        rel.column_store()
        rel.add((3,))
        assert rel.column("a") == [1, 2, 3]


class TestVersioning:
    def test_version_bumps_once_per_add(self):
        rel = relation_from_rows("R", [("a", "int")], [(1,), (2,)])
        assert rel.version == 2
        rel.add((3,))
        assert rel.version == 3

    def test_database_version_tracks_rows_and_structure(self):
        db = Database([relation_from_rows("R", [("a", "int")], [(1,)])])
        before = db.version
        db.relation("R").add((2,))
        assert db.version == before + 1
        db.add_relation(relation_from_rows("S", [("b", "int")], []))
        assert db.version > before + 1
        grew = db.version
        db.drop_relation("S")
        assert db.version > grew  # dropping is a change, never a rollback

    def test_interleaved_add_and_index_on(self):
        rel = relation_from_rows("R", [("a", "int"), ("b", "str")],
                                 [(1, "x"), (2, "y")])
        index = rel.index_on("a")
        rel.add((1, "z"))
        assert [row[1] for row in index[1]] == ["x", "z"]
        rel.add((3, "w"))
        assert rel.index_on("a")[3] == [(3, "w")]
        # distinct caches stay exact across the same interleaving
        assert rel.distinct_rows() == [(1, "x"), (2, "y"), (1, "z"), (3, "w")]
        rel.add((1, "x"))  # duplicate: bag grows, set view does not
        assert rel.cardinality() == 5
        assert rel.cardinality(distinct=True) == 4
        assert (1, "x") in rel

    def test_key_index_maintained_across_adds(self):
        rel = relation_from_rows("R", [("a", "int"), ("b", "int")],
                                 [(1, 10), (2, 20), (1, 30)])
        index = rel.key_index((0,))
        assert index == {1: [0, 2], 2: [1]}
        assert rel.key_index((0,)) is index  # cached while unchanged
        rel.add((2, 40))
        fresh = rel.key_index((0,))
        # Appends maintain the cached index in place (O(1) per add) instead
        # of invalidating it — incremental view refresh depends on this.
        assert fresh is index
        assert fresh[2] == [1, 3]
        rel.add_rows([(3, 50), (1, 60)])
        assert rel.key_index((0,)) is index
        assert index[3] == [4] and index[1] == [0, 2, 5]
        pair = rel.key_index((0, 1))
        assert pair[(1, 30)] == [2]

    def test_key_index_null_handling(self):
        rel = relation_from_rows("R", [("a", "int")], [(1,), (None,), (1,)])
        assert None not in rel.key_index((0,), skip_nulls=True)
        assert rel.key_index((0,), skip_nulls=False)[None] == [1]


class TestCompiledClosureCache:
    def test_same_plan_executed_twice_compiles_each_expression_once(self, db):
        import repro.engine.execute as execute_module

        sql = ("SELECT S.sname, S.age + 1 AS next_age FROM Sailors S, Reserves R "
               "WHERE S.sid = R.sid AND S.rating > 3 AND S.age < S.rating * 9")
        plan = optimize(lower(sql, db.schema, "sql"), db)
        clear_compiled_cache()
        calls = []
        original = execute_module.compile_expr

        def counting(expr, columns):
            calls.append(expr)
            return original(expr, columns)

        execute_module.compile_expr = counting
        try:
            first = execute_plan(plan, db, backend="row")
            after_first = len(calls)
            assert after_first > 0, "the plan should compile something"
            second = execute_plan(plan, db, backend="row")
            assert len(calls) == after_first, (
                "re-executing the same Plan must reuse cached closures, "
                f"but {len(calls) - after_first} expression(s) were recompiled"
            )
        finally:
            execute_module.compile_expr = original
            clear_compiled_cache()
        assert first.bag_equal(second)

    def test_vectorized_backend_shares_the_closure_cache(self, db):
        import repro.engine.execute as execute_module

        sql = "SELECT S.sname FROM Sailors S WHERE S.age / 2 > S.rating"
        plan = optimize(lower(sql, db.schema, "sql"), db)
        clear_compiled_cache()
        execute_plan(plan, db, backend="vectorized")
        calls = []
        original = execute_module.compile_expr

        def counting(expr, columns):
            calls.append(expr)
            return original(expr, columns)

        execute_module.compile_expr = counting
        try:
            execute_plan(plan, db, backend="vectorized")
            assert not calls
        finally:
            execute_module.compile_expr = original
            clear_compiled_cache()


class TestStats:
    def test_collect_table_stats_profiles_columns(self):
        db = sailors_database()
        stats = collect_table_stats(db.relation("Sailors"))
        assert stats.row_count == len(db.relation("Sailors"))
        sid = stats.columns[0]
        assert sid.distinct == stats.row_count  # sids are unique
        assert sid.null_count == 0
        rating = stats.columns[2]
        assert rating.min_value is not None and rating.max_value is not None
        assert 1 <= rating.min_value <= rating.max_value <= 10
        sname = stats.columns[1]
        assert sname.min_value is None  # strings carry no numeric range

    def test_catalog_caches_until_version_changes(self):
        db = sailors_database()
        catalog = StatsCatalog(db)
        first = catalog.table("Sailors")
        assert catalog.table("Sailors") is first
        db.relation("Sailors").add((99, "Zed", 5, 30.0))
        second = catalog.table("Sailors")
        assert second is not first
        assert second.row_count == first.row_count + 1
        assert catalog.table("NoSuchTable") is None

    def test_equality_selectivity_uses_distinct_counts(self):
        db = sailors_database()
        catalog = StatsCatalog(db)
        boats = ScanP("Boats", ("bid", "bname", "color"))
        from repro.expr.ast import Col, Comparison, Const

        filtered = FilterP(boats, Comparison(Col("color"), "=", Const("red")))
        colors = catalog.table("Boats").columns[2].distinct
        assert catalog.estimate(filtered) == pytest.approx(
            len(db.relation("Boats")) / colors)

    def test_range_selectivity_interpolates_min_max(self):
        rel = relation_from_rows("T", [("v", "int")], [(i,) for i in range(100)])
        db = Database([rel])
        catalog = StatsCatalog(db)
        from repro.expr.ast import Col, Comparison, Const

        scan = ScanP("T", ("v",))
        low = catalog.estimate(FilterP(scan, Comparison(Col("v"), ">", Const(90))))
        high = catalog.estimate(FilterP(scan, Comparison(Col("v"), ">", Const(10))))
        assert low < high  # a tighter range keeps fewer rows
        assert low == pytest.approx(100 * (1 - 90 / 99), rel=0.1)

    def test_join_estimate_divides_by_key_distincts(self):
        db = sailors_database()
        catalog = StatsCatalog(db)
        join = JoinP(ScanP("Sailors", ("sid", "sname", "rating", "age")),
                     ScanP("Reserves", ("rsid", "bid", "day")),
                     "inner", left_keys=("sid",), right_keys=("rsid",))
        sailors = len(db.relation("Sailors"))
        reserves = len(db.relation("Reserves"))
        estimate = catalog.estimate(join)
        assert estimate <= sailors * reserves / max(sailors, 1) + 1
        assert estimate >= 1.0

    def test_delta_relations_estimated_tiny(self):
        db = Database()
        catalog = StatsCatalog(db)
        assert catalog.estimate(ScanP("tc@delta", ("a", "b"))) == DELTA_ESTIMATE
        assert catalog.estimate(ScanP("mystery", ("a",))) > DELTA_ESTIMATE

    def test_cost_based_ordering_seeds_at_selective_filter(self):
        db = random_sailors_database(n_sailors=60, n_boats=4, n_reserves=240,
                                     seed=3)
        sql = ("SELECT DISTINCT S.sname FROM Reserves R, Sailors S, Boats B "
               "WHERE S.sid = R.sid AND R.bid = B.bid AND B.bid = 101")
        plan = optimize(lower(sql, db.schema, "sql"), db)
        joins = [n for n in plan.walk() if isinstance(n, JoinP)]
        assert joins
        # The unique-key equality on Boats is the most selective leaf; the
        # cost-based greedy order must start from it, so the deepest join of
        # the (left-deep) tree reads Boats — not the big Reserves table alone.
        seed_scans = {n.relation.lower() for n in joins[-1].walk()
                      if isinstance(n, ScanP)}
        assert "boats" in seed_scans
        result = execute_plan(plan, db, backend="vectorized")
        assert result.bag_equal(answer_relation(sql, db))

    def test_semi_naive_still_matches_naive_with_stats(self):
        from repro.datalog.evaluate import evaluate_datalog

        edges = [(i, i + 1) for i in range(1, 20)] + [(10, 2), (18, 5)]
        db = Database([relation_from_rows(
            "edge", [("src", "int"), ("dst", "int")], edges)])
        program = ("tc(X, Y) :- edge(X, Y).\n"
                   "tc(X, Z) :- tc(X, Y), edge(Y, Z).\n"
                   "ans(X, Y) :- tc(X, Y).")
        assert run_query(program, db, "datalog").bag_equal(
            evaluate_datalog(program, db))


class TestVectorizedPlanStructure:
    def test_hand_built_plan_on_vectorized_backend(self, db):
        from repro.expr.ast import Col, Comparison, Const

        plan = DistinctP(ProjectP(
            FilterP(ScanP("Boats", ("bid", "bname", "color")),
                    Comparison(Col("color"), "=", Const("red"))),
            (Col("bid"),),
            ("bid",),
        ))
        result = execute_plan(plan, db, backend="vectorized")
        assert {row[0] for row in result.rows()} == {102, 104}

    def test_scan_arity_mismatch_raises(self, db):
        from repro.engine import PlanError

        with pytest.raises(PlanError):
            execute_plan(ScanP("Boats", ("bid", "color")), db,
                         backend="vectorized")
