"""The multi-process backend: column pages, publisher, workers, lifecycle.

Five surfaces:

* the column-page codec (:meth:`ColumnStore.encode_pages` /
  :meth:`decode_pages`) — exact round-trip for every column shape,
  including ``None`` masks, ``bool`` vs ``int``, mixed-type columns, and
  integers beyond int64;
* :class:`SharedPagePublisher` — version-keyed republish-on-write, segment
  unlink on supersede/close, stale-segment reaping;
* the ``"process"`` backend — bag-equal to ``"vectorized"`` over the
  canonical catalog with real worker processes, point queries routed
  without touching the pool, recovery from killed workers;
* writers racing process readers across version bumps (segments republish,
  answers stay consistent);
* pool lifecycle — explicit ``close()`` on the parallel and process
  backends, the shared :mod:`repro.engine.lifecycle` registry, and a
  subprocess leg asserting the whole stack is clean under
  ``-W error::ResourceWarning``.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading

import pytest

from repro.data import ShardedDatabase, sailors_database
from repro.data.relation import ColumnStore, Relation, RelationError
from repro.data.schema import RelationSchema
from repro.data.sharded import (
    SEGMENT_PREFIX,
    SharedPagePublisher,
    attach_segment,
    detach_segment,
    reap_stale_segments,
)
from repro.core.sharded_service import ShardedQueryService
from repro.engine import get_backend, lower, optimize, execute_plan
from repro.engine.kernels import KernelExecutor, kernels_enabled
from repro.engine.parallel import ParallelBackend
from repro.engine.process import ProcessBackend, default_process_workers
from repro.queries import CANONICAL_QUERIES

#: One shared backend for the catalog differential: real worker processes,
#: forked once, reused by every cell (pool startup is the expensive part).
_CATALOG_BACKEND = ProcessBackend(n_shards=2, workers=2)


def _segments() -> set[str]:
    try:
        return {f for f in os.listdir("/dev/shm")
                if f.startswith(SEGMENT_PREFIX)}
    except OSError:  # pragma: no cover - non-Linux fallback
        return set()


# ---------------------------------------------------------------------------
# Column-page codec
# ---------------------------------------------------------------------------

class TestColumnPages:
    def _round_trip(self, names, arrays):
        store = ColumnStore(names, [list(a) for a in arrays])
        decoded = ColumnStore.decode_pages(store.encode_pages())
        assert list(decoded.names) == list(names)
        for want, got in zip(arrays, decoded.arrays):
            assert len(want) == len(got)
            for w, g in zip(want, got):
                # Exactness including type: 1 vs 1.0 vs True must survive.
                assert type(w) is type(g) or (w is None and g is None), (w, g)
                if isinstance(w, float) and w != w:  # NaN
                    assert g != g
                else:
                    assert w == g and repr(w) == repr(g), (w, g)
        return decoded

    def test_int_column(self):
        self._round_trip(["a"], [[0, -1, 2**62, -(2**62), 5]])

    def test_int_with_nulls(self):
        self._round_trip(["a"], [[1, None, 3, None]])

    def test_float_column_edge_values(self):
        self._round_trip(
            ["f"], [[1.5, float("inf"), float("-inf"), float("nan"),
                     -0.0, None]])

    def test_string_column(self):
        self._round_trip(["s"], [["", "abc", "naïve ünïcode", None, "x" * 500]])

    def test_bool_column_stays_bool(self):
        decoded = self._round_trip(["b"], [[True, False, None, True]])
        assert decoded.arrays[0][0] is True

    def test_all_null_column(self):
        self._round_trip(["n"], [[None, None, None]])

    def test_mixed_column_uses_pickle_fallback(self):
        self._round_trip(["m"], [[1, "two", 3.0, None, True]])

    def test_int_beyond_int64_uses_pickle_fallback(self):
        self._round_trip(["big"], [[2**70, -(2**100), 7]])

    def test_empty_store(self):
        decoded = self._round_trip(["a", "b"], [[], []])
        assert decoded.to_rows() == []

    def test_multi_column_round_trip(self):
        self._round_trip(
            ["i", "s", "f"],
            [[1, 2, None], ["x", None, "z"], [0.5, 1.5, 2.5]])

    def test_kernel_pages_are_retained(self):
        store = ColumnStore(["i", "f", "s", "m"],
                            [[1, 2, 3], [0.5, None, 2.5], ["a", "b", "c"],
                             [1, "two", None]])
        decoded = ColumnStore.decode_pages(store.encode_pages())
        # int, float, and dictionary-coded string columns keep raw page
        # views for the kernel layer; mixed pickle columns do not.
        assert set(decoded.pages) == {0, 1, 2}
        assert decoded.pages[0][0] == "q"
        assert decoded.pages[1][0] == "d"
        assert decoded.pages[2][0] == "D"
        # Pages carry the row count so the kernels can verify freshness.
        assert all(page[3] == 3 for page in decoded.pages.values())

    def test_garbage_buffer_rejected(self):
        with pytest.raises(RelationError):
            ColumnStore.decode_pages(b"not a page buffer")


# ---------------------------------------------------------------------------
# Publisher
# ---------------------------------------------------------------------------

_SCHEMA = RelationSchema("t", (("a", "int"), ("b", "string")))


class TestSharedPagePublisher:
    def test_attach_round_trip(self):
        rel = Relation(_SCHEMA, [(1, "x"), (2, None), (None, "z")])
        publisher = SharedPagePublisher()
        try:
            segment = publisher.publish("0/t", rel)
            attached, shm = attach_segment(segment)
            try:
                assert attached.rows() == rel.rows()
                assert attached.schema == _SCHEMA
                assert attached.version == rel.version == segment.version
            finally:
                del attached
                detach_segment(shm)
        finally:
            publisher.close()

    def test_unchanged_relation_reuses_the_segment(self):
        rel = Relation(_SCHEMA, [(1, "x")])
        publisher = SharedPagePublisher()
        try:
            first = publisher.publish("0/t", rel)
            assert publisher.publish("0/t", rel) is first
        finally:
            publisher.close()

    def test_version_bump_republishes_and_unlinks(self):
        rel = Relation(_SCHEMA, [(1, "x")])
        publisher = SharedPagePublisher()
        try:
            first = publisher.publish("0/t", rel)
            rel.add((2, "y"))
            second = publisher.publish("0/t", rel)
            assert second.name != first.name
            assert second.version > first.version
            live = _segments()
            assert second.name in live and first.name not in live
        finally:
            publisher.close()

    def test_close_unlinks_everything_and_is_idempotent(self):
        publisher = SharedPagePublisher()
        segment = publisher.publish("0/t", Relation(_SCHEMA, [(1, "x")]))
        assert segment.name in _segments()
        publisher.close()
        publisher.close()
        assert publisher.closed
        assert segment.name not in _segments()
        with pytest.raises(RuntimeError):
            publisher.publish("0/t", Relation(_SCHEMA, [(1, "x")]))

    def test_database_close_unlinks_published_segments(self, db):
        sharded = ShardedDatabase.from_database(db, 2)
        publisher = sharded.page_publisher()
        segment = publisher.publish("0/sailors",
                                    sharded.shard(0).relation("Sailors"))
        assert segment.name in _segments()
        sharded.close()
        assert segment.name not in _segments()
        # Reusable: a fresh publisher is created lazily.
        assert not sharded.page_publisher().closed

    def test_reap_removes_dead_publishers_segments_only(self):
        publisher = SharedPagePublisher()
        try:
            live = publisher.publish("0/t", Relation(_SCHEMA, [(1, "x")]))
            # Forge a segment whose embedded pid does not exist.
            dead_pid = 2 ** 22 + 12345  # beyond default pid_max
            dead_name = f"{SEGMENT_PREFIX}-{dead_pid}-0"
            with open(os.path.join("/dev/shm", dead_name), "wb") as f:
                f.write(b"stale")
            reaped = reap_stale_segments()
            assert dead_name in reaped
            assert dead_name not in _segments()
            assert live.name in _segments()  # our own pid: untouched
        finally:
            publisher.close()


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------

class TestProcessBackendDifferential:
    @pytest.mark.parametrize("query", CANONICAL_QUERIES,
                             ids=[q.id for q in CANONICAL_QUERIES])
    def test_catalog_agrees_with_vectorized(self, db, query):
        plan = optimize(lower(query.sql, db.schema, "sql"), db)
        want = execute_plan(plan, db, backend="vectorized")
        got = execute_plan(plan, ShardedDatabase.from_database(db, 2),
                           backend=_CATALOG_BACKEND)
        assert want.bag_equal(got), query.id

    def test_registry_backend_is_a_singleton(self):
        assert get_backend("process") is get_backend("process")
        assert get_backend("process").name == "process"

    def test_point_query_routes_without_the_pool(self, db):
        backend = ProcessBackend(n_shards=4, workers=2)
        try:
            plan = optimize(lower(
                "SELECT S.sname FROM Sailors S WHERE S.sid = 22",
                db.schema, "sql"), db)
            want = execute_plan(plan, db, backend="vectorized")
            got = execute_plan(plan, db, backend=backend)
            assert want.bag_equal(got)
            counts = backend.execution_counts()
            assert counts["single_shard"] == 1 and counts["scatter"] == 0
            # The routed path never started worker processes.
            assert backend._exec_pool is None
        finally:
            backend.close()

    def test_recovers_from_killed_workers(self, db):
        backend = ProcessBackend(n_shards=2, workers=2)
        try:
            plan = optimize(lower(
                "SELECT S.sname, R.bid FROM Sailors S, Reserves R "
                "WHERE S.sid = R.sid", db.schema, "sql"), db)
            want = execute_plan(plan, db, backend="vectorized")
            assert want.bag_equal(execute_plan(plan, db, backend=backend))
            pool = backend._exec_pool
            assert pool is not None
            for process in pool._processes.values():
                process.kill()
            # The broken pool is discarded and the query re-runs in-process.
            assert want.bag_equal(execute_plan(plan, db, backend=backend))
            assert backend.execution_counts()["pool_recovery"] >= 1
            # The next execution restarts the pool and goes parallel again.
            assert want.bag_equal(execute_plan(plan, db, backend=backend))
        finally:
            backend.close()

    def test_worker_count_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "3")
        assert default_process_workers() == 3
        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "900")
        assert default_process_workers() == 16  # clamped
        monkeypatch.setenv("REPRO_PROCESS_WORKERS", "not-a-number")
        assert default_process_workers() >= 1
        monkeypatch.delenv("REPRO_PROCESS_WORKERS")
        assert 1 <= default_process_workers() <= 16
        with pytest.raises(ValueError):
            ProcessBackend(workers=0)

    def test_kernel_toggle_equivalence(self, db, monkeypatch):
        plan = optimize(lower(
            "SELECT S.rating, COUNT(*), AVG(S.age) FROM Sailors S "
            "GROUP BY S.rating", db.schema, "sql"), db)
        monkeypatch.setenv("REPRO_KERNELS", "off")
        assert not kernels_enabled()
        off = KernelExecutor(db).batch(plan).rows()
        monkeypatch.delenv("REPRO_KERNELS")
        on = KernelExecutor(db).batch(plan).rows()
        assert off == on  # bit-identical, not just bag-equal


class TestWriterRacesProcessReaders:
    def test_republish_after_version_bump(self, db):
        backend = ProcessBackend(n_shards=2, workers=2)
        sharded = ShardedDatabase.from_database(db, 2)
        try:
            plan = optimize(lower(
                "SELECT S.sname, R.bid FROM Sailors S, Reserves R "
                "WHERE S.sid = R.sid", db.schema, "sql"), db)
            before = execute_plan(plan, sharded, backend=backend)
            sharded.add_row("Reserves", (22, 104, "1998/12/12"))
            after = execute_plan(plan, sharded, backend=backend)
            assert len(after) == len(before) + 1
            want = execute_plan(plan, sharded, backend="vectorized")
            assert want.bag_equal(after)
        finally:
            backend.close()
            sharded.close()

    def test_concurrent_writer_and_process_readers(self, db):
        service = ShardedQueryService(db, backend="process", n_shards=2,
                                      workers=2)
        query = ("SELECT S.sname, COUNT(*) FROM Sailors S, Reserves R "
                 "WHERE S.sid = R.sid GROUP BY S.sname")
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer():
            try:
                for i in range(20):
                    service.add_row("Reserves", (22, 101 + (i % 4),
                                                 f"2025/01/{i + 1:02d}"))
            except BaseException as exc:  # pragma: no cover - fail the test
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    service.answer(query)
            except BaseException as exc:  # pragma: no cover - fail the test
                errors.append(exc)

        try:
            threads = [threading.Thread(target=writer)] + \
                [threading.Thread(target=reader) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, errors
            # Quiesced: the final answer equals a single-node evaluation.
            final = service.answer(query)
            reference = execute_plan(
                optimize(lower(query, service.db.schema, "sql"), service.db),
                service.db, backend="vectorized")
            assert reference.bag_equal(final)
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------

class TestLifecycle:
    def test_parallel_backend_close_and_reuse(self, db):
        backend = ParallelBackend(workers=2, min_partition_rows=1)
        plan = optimize(lower(
            "SELECT S.sname FROM Sailors S WHERE S.rating > 5",
            db.schema, "sql"), db)
        first = execute_plan(plan, db, backend=backend)
        assert backend._pool is not None
        backend.close()
        assert backend._pool is None
        backend.close()  # idempotent
        again = execute_plan(plan, db, backend=backend)  # pool recreated
        assert first.bag_equal(again)
        backend.close()

    def test_lifecycle_registry_close_all(self):
        from repro.engine import lifecycle

        class Probe:
            closed = 0

            def close(self):
                Probe.closed += 1

        probe = Probe()
        lifecycle.register(probe)
        lifecycle.register(probe)  # idempotent
        lifecycle.close_all()
        assert Probe.closed == 1
        lifecycle.close_all()  # drained
        assert Probe.closed == 1
        lifecycle.register(probe)
        lifecycle.unregister(probe)
        lifecycle.close_all()
        assert Probe.closed == 1

    def test_clean_under_resource_warning_errors(self):
        """The whole stack leaves no pools/segments behind at exit."""
        code = """
import warnings
from repro.core.sharded_service import ShardedQueryService
from repro.data import sailors_database
from repro.engine import run_query

db = sailors_database()
run_query("SELECT S.sname FROM Sailors S WHERE S.rating > 5", db,
          backend="parallel")
with ShardedQueryService(backend="process", n_shards=2, workers=2) as svc:
    svc.answer("SELECT S.sname, R.bid FROM Sailors S, Reserves R "
               "WHERE S.sid = R.sid")
import os
leftover = [f for f in os.listdir("/dev/shm") if f.startswith("repro-pg")]
assert not leftover, leftover
print("CLEAN")
"""
        env = dict(os.environ, PYTHONPATH="src")
        result = subprocess.run(
            [sys.executable, "-W", "error::ResourceWarning", "-c", code],
            capture_output=True, text=True, timeout=180,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            env=env)
        assert result.returncode == 0, result.stderr
        assert "CLEAN" in result.stdout
        assert "ResourceWarning" not in result.stderr
