"""The partitioned parallel backend: differential + partitioning semantics.

Three surfaces:

* the ``"parallel"`` backend is bag-equal (and row-order-identical) to the
  ``"vectorized"`` backend over the whole canonical catalog — both with the
  partition threshold forced to 1 (every probe and group-by actually runs
  partitioned) and at realistic sizes through the registry name;
* :meth:`Relation.partition_by` hash-partitions by value with no group
  straddling partitions;
* :meth:`Relation.freeze` / :meth:`Relation.copy` — the immutability
  contract the serving layer's shared caches rely on.
"""

from __future__ import annotations

import pytest

from repro.data.relation import RelationError, relation_from_rows
from repro.data.sailors import random_sailors_database
from repro.engine import (
    ParallelBackend,
    execute_plan,
    get_backend,
    lower,
    optimize,
    run_query,
)
from repro.queries import CANONICAL_QUERIES, LANGUAGES

#: Threshold 1 forces every probe/group loop through the partitioned code
#: even on the tiny canonical instance; 3 workers exercises uneven spans.
FORCED = ParallelBackend(workers=3, min_partition_rows=1)

PLAN_CELLS = [
    pytest.param(query, language, id=f"{query.id}-{language}")
    for query in CANONICAL_QUERIES
    for language in LANGUAGES
    if language.lower() != "datalog"
]


class TestDifferentialParallel:
    """parallel == vectorized, whole catalog, partitioning forced on."""

    @pytest.mark.parametrize("query,language", PLAN_CELLS)
    def test_forced_partitioning_agrees_with_vectorized(self, db, query, language):
        text = query.languages()[language]
        plan = optimize(lower(text, db.schema, language.lower()), db)
        vectorized = execute_plan(plan, db, backend="vectorized")
        parallel = execute_plan(plan, db, backend=FORCED)
        assert vectorized.bag_equal(parallel), (
            f"{query.id}/{language}: vectorized {sorted(vectorized.rows())} "
            f"!= parallel {sorted(parallel.rows())}"
        )

    def test_registry_backend_at_scale(self):
        db = random_sailors_database(n_sailors=300, n_boats=20,
                                     n_reserves=3000, seed=13)
        shapes = [
            ("SELECT DISTINCT S.sname FROM Sailors S, Reserves R, Boats B "
             "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'"),
            ("SELECT S.rating, COUNT(*) AS n, AVG(S.age) AS a "
             "FROM Sailors S, Reserves R WHERE S.sid = R.sid "
             "GROUP BY S.rating"),
            ("SELECT R.bid, COUNT(*) AS n FROM Reserves R GROUP BY R.bid"),
        ]
        for sql in shapes:
            vectorized = run_query(sql, db, "sql", backend="vectorized")
            parallel = run_query(sql, db, "sql", backend="parallel")
            assert vectorized.bag_equal(parallel), sql

    def test_row_order_identical_to_vectorized(self, db):
        # Not just bag-equal: span-partitioned probes and rep-index-merged
        # groups reproduce the sequential output order, so LIMIT without
        # ORDER BY agrees across the backends.
        sql = ("SELECT S.sname, B.color FROM Sailors S, Reserves R, Boats B "
               "WHERE S.sid = R.sid AND R.bid = B.bid")
        plan = optimize(lower(sql, db.schema, "sql"), db)
        assert get_backend("vectorized").execute(plan, db) \
            == FORCED.execute(plan, db)

    def test_multi_key_join_and_group(self, db):
        sql = ("SELECT R.sid, R.bid, COUNT(*) AS n FROM Reserves R "
               "GROUP BY R.sid, R.bid")
        vectorized = run_query(sql, db, "sql", backend="vectorized")
        parallel = execute_plan(
            optimize(lower(sql, db.schema, "sql"), db), db, backend=FORCED)
        assert vectorized.bag_equal(parallel)

    def test_null_keys_never_match_in_partitioned_probe(self):
        from repro.data.database import Database

        left = relation_from_rows("L", [("k", "int"), ("v", "str")],
                                  [(1, "a"), (None, "b"), (2, "c"), (1, "d")])
        right = relation_from_rows("R", [("k", "int"), ("w", "str")],
                                   [(1, "x"), (None, "y"), (3, "z")])
        db = Database([left, right])
        sql = "SELECT L.v, R.w FROM L, R WHERE L.k = R.k"
        vectorized = run_query(sql, db, "sql", backend="vectorized")
        parallel = execute_plan(
            optimize(lower(sql, db.schema, "sql"), db), db, backend=FORCED)
        assert vectorized.bag_equal(parallel)
        assert {row for row in parallel.rows()} == {("a", "x"), ("d", "x")}

    def test_registry_returns_the_shared_singleton(self):
        assert get_backend("parallel") is get_backend("parallel")
        assert get_backend("parallel").name == "parallel"

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelBackend(workers=0)


class TestPartitionBy:
    def test_rows_with_equal_keys_share_a_partition(self):
        rel = relation_from_rows(
            "R", [("k", "int"), ("v", "int")],
            [(i % 7, i) for i in range(100)])
        parts = rel.partition_by(["k"], 3)
        assert sum(len(p) for p in parts) == len(rel)
        owner: dict[int, int] = {}
        for which, part in enumerate(parts):
            for key, _v in part.rows():
                assert owner.setdefault(key, which) == which, (
                    f"key {key} straddles partitions"
                )

    def test_partitions_preserve_relative_bag_order(self):
        rel = relation_from_rows("R", [("k", "int"), ("v", "int")],
                                 [(i % 3, i) for i in range(30)])
        for part in rel.partition_by(["k"], 4):
            values = [v for _k, v in part.rows()]
            assert values == sorted(values)

    def test_multi_attribute_keys_and_bad_counts(self):
        rel = relation_from_rows("R", [("a", "int"), ("b", "str")],
                                 [(1, "x"), (1, "y"), (2, "x"), (1, "x")])
        parts = rel.partition_by(["a", "b"], 2)
        assert sum(len(p) for p in parts) == 4
        with pytest.raises(ValueError):
            rel.partition_by(["a"], 0)


class TestFreeze:
    def test_frozen_relation_rejects_add(self):
        rel = relation_from_rows("R", [("a", "int")], [(1,)])
        assert not rel.is_frozen
        assert rel.freeze() is rel
        assert rel.is_frozen
        with pytest.raises(RelationError):
            rel.add((2,))
        assert rel.rows() == [(1,)]

    def test_copy_of_frozen_is_mutable(self):
        rel = relation_from_rows("R", [("a", "int")], [(1,)]).freeze()
        copy = rel.copy()
        assert not copy.is_frozen
        copy.add((2,))
        assert copy.rows() == [(1,), (2,)]
        assert rel.rows() == [(1,)]  # the frozen original is untouched
