"""Differential tests: the unified plan engine vs. the five reference interpreters.

The engine (`repro.engine`) compiles SQL, RA, TRC, DRC, and Datalog into one
logical plan IR and executes it with hash-based physical operators.  The
per-language evaluators remain the semantic oracles: every test here asserts
bag-equality (set-equality for the calculi, whose outputs are sets by
construction) between the engine and the reference on the full canonical
catalog, with and without the optimizer, on the cow-book instance and on
random instances.
"""

from __future__ import annotations

import pytest

from repro.data.database import Database
from repro.data.relation import relation_from_rows
from repro.data.sailors import random_sailors_database
from repro.datalog.evaluate import evaluate_datalog
from repro.engine import (
    DistinctP,
    FilterP,
    JoinP,
    LoweringError,
    ProjectP,
    ScanP,
    common_subplan_count,
    estimate_rows,
    execute_plan,
    lower,
    optimize,
    run_query,
)
from repro.queries import CANONICAL_QUERIES, LANGUAGES
from repro.translate.equivalence import answer_relation, standard_database_battery

pytestmark = []

ALL_CELLS = [
    pytest.param(query, language, id=f"{query.id}-{language}")
    for query in CANONICAL_QUERIES
    for language in LANGUAGES
]


class TestDifferentialCatalog:
    """Engine results match all five interpreters over the whole catalog."""

    @pytest.mark.parametrize("query,language", ALL_CELLS)
    def test_catalog_matches_reference(self, db, query, language):
        text = query.languages()[language]
        engine = run_query(text, db, language.lower())
        reference = answer_relation(text, db)
        assert engine.bag_equal(reference), (
            f"{query.id}/{language}: engine {sorted(engine.rows())} "
            f"!= reference {sorted(reference.rows())}"
        )

    @pytest.mark.parametrize("query,language", ALL_CELLS)
    def test_catalog_matches_without_optimizer(self, db, query, language):
        text = query.languages()[language]
        engine = run_query(text, db, language.lower(), use_optimizer=False)
        reference = answer_relation(text, db)
        assert engine.bag_equal(reference)

    @pytest.mark.parametrize("query,language", ALL_CELLS)
    def test_catalog_matches_on_random_instances(self, query, language):
        text = query.languages()[language]
        for instance in standard_database_battery(extra_random=2, rows=8):
            engine = run_query(text, instance, language.lower())
            reference = answer_relation(text, instance)
            assert engine.bag_equal(reference), f"{query.id}/{language} disagrees"

    def test_expected_names(self, db, canonical_query):
        for language, text in canonical_query.languages().items():
            result = run_query(text, db, language.lower())
            assert {row[0] for row in result.distinct_rows()} == set(
                canonical_query.expected_names), f"{canonical_query.id}/{language}"


class TestSQLFragment:
    """Engine coverage of SQL beyond the catalog queries."""

    EXTRA_SQL = [
        "SELECT B.color, COUNT(*) AS n FROM Boats B GROUP BY B.color",
        "SELECT B.color, COUNT(*) AS n FROM Boats B GROUP BY B.color HAVING COUNT(*) > 1",
        "SELECT S.sname FROM Sailors S WHERE S.rating > 7 ORDER BY S.sname LIMIT 3",
        "SELECT S.sname, S.age FROM Sailors S ORDER BY S.age DESC, S.sname",
        "SELECT S.sid FROM Sailors S INTERSECT SELECT R.sid FROM Reserves R",
        "SELECT S.sid FROM Sailors S EXCEPT SELECT R.sid FROM Reserves R",
        "SELECT R.sid FROM Reserves R UNION ALL SELECT R2.sid FROM Reserves R2",
        "SELECT * FROM Boats B WHERE B.color = 'red'",
        "SELECT DISTINCT S.sname FROM Sailors S JOIN Reserves R ON S.sid = R.sid",
        "SELECT MAX(S.age) AS m, MIN(S.rating) AS lo FROM Sailors S",
        "SELECT AVG(S.age) AS a FROM Sailors S WHERE S.rating > 100",
        "SELECT T.sname FROM (SELECT S.sname, S.rating FROM Sailors S) T "
        "WHERE T.rating >= 9",
        "SELECT COUNT(*) AS n FROM Sailors S, Reserves R WHERE S.sid = R.sid",
        "SELECT S.sname FROM Sailors S WHERE S.age BETWEEN 20 AND 30",
        "SELECT S.sname FROM Sailors S WHERE S.sname LIKE 'H%'",
        "SELECT S.sname FROM Sailors S WHERE S.rating IN (9, 10)",
    ]

    @pytest.mark.parametrize("sql", EXTRA_SQL)
    def test_extra_sql_matches_reference(self, db, sql):
        assert run_query(sql, db, "sql").bag_equal(answer_relation(sql, db))

    def test_unsupported_sql_raises_lowering_error(self, db):
        with pytest.raises(LoweringError):
            run_query("SELECT S.sname FROM Sailors S LEFT JOIN Reserves R "
                      "ON S.sid = R.sid", db, "sql")

    def test_subquery_reusing_outer_alias_is_rejected_not_mislowered(self, db):
        # SQL scoping says the inner S shadows the outer S; the flat dependent
        # join cannot express that, so the engine must refuse (and the
        # pipeline falls back) rather than silently bind to the outer alias.
        sql = ("SELECT S.sname FROM Sailors S WHERE EXISTS "
               "(SELECT S.rating FROM Sailors S WHERE S.rating > 9)")
        with pytest.raises(LoweringError):
            run_query(sql, db, "sql")
        from repro.core import QueryVisualizationPipeline
        from repro.sql.evaluate import evaluate_sql

        result = QueryVisualizationPipeline(db).run(sql)
        assert not result.used_engine
        assert result.answers is not None
        assert result.answers.bag_equal(evaluate_sql(sql, db))


class TestSemiNaiveDatalog:
    def _edge_db(self, n: int, extra=()) -> Database:
        edges = [(i, i + 1) for i in range(1, n)] + list(extra)
        return Database([
            relation_from_rows("edge", [("src", "int"), ("dst", "int")], edges)
        ])

    def test_transitive_closure_matches_naive(self):
        db = self._edge_db(25, extra=[(10, 2), (20, 5)])
        program = ("tc(X, Y) :- edge(X, Y).\n"
                   "tc(X, Z) :- tc(X, Y), edge(Y, Z).\n"
                   "ans(X, Y) :- tc(X, Y).")
        engine = run_query(program, db, "datalog")
        reference = evaluate_datalog(program, db)
        assert engine.bag_equal(reference)

    def test_nonlinear_recursion(self):
        db = self._edge_db(12)
        program = ("tc(X, Y) :- edge(X, Y).\n"
                   "tc(X, Z) :- tc(X, Y), tc(Y, Z).\n"
                   "ans(X, Y) :- tc(X, Y).")
        engine = run_query(program, db, "datalog")
        reference = evaluate_datalog(program, db)
        assert engine.bag_equal(reference)

    def test_stratified_negation_over_recursion(self):
        db = self._edge_db(10, extra=[(30, 31)])
        program = ("reach(Y) :- edge(1, Y).\n"
                   "reach(Z) :- reach(Y), edge(Y, Z).\n"
                   "isolated(X) :- edge(X, Y), not reach(X).\n"
                   "ans(X) :- isolated(X).")
        engine = run_query(program, db, "datalog")
        reference = evaluate_datalog(program, db)
        assert engine.bag_equal(reference)

    def test_facts_and_constants(self, db):
        program = ("special(102).\n"
                   "ans(N) :- sailors(S, N, R, A), reserves(S, B, D), special(B).")
        engine = run_query(program, db, "datalog")
        reference = evaluate_datalog(program, db)
        assert engine.bag_equal(reference)


class TestOptimizer:
    def test_pushdown_and_key_promotion_produce_hash_joins(self, db):
        sql = ("SELECT DISTINCT S.sname FROM Sailors S, Reserves R, Boats B "
               "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'")
        plan = optimize(lower(sql, db.schema, "sql"), db)
        keyed_joins = [n for n in plan.walk()
                       if isinstance(n, JoinP) and n.left_keys]
        assert keyed_joins, "expected equi-joins to be promoted to hash joins"
        # The constant selection must sit on (or below) the Boats scan, not
        # above a product.
        for node in plan.walk():
            if isinstance(node, FilterP):
                assert not isinstance(node.input, JoinP) or node.input.kind != "cross"

    def test_optimizer_preserves_results_on_random_instances(self):
        for seed in range(3):
            instance = random_sailors_database(
                n_sailors=12, n_boats=5, n_reserves=30, seed=seed)
            for query in CANONICAL_QUERIES:
                for language, text in query.languages().items():
                    if language == "Datalog":
                        continue
                    plain = execute_plan(lower(text, instance.schema,
                                               language.lower()), instance)
                    tuned = execute_plan(
                        optimize(lower(text, instance.schema, language.lower()),
                                 instance), instance)
                    assert plain.bag_equal(tuned), f"{query.id}/{language} seed={seed}"

    def test_cse_dedupes_dependent_join_copies(self, db):
        # Q4's nested NOT EXISTS embeds the outer plan twice; after CSE the
        # shared subtrees are literally the same object.
        plan = lower(CANONICAL_QUERIES[3].sql, db.schema, "sql")
        assert common_subplan_count(optimize(plan, db)) > 0

    def test_reordering_keeps_dependent_joins_shared(self, db):
        # Join reordering must not flatten through the outer plan embedded in
        # a dependent join's right side — the left plan has to stay a
        # structural subtree of the right so the executor evaluates it once.
        sql = ("SELECT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid "
               "AND EXISTS (SELECT B.bid FROM Boats B WHERE B.bid = R.bid "
               "AND B.color = 'red')")
        optimized = optimize(lower(sql, db.schema, "sql"), db)
        dependent = [n for n in optimized.walk()
                     if isinstance(n, JoinP) and n.kind == "semi"]
        assert dependent
        join = dependent[0]
        assert any(sub == join.left for sub in join.right.walk())
        assert execute_plan(optimized, db).bag_equal(answer_relation(sql, db))

    def test_aggregating_exists_is_rejected_not_mislowered(self, db):
        # An ungrouped aggregate subquery yields a row even over empty input,
        # so a plain existence check would be wrong; the engine must refuse.
        sql = ("SELECT S.sid FROM Sailors S WHERE EXISTS "
               "(SELECT COUNT(*) FROM Reserves R WHERE R.sid = S.sid "
               "HAVING COUNT(*) > 1)")
        with pytest.raises(LoweringError):
            run_query(sql, db, "sql")

    def test_scalar_function_over_aggregate(self, db):
        sql = "SELECT ABS(COUNT(*)) AS n FROM Sailors S"
        assert run_query(sql, db, "sql").bag_equal(answer_relation(sql, db))

    def test_estimates_are_positive_and_monotone_in_data(self):
        small = random_sailors_database(n_sailors=5, n_boats=3, n_reserves=10, seed=0)
        large = random_sailors_database(n_sailors=50, n_boats=10, n_reserves=150, seed=0)
        plan = lower("SELECT S.sname FROM Sailors S, Reserves R "
                     "WHERE S.sid = R.sid", small.schema, "sql")
        assert 0 < estimate_rows(plan, small) <= estimate_rows(plan, large)


class TestDataLayer:
    def test_contains_uses_cached_set(self):
        rel = relation_from_rows("R", [("a", "int")], [(i,) for i in range(100)])
        assert (5,) in rel
        assert (200,) not in rel
        rel.add((200,))
        assert (200,) in rel  # cache is maintained incrementally

    def test_distinct_rows_cached_and_consistent(self):
        rel = relation_from_rows("R", [("a", "int")], [(1,), (1,), (2,)])
        first = rel.distinct_rows()
        assert first == [(1,), (2,)]
        assert rel.cardinality(distinct=True) == 2
        rel.add((3,))
        assert rel.distinct_rows() == [(1,), (2,), (3,)]
        assert rel.cardinality(distinct=True) == 3
        first.append((99,))  # callers get a copy, the cache is unaffected
        assert rel.distinct_rows() == [(1,), (2,), (3,)]

    def test_index_on_maintained_on_add(self):
        rel = relation_from_rows("R", [("a", "int"), ("b", "str")],
                                 [(1, "x"), (2, "y"), (1, "z")])
        index = rel.index_on("a")
        assert sorted(index[1]) == [(1, "x"), (1, "z")]
        rel.add((1, "w"))
        assert len(rel.index_on("a")[1]) == 3

    def test_database_index_on(self, db):
        index = db.index_on("Boats", "color")
        assert {row[0] for row in index["red"]} == {102, 104}


class TestMultiLanguagePipeline:
    def test_pipeline_runs_sql_ra_and_datalog_with_diagrams(self, db):
        from repro.core import QueryVisualizationPipeline

        pipeline = QueryVisualizationPipeline(db)
        for query in CANONICAL_QUERIES:
            for language in ("sql", "ra", "datalog"):
                text = query.languages()[
                    {"sql": "SQL", "ra": "RA", "datalog": "Datalog"}[language]]
                result = pipeline.run(text, language=language)
                assert result.answers is not None
                names = {row[0] for row in result.answers.distinct_rows()}
                assert names == set(query.expected_names), f"{query.id}/{language}"
                assert result.diagram.nodes, f"{query.id}/{language} has no diagram"

    def test_pipeline_runs_the_calculi(self, db, canonical_query):
        from repro.core import QueryVisualizationPipeline

        pipeline = QueryVisualizationPipeline(db)
        for language, key in (("trc", "TRC"), ("drc", "DRC")):
            result = pipeline.run(canonical_query.languages()[key], language=language)
            assert result.answers is not None
            assert {row[0] for row in result.answers.distinct_rows()} == set(
                canonical_query.expected_names)

    def test_pipeline_records_engine_plan_and_timings(self, db):
        from repro.core import QueryVisualizationPipeline

        result = QueryVisualizationPipeline(db).run(CANONICAL_QUERIES[0].sql)
        assert result.used_engine
        assert {"parse", "lower", "optimize", "execute", "evaluate"} <= set(result.timings)

    def test_pipeline_falls_back_outside_the_fragment(self, db):
        from repro.core import QueryVisualizationPipeline

        sql = ("SELECT S.sname FROM Sailors S LEFT JOIN Reserves R "
               "ON S.sid = R.sid WHERE R.sid IS NULL")
        result = QueryVisualizationPipeline(db, formalism="sqlvis").run(sql)
        assert result.answers is not None
        assert not result.used_engine
        assert any("fallback" in w for w in result.warnings)
        from repro.sql.evaluate import evaluate_sql

        assert result.answers.bag_equal(evaluate_sql(sql, db))

    def test_answer_any_autodetects_language(self, db):
        from repro.core import answer_any

        for query in CANONICAL_QUERIES:
            for text in query.languages().values():
                names = {row[0] for row in answer_any(text, db).distinct_rows()}
                assert names == set(query.expected_names)


class TestPlanStructure:
    def test_scan_filter_project_roundtrip(self, db):
        from repro.expr.ast import Col, Comparison, Const

        plan = DistinctP(ProjectP(
            FilterP(ScanP("Boats", ("bid", "bname", "color")),
                    Comparison(Col("color"), "=", Const("red"))),
            (Col("bid"),),
            ("bid",),
        ))
        result = execute_plan(plan, db)
        assert {row[0] for row in result.rows()} == {102, 104}

    def test_hand_built_hash_join(self, db):
        from repro.expr.ast import Col

        join = JoinP(ScanP("Sailors", ("sid", "sname", "rating", "age")),
                     ScanP("Reserves", ("rsid", "bid", "day")),
                     "inner", left_keys=("sid",), right_keys=("rsid",))
        plan = DistinctP(ProjectP(join, (Col("sname"),), ("sname",)))
        result = execute_plan(plan, db)
        reference = answer_relation(
            "SELECT DISTINCT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid",
            db)
        assert result.bag_equal(reference)
