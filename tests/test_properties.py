"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.data import Relation, RelationSchema, Attribute, DataType, random_sailors_database
from repro.diagrams.peirce_alpha import formula_of, graph_of, graphs_equivalent
from repro.diagrams.syllogism import CategoricalProposition, Syllogism, entails
from repro.expr import (
    And,
    Col,
    Comparison,
    Const,
    Not,
    Or,
    Scope,
    eval_expr,
    format_expr,
)
from repro.expr.parser import parse_expression
from repro.logic import (
    Atom,
    Exists,
    ForAll,
    Implies,
    Not as LNot,
    Or as LOr,
    And as LAnd,
    Structure,
    Var,
    evaluate,
    free_variables,
    is_propositional,
    prop,
    propositionally_equivalent,
    to_exists_and_not,
    to_nnf,
    to_prenex,
)
from repro.core.patterns import isomorphic, pattern_of
from repro.ra import evaluate as evaluate_ra, optimize, parse_ra
from repro.sql import evaluate_sql
from repro.translate import answer_set, sql_to_trc
from repro.trc import evaluate_trc

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

values = st.one_of(st.integers(-20, 20), st.booleans(), st.text(max_size=4), st.none())

rows = st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=12)


def make_relation(pairs) -> Relation:
    schema = RelationSchema("T", (Attribute("a", DataType.INT), Attribute("b", DataType.INT)))
    return Relation(schema, pairs, validate=False)


prop_names = st.sampled_from(["p", "q", "r"])


@st.composite
def propositional_formulas(draw, depth=3):
    if depth == 0:
        return prop(draw(prop_names))
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return prop(draw(prop_names))
    if choice == 1:
        return LNot(draw(propositional_formulas(depth=depth - 1)))
    left = draw(propositional_formulas(depth=depth - 1))
    right = draw(propositional_formulas(depth=depth - 1))
    if choice == 2:
        return LAnd((left, right))
    if choice == 3:
        return LOr((left, right))
    return Implies(left, right)


@st.composite
def fol_formulas(draw, depth=2, variables=("x", "y")):
    """Small first-order formulas over unary predicates P, Q and variables x, y."""
    if depth == 0:
        predicate = draw(st.sampled_from(["P", "Q"]))
        var = Var(draw(st.sampled_from(variables)))
        return Atom(predicate, (var,))
    choice = draw(st.integers(0, 5))
    if choice == 0:
        predicate = draw(st.sampled_from(["P", "Q"]))
        var = Var(draw(st.sampled_from(variables)))
        return Atom(predicate, (var,))
    if choice == 1:
        return LNot(draw(fol_formulas(depth=depth - 1, variables=variables)))
    if choice in (2, 3):
        left = draw(fol_formulas(depth=depth - 1, variables=variables))
        right = draw(fol_formulas(depth=depth - 1, variables=variables))
        return LAnd((left, right)) if choice == 2 else LOr((left, right))
    var = Var(draw(st.sampled_from(variables)))
    body = draw(fol_formulas(depth=depth - 1, variables=variables))
    return Exists((var,), body) if choice == 4 else ForAll((var,), body)


SMALL_STRUCTURE = Structure(domain=[1, 2, 3], relations={"P": [(1,), (2,)], "Q": [(2,), (3,)]})


# ---------------------------------------------------------------------------
# Relation invariants
# ---------------------------------------------------------------------------

class TestRelationProperties:
    @given(rows)
    def test_distinct_is_idempotent(self, pairs):
        relation = make_relation(pairs)
        once = relation.distinct()
        twice = once.distinct()
        assert once.rows() == twice.rows()
        assert len(once) <= len(relation)

    @given(rows)
    def test_projection_never_grows_set(self, pairs):
        relation = make_relation(pairs)
        projected = relation.project_columns(["a"])
        assert len(projected) <= len(relation.distinct())
        assert set(projected.rows()) == {(a,) for a, _ in pairs}

    @given(rows, rows)
    def test_bag_equality_is_order_insensitive(self, left, right):
        a = make_relation(left)
        b = make_relation(list(reversed(left)))
        assert a.bag_equal(b)
        if sorted(left) != sorted(right):
            assert not make_relation(left).bag_equal(make_relation(right))


# ---------------------------------------------------------------------------
# Expression evaluation invariants
# ---------------------------------------------------------------------------

class TestExpressionProperties:
    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_comparison_trichotomy(self, a, b):
        scope = Scope.from_mapping({"a": a, "b": b})
        less = eval_expr(Comparison(Col("a"), "<", Col("b")), scope)
        equal = eval_expr(Comparison(Col("a"), "=", Col("b")), scope)
        greater = eval_expr(Comparison(Col("a"), ">", Col("b")), scope)
        assert [less, equal, greater].count(True) == 1

    @given(st.one_of(st.integers(-9, 9), st.none()), st.one_of(st.integers(-9, 9), st.none()))
    def test_de_morgan_three_valued(self, a, b):
        scope = Scope.from_mapping({"a": a, "b": b})
        left = Comparison(Col("a"), ">", Const(0))
        right = Comparison(Col("b"), ">", Const(0))
        lhs = eval_expr(Not(And((left, right))), scope)
        rhs = eval_expr(Or((Not(left), Not(right))), scope)
        assert lhs == rhs

    @given(st.integers(0, 99), st.integers(0, 99), st.integers(0, 99))
    def test_format_parse_round_trip_comparisons(self, a, b, c):
        expr = Or((And((Comparison(Col("x"), "<", Const(a)),
                        Comparison(Col("y"), ">=", Const(b)))),
                   Comparison(Col("z"), "<>", Const(c))))
        assert parse_expression(format_expr(expr)) == expr


# ---------------------------------------------------------------------------
# Logic invariants
# ---------------------------------------------------------------------------

class TestLogicProperties:
    @settings(max_examples=60)
    @given(propositional_formulas())
    def test_nnf_preserves_propositional_meaning(self, formula):
        assert propositionally_equivalent(formula, to_nnf(formula))

    @settings(max_examples=60)
    @given(propositional_formulas())
    def test_alpha_graph_round_trip(self, formula):
        graph = graph_of(formula)
        assert is_propositional(formula_of(graph))
        assert propositionally_equivalent(formula, formula_of(graph))
        assert graphs_equivalent(graph, graph_of(formula_of(graph)))

    @settings(max_examples=40)
    @given(fol_formulas())
    def test_fol_transforms_preserve_truth(self, formula):
        closed = formula
        free = free_variables(closed)
        if free:
            closed = ForAll(tuple(free), closed)
        original = evaluate(closed, SMALL_STRUCTURE)
        assert evaluate(to_nnf(closed), SMALL_STRUCTURE) == original
        assert evaluate(to_prenex(closed), SMALL_STRUCTURE) == original
        assert evaluate(to_exists_and_not(closed), SMALL_STRUCTURE) == original


# ---------------------------------------------------------------------------
# Query engine invariants
# ---------------------------------------------------------------------------

class TestEngineProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_sql_trc_ra_agree_on_random_databases(self, seed):
        db = random_sailors_database(n_sailors=8, n_boats=4, n_reserves=16, seed=seed)
        sql = ("SELECT DISTINCT S.sname FROM Sailors S, Reserves R, Boats B "
               "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'")
        ra = "project[sname](Sailors njoin Reserves njoin select[color = 'red'](Boats))"
        trc = sql_to_trc(sql, db.schema)
        assert (set(evaluate_sql(sql, db).distinct_rows())
                == set(evaluate_ra(parse_ra(ra), db).rows())
                == set(evaluate_trc(trc, db).rows()))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_optimizer_preserves_answers(self, seed):
        db = random_sailors_database(n_sailors=6, n_boats=4, n_reserves=12, seed=seed)
        expr = parse_ra("project[sname](select[color = 'red' and Sailors.sid = Reserves.sid "
                        "and Reserves.bid = Boats.bid](Sailors times Reserves times Boats))")
        optimized = optimize(expr, db.schema)
        assert evaluate_ra(expr, db).set_equal(evaluate_ra(optimized, db))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_universal_ra_matches_double_negation(self, seed):
        """The expanded (division-free) RA form of Q4 agrees with the SQL double
        negation on every database, including ones with no red boat at all."""
        from repro.queries import Q4_ALL_RED

        db = random_sailors_database(n_sailors=6, n_boats=5, n_reserves=15, seed=seed)
        assert answer_set(Q4_ALL_RED.ra, db) == answer_set(Q4_ALL_RED.sql, db)

    def test_division_diverges_on_empty_divisor(self):
        """The textbook division form is *not* equivalent to FOR ALL when the
        divisor is empty — the vacuous-truth subtlety the tutorial's discussion
        of universal quantification turns on."""
        from repro.data import Database, Relation
        from repro.data.sailors import BOATS_SCHEMA, RESERVES_SCHEMA, SAILORS_SCHEMA, SAILORS_ROWS, RESERVES_ROWS
        from repro.queries import Q4_ALL_RED, Q4_ALL_RED_DIVISION_RA

        no_red = Database([
            Relation(SAILORS_SCHEMA, SAILORS_ROWS),
            Relation(BOATS_SCHEMA, [(101, "Interlake", "blue"), (103, "Clipper", "green")]),
            Relation(RESERVES_SCHEMA, RESERVES_ROWS),
        ])
        division_answer = answer_set(Q4_ALL_RED_DIVISION_RA, no_red)
        forall_answer = answer_set(Q4_ALL_RED.sql, no_red)
        assert division_answer < forall_answer  # strictly fewer sailors
        assert len(forall_answer) == 9          # vacuously, every (distinct) name qualifies


# ---------------------------------------------------------------------------
# Pattern and syllogism invariants
# ---------------------------------------------------------------------------

class TestPatternProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.permutations(["S.sid = R.sid", "R.bid = B.bid", "B.color = 'red'"]))
    def test_conjunct_order_never_changes_the_pattern(self, conjuncts):
        from repro.data.sailors import SAILORS_DATABASE_SCHEMA

        base = ("SELECT S.sname FROM Sailors S, Reserves R, Boats B WHERE "
                + " AND ".join(["S.sid = R.sid", "R.bid = B.bid", "B.color = 'red'"]))
        shuffled = ("SELECT S.sname FROM Sailors S, Reserves R, Boats B WHERE "
                    + " AND ".join(conjuncts))
        a = pattern_of(sql_to_trc(base, SAILORS_DATABASE_SCHEMA))
        b = pattern_of(sql_to_trc(shuffled, SAILORS_DATABASE_SCHEMA))
        assert isomorphic(a, b)


class TestSyllogismProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.sampled_from(["A", "E", "I", "O"]), st.sampled_from(["A", "E", "I", "O"]),
           st.sampled_from(["A", "E", "I", "O"]), st.integers(1, 4))
    def test_existential_import_only_adds_validities(self, major, minor, conclusion, figure):
        syllogism = Syllogism(major + minor + conclusion, figure)
        if syllogism.is_valid():
            assert syllogism.is_valid(existential_import=True)

    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(["A", "E", "I", "O"]))
    def test_every_proposition_entails_itself(self, form):
        proposition = CategoricalProposition(form, "A", "B")
        assert entails([proposition], proposition)
