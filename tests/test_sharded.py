"""The sharded scatter-gather subsystem: storage, planner, backend, service.

Four surfaces:

* :class:`ShardedDatabase` — hash-partitioned storage whose merged read
  views agree with the source database and whose routed writes land on the
  owning shard;
* the shard-aware planner (:func:`repro.engine.sharded.shard_plan`) —
  co-partitioned scatter joins, broadcast of small non-co-partitioned
  sides, partial→final aggregation splits, single-shard point routing, and
  the single-node fallback;
* the ``"sharded"`` backend — bag-equal to ``"vectorized"`` over the whole
  canonical catalog at 1, 2, and 4 shards (the acceptance gate);
* :class:`ShardedQueryService` — routed writes, the shard-version-vector
  result-cache key, and the point-query serving path.
"""

from __future__ import annotations

import pytest

from repro.data import ShardedDatabase, reshard, sailors_database
from repro.data.relation import RelationError, relation_from_rows
from repro.data.schema import SchemaError
from repro.engine import execute_plan, get_backend, lower, optimize, run_query
from repro.engine.sharded import ShardedBackend, shard_plan, split_aggregate
from repro.engine.stats import StatsCatalog
from repro.queries import CANONICAL_QUERIES, LANGUAGES

SHARD_COUNTS = (1, 2, 4)

PLAN_CELLS = [
    pytest.param(query, language, shards,
                 id=f"{query.id}-{language}-{shards}sh")
    for query in CANONICAL_QUERIES
    for language in LANGUAGES
    if language.lower() != "datalog"
    for shards in SHARD_COUNTS
]


class TestDifferentialSharded:
    """sharded == vectorized, whole catalog, at 1, 2, and 4 shards."""

    @pytest.mark.parametrize("query,language,shards", PLAN_CELLS)
    def test_catalog_agrees_with_vectorized(self, db, query, language, shards):
        text = query.languages()[language]
        plan = optimize(lower(text, db.schema, language.lower()), db)
        vectorized = execute_plan(plan, db, backend="vectorized")
        sharded = execute_plan(plan, ShardedDatabase.from_database(db, shards),
                               backend=ShardedBackend(n_shards=shards))
        assert vectorized.bag_equal(sharded), (
            f"{query.id}/{language}@{shards} shards: "
            f"vectorized {sorted(vectorized.rows())} "
            f"!= sharded {sorted(sharded.rows())}"
        )

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_datalog_catalog_through_run_query(self, db, shards):
        # Datalog routes through the semi-naive fixpoint over the merged
        # view; the sharded database must serve it like a plain database.
        sharded = ShardedDatabase.from_database(db, shards)
        for query in CANONICAL_QUERIES:
            want = run_query(query.datalog, db, "datalog")
            got = run_query(query.datalog, sharded, "datalog")
            assert want.bag_equal(got), query.id

    def test_registry_backend_is_a_singleton(self):
        assert get_backend("sharded") is get_backend("sharded")
        assert get_backend("sharded").name == "sharded"

    def test_registry_backend_auto_shards_plain_databases(self, db):
        sql = "SELECT S.sname, R.bid FROM Sailors S, Reserves R WHERE S.sid = R.sid"
        want = run_query(sql, db, "sql", backend="vectorized")
        got = run_query(sql, db, "sql", backend="sharded")
        assert want.bag_equal(got)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedBackend(n_shards=0)
        with pytest.raises(ValueError):
            ShardedDatabase(n_shards=0)


class TestShardedDatabase:
    def test_partitioning_respects_the_shard_key(self, db):
        sharded = ShardedDatabase.from_database(db, 3)
        for name in ("Sailors", "Boats", "Reserves"):
            attrs = sharded.shard_key(name)
            schema = sharded.shard(0).relation(name).schema
            positions = [schema.index_of(a) for a in attrs]
            for i in range(3):
                for row in sharded.shard(i).relation(name).rows():
                    key = row[positions[0]] if len(positions) == 1 \
                        else tuple(row[p] for p in positions)
                    assert sharded.shard_of_value(key) == i

    def test_merged_views_agree_with_the_source(self, db):
        sharded = ShardedDatabase.from_database(db, 4)
        for rel in db:
            merged = sharded.relation(rel.schema.name)
            assert merged.bag_equal(rel)
            assert merged.schema.attribute_names == rel.schema.attribute_names
        assert sharded.total_rows() == db.total_rows()
        assert sharded.active_domain() == db.active_domain()
        assert set(sharded.relation_names) == set(db.relation_names)

    def test_merged_views_are_frozen(self, db):
        sharded = ShardedDatabase.from_database(db, 2)
        with pytest.raises(RelationError):
            sharded.relation("Sailors").add((999, "x", 1, 20.0))

    def test_routed_write_lands_on_the_owning_shard(self, db):
        sharded = ShardedDatabase.from_database(db, 4)
        row = (999, 101, "2025-06-01")
        owner = sharded.shard_of_row("Reserves", row)
        before = [len(sharded.shard(i).relation("Reserves")) for i in range(4)]
        assert sharded.add_row("Reserves", row) == owner
        after = [len(sharded.shard(i).relation("Reserves")) for i in range(4)]
        assert after[owner] == before[owner] + 1
        assert sum(after) == sum(before) + 1
        assert row in sharded.relation("Reserves").row_set()

    def test_batch_writes_are_all_or_nothing_across_shards(self, db):
        # Regression: a validation failure anywhere in the batch must leave
        # no shard with a partial write, mirroring Relation.add_rows.
        sharded = ShardedDatabase.from_database(db, 4)
        before_total = sharded.total_rows()
        before_versions = sharded.shard_versions()
        rows = [(95, "good", 5, 30.0),
                (96, "bad", "not-an-int", 30.0)]  # invalid rating
        with pytest.raises(RelationError):
            sharded.add_rows("Sailors", rows)
        assert sharded.total_rows() == before_total
        assert sharded.shard_versions() == before_versions

    def test_batch_writes_route_and_bump_once_per_shard(self, db):
        sharded = ShardedDatabase.from_database(db, 4)
        before = sharded.shard_versions()
        rows = [(1000 + i, 101 + (i % 3), "2025-06-02") for i in range(12)]
        placed = sharded.add_rows("Reserves", rows)
        assert sum(placed.values()) == 12
        after = sharded.shard_versions()
        for i in range(4):
            assert after[i] - before[i] == (1 if i in placed else 0)

    def test_shard_version_vector_moves_one_component_per_write(self, db):
        sharded = ShardedDatabase.from_database(db, 4)
        v0 = sharded.shard_versions()
        version0 = sharded.version
        sharded.add_row("Sailors", (777, "zed", 5, 31.0))
        v1 = sharded.shard_versions()
        assert sum(1 for a, b in zip(v0, v1) if a != b) == 1
        assert sharded.version > version0

    def test_zero_arity_relations_shard_without_crashing(self):
        # The calculi's TRUE/FALSE tables are 0-ary; the empty default key
        # sends every row to one shard, which is exact.
        from repro.data.schema import RelationSchema
        from repro.data.relation import Relation

        dee = Relation(RelationSchema("Dee", ()), [(), ()])
        sharded = ShardedDatabase([dee], n_shards=3)
        assert sharded.shard_key("Dee") == ()
        merged = sharded.relation("Dee")
        assert merged.bag_equal(dee)
        owners = {i for i in range(3) if len(sharded.shard(i).relation("Dee"))}
        assert len(owners) == 1  # all rows co-located

    def test_custom_shard_keys(self, db):
        sharded = ShardedDatabase.from_database(
            db, 2, shard_keys={"Reserves": "bid", "Sailors": ("sid",)})
        assert sharded.shard_key("Reserves") == ("bid",)
        assert sharded.shard_key("Sailors") == ("sid",)
        assert sharded.shard_key("Boats") == ("bid",)  # default: first attr
        with pytest.raises(SchemaError):
            ShardedDatabase.from_database(
                db, 2, shard_keys={"Boats": "no_such_attr"})

    def test_drop_and_replace_relation(self, db):
        sharded = ShardedDatabase.from_database(db, 2)
        version = sharded.version
        sharded.drop_relation("Boats")
        assert "Boats" not in sharded
        assert sharded.version > version
        with pytest.raises(SchemaError):
            sharded.relation("Boats")
        extra = relation_from_rows("Extra", [("k", "int")], [(1,), (2,)])
        sharded.add_relation(extra)
        assert sharded.relation("Extra").bag_equal(extra)

    def test_copy_and_reshard_preserve_contents(self, db):
        sharded = ShardedDatabase.from_database(db, 2)
        copy = sharded.copy()
        assert copy.n_shards == 2
        assert copy.relation("Sailors").bag_equal(sharded.relation("Sailors"))
        resharded = reshard(sharded, 5)
        assert resharded.n_shards == 5
        assert resharded.relation("Sailors").bag_equal(
            sharded.relation("Sailors"))
        assert resharded.shard_key("Sailors") == sharded.shard_key("Sailors")


class TestPlannerShapes:
    @pytest.fixture
    def sharded(self, db):
        return ShardedDatabase.from_database(db, 4)

    def _plan(self, db, sql):
        return optimize(lower(sql, db.schema, "sql"), db)

    def test_co_partitioned_join_scatters_without_broadcast(self, db, sharded):
        sql = ("SELECT S.sname, R.bid FROM Sailors S, Reserves R "
               "WHERE S.sid = R.sid")
        compiled = shard_plan(self._plan(db, sql), sharded,
                              StatsCatalog(sharded))
        assert compiled.mode == "scatter"
        assert compiled.partitioned == {"sailors", "reserves"}
        assert not compiled.broadcast

    def test_non_co_partitioned_side_is_broadcast(self, db, sharded):
        sql = ("SELECT R.day, B.color FROM Reserves R, Boats B "
               "WHERE R.bid = B.bid")
        compiled = shard_plan(self._plan(db, sql), sharded,
                              StatsCatalog(sharded))
        assert compiled.mode == "scatter"
        # Reserves partitions on sid, Boats on bid: the smaller Boats side
        # is replicated to every shard.
        assert "boats" in compiled.broadcast
        assert "reserves" in compiled.partitioned

    def test_group_by_off_the_key_splits_partial_final(self, db, sharded):
        sql = ("SELECT S.rating, COUNT(*) AS n, AVG(S.age) AS a "
               "FROM Sailors S GROUP BY S.rating")
        compiled = shard_plan(self._plan(db, sql), sharded,
                              StatsCatalog(sharded))
        assert compiled.mode == "scatter"
        assert compiled.combine is not None
        assert "partial-aggregate" in compiled.describe()

    def test_group_by_on_the_key_needs_no_split(self, db, sharded):
        sql = "SELECT S.sid, COUNT(*) AS n FROM Sailors S GROUP BY S.sid"
        compiled = shard_plan(self._plan(db, sql), sharded,
                              StatsCatalog(sharded))
        assert compiled.mode == "scatter"
        assert compiled.combine is None

    def test_point_query_routes_to_one_shard(self, db, sharded):
        sql = "SELECT S.sname FROM Sailors S WHERE S.sid = 22"
        compiled = shard_plan(self._plan(db, sql), sharded,
                              StatsCatalog(sharded))
        assert compiled.mode == "single"
        assert compiled.shard_index == sharded.shard_of_value(22)

    def test_limit_runs_globally_on_the_merge_step(self, db, sharded):
        # Per-shard LIMIT would drop the wrong rows; the planner sheds the
        # sort/limit onto the merge step, which applies it once over the
        # gathered bag.
        sql = "SELECT S.sname FROM Sailors S ORDER BY S.sname LIMIT 3"
        compiled = shard_plan(self._plan(db, sql), sharded,
                              StatsCatalog(sharded))
        assert compiled.mode == "scatter"
        assert "merge-finish" in compiled.describe()

    def test_order_by_without_limit_sorts_globally(self, db, sharded):
        # Regression: per-shard sorted runs must not be concatenated as-is;
        # the merge step replays the sort over the gathered bag, so the
        # output order (distinct keys) matches vectorized exactly.
        sql = "SELECT S.sname, S.sid FROM Sailors S ORDER BY S.sid DESC"
        plan = self._plan(db, sql)
        compiled = shard_plan(plan, sharded, StatsCatalog(sharded))
        assert compiled.mode == "scatter"
        assert "merge-finish" in compiled.describe()
        want = execute_plan(plan, db, backend="vectorized")
        got = execute_plan(plan, sharded, backend=ShardedBackend(n_shards=4))
        assert want.rows() == got.rows()  # order-identical, not just bag

    def test_unalignable_set_difference_falls_back(self, db, sharded):
        # Both projections drop their partition keys, so equal rows could
        # straddle shards and EXCEPT cannot run per shard.
        sql = ("SELECT S.sname FROM Sailors S "
               "EXCEPT SELECT B.bname FROM Boats B")
        compiled = shard_plan(self._plan(db, sql), sharded,
                              StatsCatalog(sharded))
        assert compiled.mode == "fallback"
        want = run_query(sql, db, "sql", backend="vectorized")
        got = execute_plan(self._plan(db, sql), sharded,
                           backend=ShardedBackend(n_shards=4))
        assert want.bag_equal(got)

    def test_distinct_aggregate_falls_back(self, db, sharded):
        sql = ("SELECT S.rating, COUNT(DISTINCT S.age) AS n "
               "FROM Sailors S GROUP BY S.rating")
        plan = self._plan(db, sql)
        compiled = shard_plan(plan, sharded, StatsCatalog(sharded))
        # COUNT(DISTINCT) cannot combine from partial states...
        assert compiled.combine is None
        # ...and split_aggregate says so directly.
        from repro.engine.plan import AggregateP

        agg = next(n for n in plan.walk() if isinstance(n, AggregateP))
        assert split_aggregate(agg) is None

    def test_execution_matches_vectorized_for_every_shape(self, db, sharded):
        shapes = [
            "SELECT S.sname, R.bid FROM Sailors S, Reserves R WHERE S.sid = R.sid",
            "SELECT R.day, B.color FROM Reserves R, Boats B WHERE R.bid = B.bid",
            "SELECT S.rating, COUNT(*) AS n, AVG(S.age) AS a "
            "FROM Sailors S GROUP BY S.rating",
            "SELECT S.sid, COUNT(*) AS n FROM Sailors S GROUP BY S.sid",
            "SELECT S.sname FROM Sailors S WHERE S.sid = 22",
            "SELECT S.sname FROM Sailors S ORDER BY S.sname LIMIT 3",
            "SELECT COUNT(*) AS n, MAX(S.age) AS m FROM Sailors S "
            "WHERE S.rating > 99",  # ungrouped aggregate over empty input
        ]
        backend = ShardedBackend(n_shards=4)
        for sql in shapes:
            want = run_query(sql, db, "sql", backend="vectorized")
            got = execute_plan(self._plan(db, sql), sharded, backend=backend)
            assert want.bag_equal(got), sql


class TestShardedQueryService:
    @pytest.fixture
    def service(self):
        from repro.core import ShardedQueryService

        return ShardedQueryService(sailors_database(), n_shards=4)

    def test_answers_match_the_plain_service(self, service, db):
        from repro.core import QueryService

        plain = QueryService(sailors_database())
        for query in CANONICAL_QUERIES:
            for language, text in query.languages().items():
                want = plain.answer(text, language=language.lower())
                got = service.answer(text, language=language.lower())
                assert want.bag_equal(got), f"{query.id}/{language}"

    def test_result_cache_keys_on_the_shard_vector(self, service):
        sql = "SELECT DISTINCT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid"
        service.answer(sql)
        service.answer(sql)
        assert service.cache_info()["result_hits"] == 1
        vector = service._cache_version()
        assert vector == (service._generation,
                          service.sharded_db.structure_version,
                          *service.sharded_db.shard_versions())
        service.add_row("Reserves", (58, 101, "2025-07-01"))
        moved = service._cache_version()
        assert sum(1 for a, b in zip(vector, moved) if a != b) == 1
        service.answer(sql)
        assert service.cache_info()["result_misses"] == 2  # vector moved

    def test_writes_route_to_owning_shards(self, service):
        row = (31, 102, "2025-07-02")
        owner = service.shard_for("Reserves", row)
        before = len(service.sharded_db.shard(owner).relation("Reserves"))
        service.add_row("Reserves", row)
        assert len(service.sharded_db.shard(owner).relation("Reserves")) \
            == before + 1
        assert row in service.answer(
            "SELECT R.sid, R.bid, R.day FROM Reserves R").row_set()

    def test_point_queries_take_the_single_shard_path(self, service):
        before = service.execution_counts()["single_shard"]
        service.answer("SELECT S.sname FROM Sailors S WHERE S.sid = 58")
        assert service.execution_counts()["single_shard"] == before + 1

    def test_execution_counts_are_per_service(self, service):
        # Regression: counters live on the service's private backend, so
        # another service's traffic never bleeds into them.  The
        # plans_verified / plans_failed tallies are the exception: the
        # static verifier is process-wide by design, so they are excluded.
        from repro.core import ShardedQueryService
        from repro.engine.verify import verification_counts

        verifier_keys = set(verification_counts())

        def private(counts):
            return {k: v for k, v in counts.items() if k not in verifier_keys}

        other = ShardedQueryService(sailors_database(), n_shards=2)
        baseline = private(service.execution_counts())
        for _ in range(3):
            other.answer("SELECT S.sname FROM Sailors S WHERE S.sid = 31")
        assert private(service.execution_counts()) == baseline
        assert other.execution_counts()["single_shard"] >= 1

    def test_answers_are_frozen(self, service):
        answers = service.answer("SELECT S.sname FROM Sailors S")
        assert answers.is_frozen
        with pytest.raises(RelationError):
            answers.add(("Mallory",))

    def test_views_register_and_serve(self, service):
        # The historical gap — register_view raised unsupported — is fixed:
        # views materialize as per-shard partials (tests/test_sharded_views.py
        # covers maintenance in depth).
        view = service.register_view("SELECT S.sname FROM Sailors S")
        assert view.strategy == "sharded-bag"
        assert len(view.answer()) == len(
            service.answer("SELECT S.sname FROM Sailors S"))

    def test_prepared_handles_serve_and_track_writes(self, service):
        handle = service.prepare(
            "SELECT COUNT(*) AS n FROM Reserves R")
        (before,) = handle.answer().rows()[0]
        service.add_row("Reserves", (22, 103, "2025-07-03"))
        (after,) = handle.answer().rows()[0]
        assert after == before + 1

    def test_plain_database_is_auto_partitioned(self):
        from repro.core import ShardedQueryService

        service = ShardedQueryService(sailors_database(), n_shards=2,
                                      shard_keys={"Reserves": "bid"})
        assert service.sharded_db.n_shards == 2
        assert service.sharded_db.shard_key("Reserves") == ("bid",)
        assert len(service.answer("SELECT S.sname FROM Sailors S")) > 0


class TestConcurrentShardedServing:
    def test_readers_race_a_routing_writer(self):
        import threading

        from repro.core import ShardedQueryService
        from repro.data.sailors import random_sailors_database

        service = ShardedQueryService(
            random_sailors_database(n_sailors=60, n_boats=10, n_reserves=600,
                                    seed=7),
            n_shards=4)
        count_sql = "SELECT COUNT(*) AS n FROM Reserves R"
        handle = service.prepare(count_sql)
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader():
            last = -1
            while not stop.is_set():
                try:
                    (n,) = handle.answer().rows()[0]
                    assert n >= last, (n, last)  # appends only: monotone
                    last = n
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for i in range(120):
            service.add_row("Reserves", (i % 60 + 1, 101 + (i % 10), "2025-01-01"),
                            validate=False)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not errors, errors[0]
        (final,) = service.answer(count_sql).rows()[0]
        assert final == 720
