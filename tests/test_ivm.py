"""Incremental view maintenance: delta logs, delta plans, materialized views.

Three layers of coverage:

* storage — the bounded per-version delta log on :class:`Relation` (window
  queries, batch version bumps, overflow detection);
* engine — insert-delta rewriting (:mod:`repro.engine.delta`) and the
  :class:`~repro.engine.plan.DeltaScanP` windows on all three backends;
* service — :meth:`QueryService.register_view` semantics (strategies,
  lazy/eager refresh, rebuild triggers, serving integration), capped by the
  ISSUE's differential suite: **every catalog query in every language,
  registered as a view, stays bag-equal to from-scratch recomputation across
  randomized insert sequences, on all three executor backends** — driven by
  hypothesis.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MaterializedView, QueryService, QueryVisualizationPipeline
from repro.data.relation import Relation, relation_from_rows
from repro.data.sailors import random_sailors_database, sailors_database
from repro.engine import (
    DeltaRewriteError,
    DeltaScanP,
    DeltaUnavailable,
    anchor,
    asof_plan,
    base_relations,
    delta_terms,
    execute_plan,
    find_core,
    lower,
    optimize,
)
from repro.engine.delta import term_delta_relation
from repro.queries.catalog import CANONICAL_QUERIES

BACKENDS = ("row", "vectorized", "parallel")

JOIN_SQL = ("SELECT DISTINCT S.sname FROM Sailors S, Boats B, Reserves R "
            "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red'")
AGG_SQL = ("SELECT S.rating, COUNT(*) AS n, AVG(S.age) AS avg_age "
           "FROM Sailors S, Reserves R WHERE S.sid = R.sid GROUP BY S.rating")
RECURSIVE_DATALOG = (
    "reach(X, Y) :- reserves(X, Y, D). "
    "reach(X, Z) :- reach(X, Y), reserves(Y, Z, D). "
    "ans(X, Z) :- reach(X, Z)."
)
ANTI_SQL = ("SELECT S.sname FROM Sailors S WHERE NOT EXISTS "
            "(SELECT R.sid FROM Reserves R WHERE R.sid = S.sid)")


def fresh_answers(db, text, language=None):
    return QueryVisualizationPipeline(db, result_cache_size=0).answer(
        text, language=language)


# ---------------------------------------------------------------------------
# Storage: the bounded delta log
# ---------------------------------------------------------------------------

class TestDeltaLog:
    def rel(self):
        return relation_from_rows(
            "T", [("k", "int"), ("v", "string")], [(1, "a"), (2, "b")])

    def test_delta_since_returns_appends_in_order(self):
        rel = self.rel()
        v = rel.version
        rel.add((3, "c"))
        rel.add((4, "d"))
        assert rel.delta_since(v) == [(3, "c"), (4, "d")]
        assert rel.delta_since(rel.version) == []
        assert rel.delta_count_since(v) == 2

    def test_rows_at_is_the_old_prefix(self):
        rel = self.rel()
        v = rel.version
        rel.add((3, "c"))
        assert rel.rows_at(v) == [(1, "a"), (2, "b")]
        assert rel.rows_at(rel.version) == rel.rows()

    def test_batch_add_publishes_a_single_version_bump(self):
        rel = self.rel()
        v = rel.version
        rel.add_rows([(5, "e"), (6, "f"), (7, "g")])
        assert rel.version == v + 1
        assert rel.delta_since(v) == [(5, "e"), (6, "f"), (7, "g")]

    def test_empty_batch_does_not_bump(self):
        rel = self.rel()
        v = rel.version
        rel.add_rows([])
        assert rel.version == v

    def test_overflow_is_detected_not_truncated(self, monkeypatch):
        monkeypatch.setattr(Relation, "DELTA_LOG_LIMIT", 4)
        rel = self.rel()
        v = rel.version
        for i in range(6):
            rel.add((10 + i, "x"))
        assert rel.delta_since(v) is None
        assert rel.rows_at(v) is None
        # A recent-enough anchor still answers exactly.
        recent = rel.version - 2
        assert rel.delta_since(recent) == [(14, "x"), (15, "x")]

    def test_batch_log_entries_share_the_published_version(self):
        rel = self.rel()
        rel.add_rows([(8, "h"), (9, "i")])
        v = rel.version
        rel.add((10, "j"))
        assert rel.delta_since(v) == [(10, "j")]
        assert rel.delta_since(v - 1) == [(8, "h"), (9, "i"), (10, "j")]

    def test_failed_batch_applies_nothing(self):
        # Regression: a mid-batch validation failure must not leave already-
        # appended rows visible without a version bump (version-keyed caches
        # and delta windows would silently exclude them).
        rel = self.rel()
        v = rel.version
        with pytest.raises(Exception):
            rel.add_rows([(8, "h"), ("not-an-int", "i")])
        assert rel.version == v
        assert rel.rows() == [(1, "a"), (2, "b")]
        assert rel.delta_since(v) == []

    def test_racing_reader_built_key_index_is_not_double_appended(self):
        # Regression for the lock-free interleaving: a reader builds a key
        # index AFTER the writer appended a row but BEFORE the version bump
        # — the table already contains the new position, tagged with the
        # pre-bump version.  The writer's maintenance must not append the
        # position again and re-tag the entry as current.
        rel = self.rel()
        rel.column_store()
        key = ((0,), True)
        # Simulate the racing build's published state: position 2 (the row
        # the concurrent add is appending) is already in the table, but the
        # tag is the version the reader observed (pre-bump).
        rel._key_indexes[key] = (rel.version, {1: [0], 2: [1], 3: [2]})
        rel.add((3, "c"))
        assert rel.key_index((0,)) == {1: [0], 2: [1], 3: [2]}


# ---------------------------------------------------------------------------
# Engine: delta windows and delta terms
# ---------------------------------------------------------------------------

class TestDeltaScan:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_windows_on_all_backends(self, backend):
        db = sailors_database()
        rel = db.relation("Reserves")
        v = rel.version
        rel.add((29, 101, "2025-01-01"))
        cols = tuple(rel.schema.attribute_names)
        delta = execute_plan(DeltaScanP("Reserves", cols, v, "delta"), db,
                             backend=backend)
        asof = execute_plan(DeltaScanP("Reserves", cols, v, "asof"), db,
                            backend=backend)
        assert delta.rows() == [(29, 101, "2025-01-01")]
        assert len(asof) == len(rel) - 1

    def test_unanchored_template_refuses_to_execute(self):
        db = sailors_database()
        cols = tuple(db.relation("Reserves").schema.attribute_names)
        from repro.engine import PlanError

        with pytest.raises(PlanError):
            execute_plan(DeltaScanP("Reserves", cols, None, "delta"), db)

    def test_uncovered_window_raises_delta_unavailable(self, monkeypatch):
        monkeypatch.setattr(Relation, "DELTA_LOG_LIMIT", 2)
        db = sailors_database()
        rel = db.relation("Reserves")
        v = rel.version
        for i in range(4):
            rel.add((29, 101, f"2025-02-{i + 1:02d}"))
        cols = tuple(rel.schema.attribute_names)
        with pytest.raises(DeltaUnavailable):
            execute_plan(DeltaScanP("Reserves", cols, v, "delta"), db)


class TestDeltaTerms:
    def test_one_term_per_base_occurrence(self):
        db = sailors_database()
        plan = optimize(lower(JOIN_SQL, db.schema, "sql"), db)
        core, kind = find_core(plan)
        assert kind == "distinct"
        terms = delta_terms(core.input)
        # Sailors, Boats, Reserves: one delta term per occurrence.
        assert sorted(term_delta_relation(t) for t in terms) == \
            ["boats", "reserves", "sailors"]

    def test_terms_sum_to_the_exact_delta(self):
        db = random_sailors_database(n_sailors=30, n_boats=6, n_reserves=120,
                                     seed=13)
        plan = optimize(lower(JOIN_SQL, db.schema, "sql"), db)
        core, _kind = find_core(plan)
        bag = core.input
        anchors = {r: db.relation(r).version for r in base_relations(bag)}
        before = execute_plan(bag, db)
        db.relation("Reserves").add_rows(
            [(1, 101, "x"), (2, 102, "y")], validate=False)
        db.relation("Sailors").add((99, "Zed", 5, 30.0))
        after = execute_plan(bag, db)
        delta_rows: list = []
        for term in delta_terms(bag):
            delta_rows.extend(execute_plan(anchor(term, anchors), db).rows())
        combined = before.rows() + delta_rows
        assert sorted(map(repr, combined)) == sorted(map(repr, after.rows()))

    def test_asof_plan_reproduces_the_old_output(self):
        db = random_sailors_database(n_sailors=20, n_boats=5, n_reserves=80,
                                     seed=17)
        plan = optimize(lower(JOIN_SQL, db.schema, "sql"), db)
        core, _kind = find_core(plan)
        bag = core.input
        anchors = {r: db.relation(r).version for r in base_relations(bag)}
        before = execute_plan(bag, db)
        db.relation("Reserves").add((3, 103, "z"), validate=False)
        old = execute_plan(anchor(asof_plan(bag), anchors), db)
        assert old.bag_equal(before)

    def test_non_monotone_plans_are_rejected(self):
        db = sailors_database()
        plan = optimize(lower(ANTI_SQL, db.schema, "sql"), db)
        with pytest.raises(DeltaRewriteError):
            find_core(plan)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bag_union_of_asof_windows_respects_the_window(self, backend):
        # Regression: the vectorized bag-union concatenated the *full*
        # shared arrays of length-limited as-of batches, splicing
        # out-of-window rows into the output.
        db = sailors_database()
        rel = db.relation("Reserves")
        v = rel.version
        rel.add_rows([(29, 101, "new-1"), (31, 102, "new-2")])
        cols = tuple(rel.schema.attribute_names)
        from repro.engine import SetOpP

        union = SetOpP("union", DeltaScanP("Reserves", cols, v, "asof"),
                       DeltaScanP("Reserves", cols, v, "asof"),
                       distinct=False)
        result = execute_plan(union, db, backend=backend)
        old_rows = rel.rows_at(v)
        assert sorted(result.rows()) == sorted(old_rows + old_rows)


# ---------------------------------------------------------------------------
# Service: materialized views
# ---------------------------------------------------------------------------

class TestMaterializedViews:
    def test_register_and_serve(self):
        service = QueryService(sailors_database())
        view = service.register_view(JOIN_SQL, name="red")
        assert isinstance(view, MaterializedView)
        assert service.view("red") is view
        assert view.strategy == "distinct"
        assert view.answer().bag_equal(fresh_answers(service.db, JOIN_SQL))
        # answer() for the same text is served from the view.
        before = service.cache_info()["view_hits"]
        service.answer(JOIN_SQL)
        assert service.cache_info()["view_hits"] == before + 1

    def test_registration_is_idempotent(self):
        service = QueryService(sailors_database())
        view = service.register_view(AGG_SQL)
        assert service.register_view(AGG_SQL) is view
        assert len(service.views()) == 1

    def test_reregistration_with_conflicting_options_raises(self):
        # Regression: a second register_view for the same query must not
        # silently discard a different requested name or refresh policy.
        service = QueryService(sailors_database())
        view = service.register_view(AGG_SQL, refresh="lazy")
        with pytest.raises(ValueError):
            service.register_view(AGG_SQL, name="dashboard")
        with pytest.raises(ValueError):
            service.register_view(AGG_SQL, refresh="eager")
        assert service.register_view(AGG_SQL, name=view.name) is view

    def test_duplicate_name_rejected(self):
        service = QueryService(sailors_database())
        service.register_view(AGG_SQL, name="v")
        with pytest.raises(ValueError):
            service.register_view(JOIN_SQL, name="v")

    def test_lazy_refresh_absorbs_writes_incrementally(self):
        service = QueryService(sailors_database())
        view = service.register_view(JOIN_SQL)
        rebuilds_before = view.rebuilds
        service.add_row("Reserves", (32, 102, "2025-03-01"))
        assert view.answer().bag_equal(fresh_answers(service.db, JOIN_SQL))
        assert view.rebuilds == rebuilds_before
        assert view.incremental_refreshes == 1
        assert view.version == service.db.version

    def test_eager_views_are_current_after_every_write(self):
        service = QueryService(sailors_database())
        view = service.register_view(AGG_SQL, refresh="eager")
        service.add_rows("Reserves", [(29, 103, "a"), (31, 104, "b")])
        assert view.info()["current"]
        assert view.answer().bag_equal(fresh_answers(service.db, AGG_SQL))

    def test_aggregate_strategy_maintains_accumulators(self):
        service = QueryService(sailors_database())
        view = service.register_view(AGG_SQL)
        assert view.strategy == "aggregate"
        for i in range(3):
            service.add_row("Reserves", (58, 101 + i, f"2025-04-{i + 1:02d}"))
            assert view.answer().bag_equal(fresh_answers(service.db, AGG_SQL))
        assert view.incremental_refreshes == 3

    def test_recursive_datalog_resumes_semi_naive(self):
        db = sailors_database()
        service = QueryService(db)
        view = service.register_view(RECURSIVE_DATALOG, language="datalog")
        assert view.strategy == "datalog"
        service.add_rows("Reserves", [(22, 58, "d"), (58, 999, "e")],
                         validate=False)
        assert view.answer().bag_equal(
            fresh_answers(service.db, RECURSIVE_DATALOG, "datalog"))
        assert view.incremental_refreshes == 1

    def test_non_maintainable_query_rebuilds_but_stays_correct(self):
        service = QueryService(sailors_database())
        view = service.register_view(ANTI_SQL)
        assert view.strategy == "rebuild"
        service.add_row("Reserves", (95, 101, "2025-05-01"))
        assert view.answer().bag_equal(fresh_answers(service.db, ANTI_SQL))
        assert view.rebuilds >= 2  # initial + the refresh

    def test_log_overflow_triggers_rebuild(self, monkeypatch):
        monkeypatch.setattr(Relation, "DELTA_LOG_LIMIT", 8)
        service = QueryService(sailors_database())
        view = service.register_view(JOIN_SQL)
        rebuilds = view.rebuilds
        with service.writing() as db:
            reserves = db.relation("Reserves")
            for i in range(20):  # far past the log bound
                reserves.add((22, 101, f"2025-06-{(i % 28) + 1:02d}"))
        assert view.answer().bag_equal(fresh_answers(service.db, JOIN_SQL))
        assert view.rebuilds == rebuilds + 1

    def test_structure_change_triggers_rebuild(self):
        service = QueryService(sailors_database())
        view = service.register_view(JOIN_SQL)
        rebuilds = view.rebuilds
        with service.writing() as db:
            extra = relation_from_rows("Extra", [("x", "int")], [(1,)])
            db.add_relation(extra)
        assert view.answer().bag_equal(fresh_answers(service.db, JOIN_SQL))
        assert view.rebuilds == rebuilds + 1

    def test_views_answer_at_a_single_version(self):
        service = QueryService(sailors_database())
        view = service.register_view(JOIN_SQL)
        answers = view.answer()
        assert answers.is_frozen
        assert view.version == service.db.version
        service.add_row("Reserves", (71, 102, "2025-07-01"))
        # The old snapshot is untouched; a new answer absorbs the write.
        assert view.answer() is not answers

    def test_unregister_restores_normal_serving(self):
        service = QueryService(sailors_database())
        view = service.register_view(JOIN_SQL, name="gone")
        service.unregister_view("gone")
        assert not service.views()
        hits = service.cache_info()["view_hits"]
        service.answer(JOIN_SQL)
        assert service.cache_info()["view_hits"] == hits
        assert view.answer().bag_equal(fresh_answers(service.db, JOIN_SQL))

    def test_fallback_view_surfaces_warnings(self):
        service = QueryService(sailors_database())
        fallback = ("SELECT S.sname FROM Sailors S LEFT JOIN Reserves R "
                    "ON S.sid = R.sid WHERE R.sid IS NULL")
        service.register_view(fallback)
        warnings: list[str] = []
        service.answer(fallback, warnings=warnings)
        assert warnings and "fallback" in warnings[0]


class TestViewConcurrency:
    """Readers on materialized views racing a writer: frozen answers, no
    exceptions, and a cache that equals a fresh evaluation once settled."""

    def test_view_storm(self):
        import threading

        service = QueryService(
            random_sailors_database(n_sailors=60, n_boats=8, n_reserves=300,
                                    seed=23))
        views = [service.register_view(JOIN_SQL, name="join"),
                 service.register_view(AGG_SQL, name="agg", refresh="eager")]
        errors: list[BaseException] = []
        gate = threading.Barrier(5)

        def reader() -> None:
            try:
                gate.wait()
                for _ in range(40):
                    for view in views:
                        answers = view.answer()
                        assert answers.is_frozen
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        def writer() -> None:
            try:
                gate.wait()
                for i in range(60):
                    service.add_rows(
                        "Reserves",
                        [(i % 60 + 1, i % 8 + 101, f"2025-08-{i % 28 + 1:02d}")],
                        validate=False)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(t.is_alive() for t in threads), "storm hung"
        assert not errors, f"exceptions under concurrency: {errors!r}"
        for view, text in ((views[0], JOIN_SQL), (views[1], AGG_SQL)):
            assert view.answer().bag_equal(fresh_answers(service.db, text))


class TestServiceBatchVersioning:
    """Regression: batch writes publish a single version bump (ISSUE 4)."""

    def test_add_rows_bumps_once(self):
        service = QueryService(sailors_database())
        v = service.db.version
        new_version = service.add_rows(
            "Reserves", [(22, 101, "a"), (31, 102, "b"), (64, 103, "c")])
        assert new_version == v + 1
        assert service.db.version == v + 1
        assert len(service.db.relation("Reserves")) == 13

    def test_add_row_still_bumps_per_call(self):
        service = QueryService(sailors_database())
        v = service.db.version
        service.add_row("Reserves", (22, 101, "a"))
        service.add_row("Reserves", (31, 102, "b"))
        assert service.db.version == v + 2


# ---------------------------------------------------------------------------
# The differential suite: every catalog query, randomized inserts, 3 backends
# ---------------------------------------------------------------------------

def _catalog_texts():
    texts = []
    for query in CANONICAL_QUERIES:
        for language, text in (("sql", query.sql), ("ra", query.ra),
                               ("trc", query.trc), ("drc", query.drc),
                               ("datalog", query.datalog)):
            texts.append((query.id, language, text))
    return texts


_SAILOR_IDS = list(range(1, 40))
_BOAT_IDS = list(range(101, 110))
_COLORS = ["red", "green", "blue"]

_insert_step = st.tuples(
    st.sampled_from(["sailors", "boats", "reserves", "reserves", "reserves"]),
    st.integers(min_value=0, max_value=10_000),
    st.booleans(),  # batch (add_rows) vs single-row writes
)


def _apply_step(service, step, counter):
    """Turn one strategy draw into valid rows for the chosen relation."""
    relation, seed, batch = step
    if relation == "sailors":
        rows = [(200 + counter, f"gen{counter}", seed % 11, 18.0 + seed % 40)]
    elif relation == "boats":
        rows = [(300 + counter, f"boat{counter}", _COLORS[seed % 3])]
    else:
        rows = [(_SAILOR_IDS[(seed + i) % len(_SAILOR_IDS)],
                 _BOAT_IDS[(seed * 7 + i) % len(_BOAT_IDS)],
                 f"2025-01-{(seed + i) % 28 + 1:02d}")
                for i in range(1 + seed % 3)]
    if batch:
        service.add_rows(relation, rows, validate=False)
    else:
        for row in rows:
            service.add_row(relation, row, validate=False)


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(steps=st.lists(_insert_step, min_size=1, max_size=4))
def test_catalog_views_stay_bag_equal_under_random_inserts(backend, steps):
    service = QueryService(sailors_database(), backend=backend)
    views = []
    for qid, language, text in _catalog_texts():
        views.append((service.register_view(
            text, language=language, name=f"{qid}-{language}"), language, text))
    for counter, step in enumerate(steps):
        _apply_step(service, step, counter)
        reference = QueryVisualizationPipeline(service.db, backend=backend,
                                               result_cache_size=0)
        for view, language, text in views:
            got = view.answer()
            want = reference.answer(text, language=language)
            assert got.bag_equal(want), (
                f"view {view.name} ({view.strategy}) diverged after "
                f"{counter + 1} step(s) on backend {backend}"
            )
