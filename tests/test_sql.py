"""Tests for the SQL substrate: lexer, parser, formatter, and evaluator."""

from __future__ import annotations

import pytest

from repro.expr import Comparison, Exists, InSubquery, QuantifiedComparison
from repro.sql import (
    Join,
    SQLEvaluationError,
    SQLSyntaxError,
    SelectQuery,
    SetOpQuery,
    TableRef,
    base_tables,
    count_table_occurrences,
    evaluate_sql,
    format_query,
    format_query_pretty,
    parse_sql,
    parse_sql_expression,
    tokenize,
    walk_queries,
)


def names(relation) -> set:
    return {row[0] for row in relation.distinct_rows()}


class TestLexer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT sname FROM Sailors")
        assert [t.kind for t in tokens] == ["keyword", "name", "keyword", "name", "eof"]
        assert tokens[0].text == "select"

    def test_strings_and_numbers(self):
        tokens = tokenize("WHERE x = 'O''Brien' AND y >= 3.5")
        strings = [t for t in tokens if t.kind == "string"]
        assert strings[0].text == "O'Brien"
        assert any(t.kind == "number" and t.text == "3.5" for t in tokens)

    def test_comments_are_skipped(self):
        tokens = tokenize("SELECT 1 -- comment\n/* block */ FROM T")
        assert [t.text for t in tokens if t.kind == "keyword"] == ["select", "from"]

    def test_quoted_identifiers(self):
        tokens = tokenize('SELECT "weird name" FROM T')
        assert any(t.kind == "name" and t.text == "weird name" for t in tokens)

    def test_illegal_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT ? FROM T")


class TestParser:
    def test_basic_structure(self):
        query = parse_sql("SELECT DISTINCT S.sname AS name FROM Sailors S WHERE S.rating > 7")
        assert isinstance(query, SelectQuery)
        assert query.distinct
        assert query.select_items[0].alias == "name"
        assert query.from_items[0] == TableRef("Sailors", "S")
        assert isinstance(query.where, Comparison)

    def test_subquery_predicates(self):
        query = parse_sql(
            "SELECT S.sname FROM Sailors S WHERE EXISTS (SELECT 1 FROM Reserves R "
            "WHERE R.sid = S.sid) AND S.sid IN (SELECT sid FROM Reserves) "
            "AND S.rating >= ALL (SELECT rating FROM Sailors)"
        )
        kinds = [type(c).__name__ for c in query.where.operands]
        assert kinds == ["Exists", "InSubquery", "QuantifiedComparison"]
        assert query.nesting_depth() == 2

    def test_set_operations_and_order_limit(self):
        query = parse_sql(
            "SELECT sname FROM Sailors UNION SELECT bname FROM Boats ORDER BY sname LIMIT 3"
        )
        assert isinstance(query, SetOpQuery)
        assert query.op == "union"
        assert query.limit == 3
        assert len(query.order_by) == 1

    def test_joins(self):
        query = parse_sql(
            "SELECT * FROM Sailors S JOIN Reserves R ON S.sid = R.sid "
            "LEFT OUTER JOIN Boats B ON R.bid = B.bid"
        )
        join = query.from_items[0]
        assert isinstance(join, Join) and join.kind == "left"
        assert isinstance(join.left, Join) and join.left.kind == "inner"
        assert query.select_star

    def test_natural_and_using_joins(self):
        natural = parse_sql("SELECT sname FROM Sailors NATURAL JOIN Reserves")
        assert natural.from_items[0].natural
        using = parse_sql("SELECT sname FROM Sailors JOIN Reserves USING (sid)")
        assert using.from_items[0].using == ("sid",)

    def test_group_by_having(self):
        query = parse_sql(
            "SELECT B.color, COUNT(*) AS n FROM Boats B GROUP BY B.color HAVING COUNT(*) > 1"
        )
        assert len(query.group_by) == 1
        assert query.having is not None

    def test_star_qualifier_and_scalar_subquery(self):
        query = parse_sql("SELECT S.*, (SELECT MAX(rating) FROM Sailors) FROM Sailors S")
        assert query.star_qualifiers == ("S",)
        query2 = parse_sql_expression("(SELECT MAX(rating) FROM Sailors) > 5")
        assert isinstance(query2, Comparison)

    def test_between_like_in_list(self):
        query = parse_sql(
            "SELECT sname FROM Sailors WHERE age BETWEEN 20 AND 40 AND sname LIKE 'D%' "
            "AND rating IN (7, 8, 9) AND bname IS NOT NULL"
        )
        assert len(query.where.operands) == 4

    def test_syntax_errors(self):
        for bad in [
            "SELECT FROM Sailors",
            "SELECT sname FROM Sailors WHERE rating >",
            "SELECT sname FROM Sailors WHERE",
            "SELECT sname FROM Sailors GROUP",
            "SELECT sname FROM (SELECT * FROM Sailors)",  # missing alias
            "SELECT sname FROM Sailors LIMIT x",
        ]:
            with pytest.raises(SQLSyntaxError):
                parse_sql(bad)

    def test_structural_helpers(self):
        query = parse_sql(
            "SELECT S.sname FROM Sailors S WHERE S.sid IN "
            "(SELECT R.sid FROM Reserves R WHERE R.bid IN (SELECT bid FROM Boats))"
        )
        assert base_tables(query) == ["Sailors", "Reserves", "Boats"]
        assert count_table_occurrences(query) == 3
        assert len(list(walk_queries(query))) == 3


class TestFormatter:
    def test_round_trip_preserves_semantics(self, db, canonical_query):
        query = parse_sql(canonical_query.sql)
        text = format_query(query)
        again = parse_sql(text)
        assert evaluate_sql(query, db).set_equal(evaluate_sql(again, db))

    def test_pretty_format_is_multiline(self):
        query = parse_sql("SELECT sname FROM Sailors WHERE rating > 7 ORDER BY sname")
        pretty = format_query_pretty(query)
        assert pretty.count("\n") >= 2
        assert pretty.startswith("SELECT")

    def test_formats_joins_and_setops(self):
        text = format_query(parse_sql(
            "SELECT sname FROM Sailors NATURAL JOIN Reserves UNION ALL SELECT bname FROM Boats"))
        assert "NATURAL JOIN" in text and "UNION ALL" in text


class TestEvaluator:
    def test_canonical_queries(self, db, canonical_query):
        result = evaluate_sql(canonical_query.sql, db)
        assert names(result) == set(canonical_query.expected_names)

    def test_canonical_queries_on_empty_database(self, empty_db, canonical_query):
        assert evaluate_sql(canonical_query.sql, empty_db).is_empty()

    def test_projection_aliases_and_expressions(self, db):
        result = evaluate_sql("SELECT S.sname AS who, S.age + 1 AS older FROM Sailors S "
                              "WHERE S.sid = 22", db)
        assert result.attribute_names == ("who", "older")
        assert result.rows() == [("Dustin", 46.0)]

    def test_select_star_and_qualified_star(self, db):
        result = evaluate_sql("SELECT * FROM Boats", db)
        assert len(result.attribute_names) == 3
        result = evaluate_sql("SELECT B.* , B.bid FROM Boats B WHERE B.color = 'green'", db)
        assert result.rows() == [(103, "Clipper", "green", 103)]

    def test_bag_semantics_without_distinct(self, db):
        rows = evaluate_sql("SELECT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid", db)
        assert len(rows) == 10  # one per reservation
        distinct = evaluate_sql(
            "SELECT DISTINCT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid", db)
        assert len(distinct) == 3

    def test_correlated_exists(self, db):
        sql = ("SELECT S.sname FROM Sailors S WHERE EXISTS "
               "(SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = 103)")
        assert names(evaluate_sql(sql, db)) == {"Dustin", "Lubber", "Horatio"}

    def test_not_exists_is_complementary(self, db):
        base = "SELECT S.sid FROM Sailors S WHERE {} (SELECT * FROM Reserves R WHERE R.sid = S.sid)"
        some = names(evaluate_sql(base.format("EXISTS"), db))
        none = names(evaluate_sql(base.format("NOT EXISTS"), db))
        assert some | none == set(sailor[0] for sailor in db.relation("Sailors").rows())
        assert some & none == set()

    def test_all_any_quantifiers(self, db):
        top = evaluate_sql(
            "SELECT sname FROM Sailors WHERE rating >= ALL (SELECT rating FROM Sailors)", db)
        assert names(top) == {"Rusty", "Zorba"}
        some = evaluate_sql(
            "SELECT DISTINCT S.sname FROM Sailors S WHERE S.sid = ANY "
            "(SELECT R.sid FROM Reserves R WHERE R.bid = 102)", db)
        assert names(some) == {"Dustin", "Lubber", "Horatio"}

    def test_scalar_subquery(self, db):
        result = evaluate_sql(
            "SELECT S.sname FROM Sailors S WHERE S.rating = (SELECT MAX(S2.rating) FROM Sailors S2)",
            db)
        assert names(result) == {"Rusty", "Zorba"}

    def test_group_by_having_order(self, db):
        result = evaluate_sql(
            "SELECT B.color, COUNT(*) AS n FROM Boats B GROUP BY B.color "
            "HAVING COUNT(*) >= 1 ORDER BY n DESC, B.color", db)
        assert result.rows()[0] == ("red", 2)
        assert set(result.rows()) == {("red", 2), ("blue", 1), ("green", 1)}

    def test_aggregates_without_group_by(self, db):
        result = evaluate_sql(
            "SELECT COUNT(*) AS n, AVG(S.age) AS a, MIN(S.age) AS lo, MAX(S.age) AS hi "
            "FROM Sailors S", db)
        n, avg, lo, hi = result.rows()[0]
        assert n == 10 and lo == 16.0 and hi == 63.5
        assert avg == pytest.approx(36.9)

    def test_count_distinct(self, db):
        assert evaluate_sql("SELECT COUNT(DISTINCT sname) FROM Sailors", db).rows() == [(9,)]

    def test_aggregate_on_empty_database(self, empty_db):
        result = evaluate_sql("SELECT COUNT(*) AS n, SUM(age) AS s FROM Sailors", empty_db)
        assert result.rows() == [(0, None)]

    def test_group_by_with_star_rejected(self, db):
        with pytest.raises(SQLEvaluationError):
            evaluate_sql("SELECT * FROM Sailors GROUP BY rating", db)

    def test_outer_joins(self, db):
        left = evaluate_sql(
            "SELECT S.sname FROM Sailors S LEFT OUTER JOIN Reserves R ON S.sid = R.sid "
            "WHERE R.sid IS NULL", db)
        assert names(left) == {"Brutus", "Andy", "Rusty", "Zorba", "Art", "Bob"}
        full = evaluate_sql(
            "SELECT COUNT(*) FROM Sailors S FULL OUTER JOIN Reserves R ON S.sid = R.sid", db)
        assert full.rows() == [(16,)]

    def test_natural_join_and_using(self, db):
        natural = evaluate_sql("SELECT sname FROM Sailors NATURAL JOIN Reserves WHERE bid = 103", db)
        assert names(natural) == {"Dustin", "Lubber", "Horatio"}
        using = evaluate_sql("SELECT sname FROM Sailors JOIN Reserves USING (sid) WHERE bid = 103", db)
        assert names(using) == names(natural)

    def test_derived_table(self, db):
        result = evaluate_sql(
            "SELECT T.sname FROM (SELECT S.sname, S.rating FROM Sailors S WHERE S.rating > 8) T "
            "WHERE T.rating = 10", db)
        assert names(result) == {"Rusty", "Zorba"}

    def test_set_operations(self, db):
        union = evaluate_sql("SELECT bid FROM Boats WHERE color = 'red' UNION "
                             "SELECT bid FROM Boats WHERE bid = 102", db)
        assert len(union) == 2
        union_all = evaluate_sql("SELECT bid FROM Boats WHERE color = 'red' UNION ALL "
                                 "SELECT bid FROM Boats WHERE bid = 102", db)
        assert len(union_all) == 3
        intersect = evaluate_sql("SELECT sid FROM Reserves INTERSECT SELECT sid FROM Sailors "
                                 "WHERE rating > 7", db)
        assert set(intersect.rows()) == {(31,), (74,)}
        except_ = evaluate_sql("SELECT sid FROM Sailors EXCEPT SELECT sid FROM Reserves", db)
        assert len(except_) == 6

    def test_set_operation_arity_mismatch(self, db):
        with pytest.raises(SQLEvaluationError):
            evaluate_sql("SELECT sid, sname FROM Sailors UNION SELECT sid FROM Sailors", db)

    def test_order_by_and_limit(self, db):
        result = evaluate_sql("SELECT sname, age FROM Sailors ORDER BY age DESC LIMIT 2", db)
        assert result.rows() == [("Bob", 63.5), ("Lubber", 55.5)]
        by_alias = evaluate_sql("SELECT sname, age AS years FROM Sailors ORDER BY years LIMIT 1", db)
        assert by_alias.rows() == [("Zorba", 16.0)]

    def test_duplicate_output_names_are_made_unique(self, db):
        result = evaluate_sql("SELECT S.sid, R.sid FROM Sailors S, Reserves R "
                              "WHERE S.sid = R.sid LIMIT 1", db)
        assert result.attribute_names == ("sid", "sid_2")
