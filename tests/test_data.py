"""Tests for the relational data substrate (types, schemas, relations, databases)."""

from __future__ import annotations

import pytest

from repro.data import (
    Attribute,
    Database,
    DataType,
    Relation,
    RelationError,
    RelationSchema,
    SchemaError,
    check_value,
    coerce_value,
    comparable,
    database_family,
    empty_sailors_database,
    format_value,
    infer_type,
    make_schema,
    merge_databases,
    parse_type,
    random_database,
    random_relation,
    random_sailors_database,
    relation_from_rows,
    sailors_database,
    union_compatible,
)
from repro.data.sailors import BOATS_SCHEMA, RESERVES_SCHEMA, SAILORS_SCHEMA


class TestTypes:
    def test_parse_type_aliases(self):
        assert parse_type("integer") is DataType.INT
        assert parse_type("varchar") is DataType.STRING
        assert parse_type("real") is DataType.FLOAT
        assert parse_type("boolean") is DataType.BOOL
        assert parse_type(DataType.INT) is DataType.INT

    def test_parse_type_unknown(self):
        with pytest.raises(ValueError):
            parse_type("blob")

    def test_infer_type(self):
        assert infer_type(3) is DataType.INT
        assert infer_type(3.5) is DataType.FLOAT
        assert infer_type("x") is DataType.STRING
        assert infer_type(True) is DataType.BOOL

    def test_infer_type_rejects_unknown(self):
        with pytest.raises(ValueError):
            infer_type([1, 2])

    def test_check_value_null_handling(self):
        assert check_value(None, DataType.INT)
        assert not check_value(None, DataType.INT, allow_null=False)

    def test_check_value_bool_is_not_int(self):
        assert not check_value(True, DataType.INT)
        assert check_value(True, DataType.BOOL)

    def test_check_value_int_widens_to_float(self):
        assert check_value(3, DataType.FLOAT)
        assert not check_value("3", DataType.FLOAT)

    def test_coerce_value(self):
        assert coerce_value("12", DataType.INT) == 12
        assert coerce_value(12, DataType.STRING) == "12"
        assert coerce_value("true", DataType.BOOL) is True
        assert coerce_value(None, DataType.INT) is None

    def test_coerce_value_failure(self):
        with pytest.raises(ValueError):
            coerce_value("abc", DataType.INT)

    def test_format_value(self):
        assert format_value(None) == "NULL"
        assert format_value(True) == "TRUE"
        assert format_value("o'brien") == "'o''brien'"
        assert format_value(45.0) == "45.0"
        assert format_value(7) == "7"

    def test_comparable(self):
        assert comparable(1, 2.5)
        assert comparable("a", "b")
        assert not comparable(1, "a")
        assert not comparable(None, 3)
        assert comparable(True, False)
        assert not comparable(True, 1)


class TestSchema:
    def test_attribute_requires_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_schema_basic_accessors(self):
        assert SAILORS_SCHEMA.arity == 4
        assert SAILORS_SCHEMA.attribute_names == ("sid", "sname", "rating", "age")
        assert SAILORS_SCHEMA.index_of("rating") == 2
        assert SAILORS_SCHEMA.dtype_of("age") is DataType.FLOAT
        assert "sid" in SAILORS_SCHEMA
        assert "color" not in SAILORS_SCHEMA

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", (Attribute("a"), Attribute("a")))

    def test_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            SAILORS_SCHEMA.attribute("color")

    def test_project_and_rename(self):
        projected = SAILORS_SCHEMA.project(["sname", "sid"])
        assert projected.attribute_names == ("sname", "sid")
        renamed = SAILORS_SCHEMA.rename_attributes({"sid": "id"})
        assert renamed.attribute_names[0] == "id"
        assert SAILORS_SCHEMA.renamed("S").name == "S"

    def test_concat_prefixes_clashing_names(self):
        combined = SAILORS_SCHEMA.concat(RESERVES_SCHEMA)
        assert "Sailors.sid" in combined.attribute_names
        assert "Reserves.sid" in combined.attribute_names
        assert "bid" in combined.attribute_names

    def test_union_compatibility(self):
        assert SAILORS_SCHEMA.is_union_compatible(SAILORS_SCHEMA)
        assert not SAILORS_SCHEMA.is_union_compatible(BOATS_SCHEMA)

    def test_make_schema(self):
        schema = make_schema("T", [("a", "int"), ("b", "text")])
        assert schema.arity == 2
        assert schema.dtype_of("b") is DataType.STRING

    def test_database_schema_lookup_case_insensitive(self):
        db = sailors_database()
        assert db.schema.relation("sailors").name == "Sailors"
        with pytest.raises(SchemaError):
            db.schema.relation("Pirates")


class TestRelation:
    def test_rows_and_dicts(self):
        rel = relation_from_rows("T", [("a", "int"), ("b", "string")], [(1, "x"), (2, "y")])
        assert len(rel) == 2
        assert rel.to_dicts()[0] == {"a": 1, "b": "x"}
        assert rel.column("b") == ["x", "y"]

    def test_add_from_mapping(self):
        rel = Relation(make_schema("T", [("a", "int"), ("b", "string")]))
        rel.add({"b": "x", "a": 1})
        assert rel.rows() == [(1, "x")]

    def test_arity_mismatch_rejected(self):
        rel = Relation(make_schema("T", [("a", "int")]))
        with pytest.raises(RelationError):
            rel.add((1, 2))

    def test_type_validation(self):
        rel = Relation(make_schema("T", [("a", "int")]))
        with pytest.raises(RelationError):
            rel.add(("not an int",))
        rel.add((None,))  # NULL is allowed
        assert rel.rows() == [(None,)]

    def test_bag_vs_set_semantics(self):
        rel = relation_from_rows("T", [("a", "int")], [(1,), (1,), (2,)])
        assert rel.cardinality() == 3
        assert rel.cardinality(distinct=True) == 2
        assert rel.distinct().rows() == [(1,), (2,)]

    def test_equality_is_bag_based(self):
        a = relation_from_rows("T", [("a", "int")], [(1,), (1,)])
        b = relation_from_rows("T", [("a", "int")], [(1,)])
        assert not a.bag_equal(b)
        assert a.set_equal(b)
        assert a != b

    def test_projection_and_filter(self):
        db = sailors_database()
        sailors = db.relation("Sailors")
        names = sailors.project_columns(["sname"])
        assert ("Dustin",) in names.rows()
        old = sailors.filter(lambda row: row["age"] > 50)
        assert set(old.column("sname")) == {"Lubber", "Bob"}

    def test_to_table_renders(self):
        db = sailors_database()
        text = db.relation("Boats").to_table()
        assert "Interlake" in text
        assert text.count("\n") >= 6

    def test_to_table_truncation(self):
        rel = relation_from_rows("T", [("a", "int")], [(i,) for i in range(30)])
        text = rel.to_table(max_rows=5)
        assert "more row(s)" in text

    def test_union_compatibility_helpers(self):
        a = relation_from_rows("A", [("x", "int")], [])
        b = relation_from_rows("B", [("y", "int")], [])
        c = relation_from_rows("C", [("z", "string")], [])
        assert union_compatible(a, b)
        assert not union_compatible(a, c)

    def test_relations_are_not_hashable(self):
        rel = relation_from_rows("T", [("a", "int")], [])
        with pytest.raises(TypeError):
            hash(rel)


class TestDatabase:
    def test_sailors_instance_shape(self):
        db = sailors_database()
        assert set(db.relation_names) == {"Sailors", "Boats", "Reserves"}
        assert len(db.relation("Sailors")) == 10
        assert len(db.relation("Boats")) == 4
        assert len(db.relation("Reserves")) == 10
        assert db.total_rows() == 24

    def test_lookup_case_insensitive(self):
        db = sailors_database()
        assert db["sailors"].schema.name == "Sailors"
        assert "RESERVES" in db

    def test_active_domain(self):
        db = sailors_database()
        domain = db.active_domain()
        assert 102 in domain
        assert "red" in domain
        assert "Dustin" in domain

    def test_copy_is_independent(self):
        db = sailors_database()
        copy = db.copy()
        copy.relation("Boats").add((105, "Dinghy", "white"))
        assert len(db.relation("Boats")) == 4
        assert len(copy.relation("Boats")) == 5

    def test_drop_relation(self):
        db = sailors_database()
        db.drop_relation("Boats")
        assert "Boats" not in db
        with pytest.raises(SchemaError):
            db.drop_relation("Boats")

    def test_merge_databases(self):
        merged = merge_databases(empty_sailors_database(), sailors_database())
        assert len(merged.relation("Sailors")) == 10

    def test_from_dict(self):
        db = Database.from_dict({"T": ([("a", "int")], [(1,), (2,)])})
        assert len(db.relation("T")) == 2

    def test_summary(self):
        assert "Sailors: 4 columns, 10 rows" in sailors_database().summary()


class TestGenerators:
    def test_random_sailors_database_sizes(self):
        db = random_sailors_database(n_sailors=20, n_boats=5, n_reserves=40, seed=1)
        assert len(db.relation("Sailors")) == 20
        assert len(db.relation("Boats")) == 5
        assert len(db.relation("Reserves")) == 40

    def test_random_sailors_database_reproducible(self):
        a = random_sailors_database(seed=7, n_sailors=10, n_boats=4, n_reserves=20)
        b = random_sailors_database(seed=7, n_sailors=10, n_boats=4, n_reserves=20)
        assert a.relation("Sailors").rows() == b.relation("Sailors").rows()

    def test_reserves_reference_existing_keys(self):
        db = random_sailors_database(seed=3, n_sailors=8, n_boats=4, n_reserves=30)
        sids = set(db.relation("Sailors").column("sid"))
        bids = set(db.relation("Boats").column("bid"))
        for sid, bid, _day in db.relation("Reserves").rows():
            assert sid in sids
            assert bid in bids

    def test_random_relation_and_database(self):
        rel = random_relation(SAILORS_SCHEMA, n_rows=12, seed=0)
        assert len(rel) == 12
        db = random_database(sailors_database().schema, rows_per_relation=5, seed=2)
        assert all(len(r) == 5 for r in db)

    def test_database_family_distinct_seeds(self):
        family = database_family(sailors_database().schema, count=3, seed=0)
        assert len(family) == 3
        assert family[0].relation("Sailors").rows() != family[1].relation("Sailors").rows()
