"""Tests for the database-community formalisms: QBE, DFQL, SQLVis, Visual SQL,
conceptual graphs, and string diagrams."""

from __future__ import annotations

import pytest

from repro.datalog import evaluate_datalog
from repro.diagrams import available_builders, build_diagram
from repro.diagrams.common import CannotRepresent
from repro.diagrams.conceptual import conceptual_graph_diagram
from repro.diagrams.dfql import dfql_diagram, dfql_from_ra
from repro.diagrams.qbe import (
    qbe_diagram,
    qbe_division_steps,
    qbe_from_query,
)
from repro.diagrams.sqlvis import sqlvis_diagram
from repro.diagrams.string_diagrams import string_diagram_for_query
from repro.diagrams.visual_sql import visual_sql_diagram
from repro.queries import (
    CANONICAL_QUERIES,
    Q1_BASIC_JOIN,
    Q2_RED_BOAT,
    Q3_RED_NOT_GREEN,
    Q4_ALL_RED,
)
from repro.ra import parse_ra


class TestQBE:
    def test_skeleton_tables_share_example_elements(self, schema):
        qbe = qbe_from_query(Q1_BASIC_JOIN.sql, schema)
        assert len(qbe.tables) == 2
        sailors = next(t for t in qbe.tables if t.relation == "Sailors")
        reserves = next(t for t in qbe.tables if t.relation == "Reserves")
        assert sailors.entries["sid"] == reserves.entries["sid"]
        assert sailors.entries["sname"].startswith("P.")
        assert reserves.entries["bid"] == "102"

    def test_negated_row_for_simple_negation(self, schema):
        qbe = qbe_from_query(Q3_RED_NOT_GREEN.sql, schema)
        assert any(t.negated for t in qbe.tables)

    def test_division_needs_two_screens(self, schema):
        with pytest.raises(CannotRepresent):
            qbe_from_query(Q4_ALL_RED.sql, schema)
        steps = qbe_division_steps(schema)
        assert len(steps) == 2
        assert steps[0].result_name == "BadSid"
        assert any(t.negated for t in steps[0].tables)
        assert any(t.relation == "BadSid" and t.negated for t in steps[1].tables)

    def test_division_steps_mirror_datalog_pattern(self, db, schema):
        """The two QBE steps compute the same answer as the Datalog division program."""
        result = evaluate_datalog(Q4_ALL_RED.datalog, db)
        assert {row[0] for row in result.rows()} == {"Dustin", "Lubber"}
        steps = qbe_division_steps(schema)
        # step1 tables = dividend + divisor + negated dividend; step2 = dividend + temp.
        assert len(steps[0].tables) == 3 and len(steps[1].tables) == 2

    def test_diagram_rendering(self, schema):
        diagram = qbe_diagram(Q2_RED_BOAT.sql, schema)
        labels = [n.label for n in diagram.nodes.values()]
        assert "Sailors" in labels and "Boats" in labels
        ascii_art = diagram.to_ascii()
        assert "P._SNAME" in ascii_art or "P." in ascii_art

    def test_division_step_diagrams_render(self, schema):
        for step in qbe_division_steps(schema):
            rendered = step.to_diagram(schema)
            assert rendered.nodes


class TestDFQL:
    def test_operator_tree_from_ra(self, schema):
        from repro.queries import Q4_ALL_RED_DIVISION_RA

        diagram = dfql_from_ra(parse_ra(Q4_ALL_RED_DIVISION_RA))
        labels = [n.label for n in diagram.nodes.values()]
        assert any(label.startswith("π") for label in labels)
        assert any(label == "÷" for label in labels)
        assert all(e.directed for e in diagram.edges)
        assert all(e.kind == "dataflow" for e in diagram.edges)

    def test_edges_flow_towards_display(self, schema):
        diagram = dfql_from_ra(parse_ra(Q1_BASIC_JOIN.ra))
        sinks = [n.id for n in diagram.nodes.values() if n.kind == "sink"]
        assert len(sinks) == 1
        assert any(e.target == sinks[0] for e in diagram.edges)

    def test_accepts_sql_and_ra_text(self, schema):
        via_sql = dfql_diagram(Q2_RED_BOAT.sql, schema)
        via_ra = dfql_diagram(Q2_RED_BOAT.ra, schema)
        assert via_sql.nodes and via_ra.nodes

    def test_node_count_tracks_operator_count(self, schema):
        expr = parse_ra(Q2_RED_BOAT.ra)
        diagram = dfql_from_ra(expr)
        assert len(diagram.nodes) == expr.operator_count() + 1  # + display node


class TestSyntaxOrientedFormalisms:
    def test_sqlvis_nested_blocks_follow_syntax(self, schema):
        not_in = ("SELECT S.sname FROM Sailors S WHERE S.sid NOT IN "
                  "(SELECT R.sid FROM Reserves R WHERE R.bid = 103)")
        not_exists = ("SELECT S.sname FROM Sailors S WHERE NOT EXISTS "
                      "(SELECT R.sid FROM Reserves R WHERE R.sid = S.sid AND R.bid = 103)")
        a = sqlvis_diagram(not_in, schema)
        b = sqlvis_diagram(not_exists, schema)
        labels_a = {g.label for g in a.groups.values()}
        labels_b = {g.label for g in b.groups.values()}
        assert any("NOT IN" in label for label in labels_a)
        assert any("NOT EXISTS" in label for label in labels_b)
        # Syntax-directed: the two spellings do NOT give the same structure.
        assert a.element_counts() != b.element_counts()

    def test_sqlvis_join_edges_within_block(self, schema):
        diagram = sqlvis_diagram(Q2_RED_BOAT.sql, schema)
        assert any(e.kind == "join" for e in diagram.edges)
        assert diagram.element_counts()["table_nodes"] == 3

    def test_sqlvis_handles_groupby_and_setops(self, schema):
        diagram = sqlvis_diagram(
            "SELECT color, COUNT(*) AS n FROM Boats GROUP BY color HAVING COUNT(*) > 1 "
            "UNION SELECT sname, 1 FROM Sailors", schema)
        assert any("UNION" in g.label for g in diagram.groups.values())

    def test_visual_sql_clause_tree(self, schema):
        diagram = visual_sql_diagram(Q4_ALL_RED.sql, schema)
        labels = [n.label for n in diagram.nodes.values()]
        assert "SELECT DISTINCT" in labels
        assert labels.count("NOT EXISTS") == 2
        assert all(e.directed for e in diagram.edges)

    def test_visual_sql_mirrors_syntax_size(self, schema):
        short = visual_sql_diagram("SELECT sname FROM Sailors", schema)
        long = visual_sql_diagram(
            "SELECT sname FROM Sailors WHERE rating > 7 ORDER BY sname LIMIT 5", schema)
        assert len(long.nodes) > len(short.nodes)


class TestConceptualAndStringDiagrams:
    def test_conceptual_graph_bipartite_structure(self, schema):
        diagram = conceptual_graph_diagram(Q2_RED_BOAT.sql, schema)
        concepts = [n for n in diagram.nodes.values() if n.kind == "concept"]
        relations = [n for n in diagram.nodes.values() if n.kind == "relation"]
        assert len(concepts) == 3
        assert len(relations) == 2
        for edge in diagram.edges:
            kinds = {diagram.nodes[edge.source].kind, diagram.nodes[edge.target].kind}
            assert kinds == {"concept", "relation"}

    def test_conceptual_graph_negative_context(self, schema):
        diagram = conceptual_graph_diagram(Q4_ALL_RED.sql, schema)
        assert diagram.element_counts()["negation_groups"] == 2

    def test_string_diagram_free_vs_bound_wires(self, schema):
        diagram = string_diagram_for_query(Q2_RED_BOAT.sql, schema)
        ports = [n for n in diagram.nodes.values() if n.kind == "port"]
        dots = [n for n in diagram.nodes.values() if n.kind == "bound-wire"]
        assert len(ports) == 1          # the output attribute wire
        assert len(dots) >= 5           # the existential wires end in dots
        assert all(n.shape == "point" for n in dots)

    def test_string_diagram_negation_shading(self, schema):
        diagram = string_diagram_for_query(Q4_ALL_RED.sql, schema)
        shaded = [g for g in diagram.groups.values() if g.style == "shaded"]
        assert len(shaded) == 2


class TestDispatcher:
    def test_available_builders(self):
        keys = available_builders()
        assert {"queryvis", "relational_diagrams", "qbe", "dfql", "peirce_beta"} <= set(keys)

    def test_unknown_formalism(self, schema):
        with pytest.raises(CannotRepresent):
            build_diagram("crayon", Q1_BASIC_JOIN.sql, schema)

    @pytest.mark.parametrize("key", ["queryvis", "relational_diagrams", "peirce_beta",
                                     "string_diagrams", "conceptual", "sqlvis",
                                     "visual_sql"])
    def test_all_builders_handle_all_canonical_queries(self, schema, key):
        for query in CANONICAL_QUERIES:
            diagram = build_diagram(key, query.sql, schema)
            assert diagram.nodes
            assert diagram.validate() == []

    def test_expected_capability_gaps(self, schema):
        with pytest.raises(Exception):
            build_diagram("qbe", Q4_ALL_RED.sql, schema)       # needs two screens
        with pytest.raises(Exception):
            build_diagram("dfql", Q4_ALL_RED.sql, schema)      # correlated SQL → RA unsupported
        # but the RA spelling of Q4 works fine for DFQL:
        assert build_diagram("dfql", Q4_ALL_RED.ra, schema).nodes
