"""Tests for the Datalog engine: parsing, stratification, evaluation."""

from __future__ import annotations

import pytest

from repro.datalog import (
    DatalogError,
    Literal,
    Rule,
    dependency_graph,
    evaluate_datalog,
    evaluate_program,
    evaluation_order,
    is_stratifiable,
    make_program,
    parse_datalog,
    parse_rule,
    stratify,
)
from repro.logic.terms import Const, Var


def names(relation) -> set:
    return {row[0] for row in relation.distinct_rows()}


class TestParsing:
    def test_parse_rule_structure(self):
        rule = parse_rule("ans(N) :- sailors(S, N, R, A), reserves(S, 102, D).")
        assert rule.head.predicate == "ans"
        assert len(rule.body) == 2
        assert rule.body[1].terms[1] == Const(102)
        assert not rule.is_fact

    def test_parse_fact_and_constants(self):
        rule = parse_rule("edge(1, 'a').")
        assert rule.is_fact
        assert rule.head.terms == (Const(1), Const("a"))
        lower = parse_rule("color(red).")
        assert lower.head.terms == (Const("red"),)

    def test_parse_negation_and_comparison(self):
        rule = parse_rule("old(S) :- sailors(S, N, R, A), A > 40.0, not reserves(S, 102, D).")
        assert len(rule.positive_literals()) == 1
        assert len(rule.negative_literals()) == 1
        assert len(rule.comparisons()) == 1

    def test_parse_prolog_style_negation(self):
        rule = parse_rule("p(X) :- q(X), \\+ r(X).")
        assert rule.negative_literals()[0].predicate == "r"

    def test_comments_and_multiple_rules(self):
        program = parse_datalog("""
            % red boats
            red(B) :- boats(B, N, 'red').   # trailing comment
            ans(B) :- red(B).
        """)
        assert len(program) == 2
        assert program.idb_predicates() == ["red", "ans"]
        assert program.edb_predicates() == ["boats"]

    def test_parse_errors(self):
        with pytest.raises(DatalogError):
            parse_datalog("p(X) :- q(X)")  # missing final period
        with pytest.raises(DatalogError):
            parse_rule("p(X) :- .")
        with pytest.raises(DatalogError):
            parse_rule("p(X) :- q(X) r(X).")

    def test_negated_head_rejected(self):
        with pytest.raises(DatalogError):
            Rule(Literal("p", (Var("X"),), negated=True), ())


class TestSafetyAndStratification:
    def test_safety_violations(self):
        unsafe_head = parse_rule("p(X, Y) :- q(X).")
        assert unsafe_head.check_safety()
        unsafe_negation = parse_rule("p(X) :- q(X), not r(Y).")
        assert unsafe_negation.check_safety()
        unsafe_comparison = parse_rule("p(X) :- q(X), Y > 3.")
        assert unsafe_comparison.check_safety()
        safe = parse_rule("p(X) :- q(X, Y), not r(Y), X > 3.")
        assert not safe.check_safety()

    def test_make_program_rejects_unsafe(self):
        with pytest.raises(DatalogError):
            make_program([parse_rule("p(X) :- q(Y).")])

    def test_dependency_graph_and_strata(self):
        program = parse_datalog("""
            a(X) :- e(X).
            b(X) :- a(X), not c(X).
            c(X) :- e(X), X > 5.
        """)
        graph = dependency_graph(program)
        assert ("c", True) in graph["b"]
        strata = stratify(program)
        assert strata["e"] == 0
        assert strata["c"] < strata["b"]
        order = evaluation_order(program)
        flattened = [p for level in order for p in level]
        assert flattened.index("c") < flattened.index("b")

    def test_unstratifiable_program(self):
        program = parse_datalog("p(X) :- q(X), not p(X).")
        assert not is_stratifiable(program)
        with pytest.raises(DatalogError):
            stratify(program)

    def test_recursion_detection(self):
        recursive = parse_datalog("path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z).")
        assert recursive.is_recursive()
        flat = parse_datalog("ans(X) :- edge(X, Y).")
        assert not flat.is_recursive()


class TestEvaluation:
    def test_canonical_queries(self, db, canonical_query):
        result = evaluate_datalog(canonical_query.datalog, db)
        assert names(result) == set(canonical_query.expected_names)

    def test_canonical_queries_empty_db(self, empty_db, canonical_query):
        assert evaluate_datalog(canonical_query.datalog, empty_db).is_empty()

    def test_facts_participate(self, db):
        program = """
            favorite(102). favorite(103).
            ans(N) :- sailors(S, N, R, A), reserves(S, B, D), favorite(B).
        """
        assert names(evaluate_datalog(program, db)) == {"Dustin", "Lubber", "Horatio"}

    def test_comparison_builtins(self, db):
        program = "ans(N) :- sailors(S, N, R, A), A >= 55.0."
        assert names(evaluate_datalog(program, db)) == {"Lubber", "Bob"}

    def test_stratified_negation(self, db):
        program = """
            reserver(S) :- reserves(S, B, D).
            ans(N) :- sailors(S, N, R, A), not reserver(S).
        """
        assert names(evaluate_datalog(program, db)) == {
            "Brutus", "Andy", "Rusty", "Zorba", "Art", "Bob"}

    def test_recursive_transitive_closure(self, db):
        program = """
            edge(1, 2). edge(2, 3). edge(3, 4).
            path(X, Y) :- edge(X, Y).
            path(X, Z) :- path(X, Y), edge(Y, Z).
        """
        result = evaluate_datalog(program, db, query="path")
        assert (1, 4) in set(result.rows())
        assert len(result) == 6

    def test_division_pattern(self, db):
        result = evaluate_datalog(
            """
            red_boat(B) :- boats(B, BN, 'red').
            reserved(S, B) :- reserves(S, B, D).
            misses(S) :- sailors(S, N, R, A), red_boat(B), not reserved(S, B).
            ans(S, N) :- sailors(S, N, R, A), not misses(S).
            """,
            db,
        )
        assert set(result.rows()) == {(22, "Dustin"), (31, "Lubber")}
        assert result.attribute_names == ("s", "n")

    def test_unknown_answer_predicate(self, db):
        with pytest.raises(DatalogError):
            evaluate_datalog("p(X) :- sailors(X, N, R, A).", db, query="missing")

    def test_unsafe_program_rejected_at_evaluation(self, db):
        with pytest.raises(DatalogError):
            evaluate_program("ans(Y) :- sailors(X, N, R, A).", db)

    def test_evaluate_program_returns_all_idb_facts(self, db):
        facts = evaluate_program("red(B) :- boats(B, N, 'red'). ans(B) :- red(B).", db)
        assert facts["red"] == {(102,), (104,)}
        assert facts["ans"] == {(102,), (104,)}

    def test_constants_in_head_are_rejected_for_column_names_only(self, db):
        # Constants in heads are legal Datalog; output falls back to generic names.
        result = evaluate_datalog("ans(N, 1) :- sailors(S, N, R, A), S = 22.", db)
        assert result.rows() == [("Dustin", 1)]
        assert result.attribute_names == ("col1", "col2")
