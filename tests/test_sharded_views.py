"""Shard-aware incremental view maintenance.

The composition gap this closes: materialized views (delta-plan
maintenance) and scatter-gather sharding used to be mutually exclusive —
``ShardedQueryService.register_view`` raised unsupported.  Now
:class:`~repro.core.sharded_service.ShardedMaterializedView` maintains one
partial per shard over the shard's live relations (whose delta logs work)
and combines partials at refresh time.  These tests pin down:

* the whole canonical catalog — every query in every language — registers
  and answers identically to the single-node service at 1, 2, and 4
  shards, before and after routed writes;
* absorbed writes refresh *incrementally* (counters prove no rebuild);
* one hot shard overflowing its bounded delta log rebuilds that shard's
  partial only, never poisoning siblings;
* a write to a broadcast-read relation invalidates every shard's partial;
* :meth:`~repro.core.sharded_service.ShardedQueryService.reshard` under
  live views never serves a wrong or stale-aliased answer, and the
  generation epoch makes cache-version vectors from different layouts
  incomparable (the raw shard-version vector demonstrably collides).
"""

from __future__ import annotations

import pytest

from repro.core import QueryService, ShardedQueryService
from repro.data import sailors_database
from repro.data.relation import Relation
from repro.queries import CANONICAL_QUERIES

SHARD_COUNTS = (1, 2, 4)

#: Routed writes used by the refresh tests: single rows and a batch, on
#: the two relations every catalog join reads through a partitioned scan.
WRITE_ROUNDS = (
    ("add_row", "Reserves", (64, 101, "2025/07/01")),
    ("add_row", "Sailors", (97, "tracy", 6, 31.0)),
    ("add_rows", "Sailors", [(96, "quinn", 9, 27.5), (95, "pia", 3, 44.0)]),
    ("add_rows", "Reserves", [(31, 102, "2025/07/02"),
                              (58, 103, "2025/07/03")]),
)


def _apply(service, round_):
    kind, relation, payload = round_
    getattr(service, kind)(relation, payload)


def _register_catalog(service):
    views = []
    for query in CANONICAL_QUERIES:
        for language, text in query.languages().items():
            views.append((f"{query.id}/{language}",
                          service.register_view(text,
                                                language=language.lower())))
    return views


class TestCatalogViewsDifferential:
    """All 25 catalog views × {1, 2, 4} shards ≡ the single-node service."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_catalog_views_track_the_plain_service(self, shards):
        plain = QueryService(sailors_database())
        sharded = ShardedQueryService(sailors_database(), n_shards=shards)
        want = dict(_register_catalog(plain))
        got = _register_catalog(sharded)
        assert len(got) == 25
        for label, view in got:
            assert view.answer().bag_equal(want[label].answer()), label
        for round_ in WRITE_ROUNDS:
            _apply(plain, round_)
            _apply(sharded, round_)
            for label, view in got:
                assert view.answer().bag_equal(want[label].answer()), \
                    f"{label} after {round_[:2]}"

    def test_partitioned_writes_refresh_incrementally(self):
        service = ShardedQueryService(sailors_database(), n_shards=2)
        view = service.register_view(
            "SELECT S.rating, COUNT(*), AVG(S.age) FROM Sailors S "
            "GROUP BY S.rating")
        view.answer()
        assert view.strategy == "sharded-aggregate"
        assert view.rebuilds == 1  # the initial materialization
        service.add_row("Sailors", (90, "nova", 7, 23.0))
        view.answer()
        assert view.incremental_refreshes == 1
        assert view.rebuilds == 1
        assert view.shard_rebuilds == 0

    def test_untouched_shards_skip_delta_work(self):
        service = ShardedQueryService(sailors_database(), n_shards=4)
        view = service.register_view("SELECT DISTINCT R.sid FROM Reserves R")
        view.answer()
        assert view.strategy == "sharded-distinct"
        anchors_before = [dict(a) for a in view._shard_anchors]
        row = (88, 104, "2025/07/04")
        owner = service.shard_for("Reserves", row)
        service.add_row("Reserves", row)
        view.answer()
        assert view.incremental_refreshes == 1
        for i, (before, after) in enumerate(zip(anchors_before,
                                                view._shard_anchors)):
            if i == owner:
                assert after["reserves"] > before["reserves"]
            else:
                assert after == before  # untouched shard: anchor untouched

    def test_datalog_views_resume_semi_naive(self):
        program = ("ans(X, Y) :- reserves(X, B, D), reserves(Y, B, D2), "
                   "sailors(X, N1, R1, A1), sailors(Y, N2, R2, A2).")
        plain = QueryService(sailors_database())
        service = ShardedQueryService(sailors_database(), n_shards=2)
        view = service.register_view(program, language="datalog")
        baseline = plain.register_view(program, language="datalog")
        assert view.strategy == "sharded-datalog"
        assert view.answer().bag_equal(baseline.answer())
        for svc in (service, plain):
            svc.add_row("Reserves", (95, 101, "2025/07/05"))
            svc.add_row("Sailors", (95, "pia", 3, 44.0))
        assert view.answer().bag_equal(baseline.answer())
        assert view.incremental_refreshes >= 1
        assert view.rebuilds == 1

    def test_unmaintainable_views_degrade_to_rebuild(self):
        service = ShardedQueryService(sailors_database(), n_shards=2)
        view = service.register_view(
            "SELECT S.sname FROM Sailors S ORDER BY S.age LIMIT 3")
        plain = QueryService(sailors_database()).register_view(
            "SELECT S.sname FROM Sailors S ORDER BY S.age LIMIT 3")
        assert view.strategy == "rebuild"  # LIMIT: no maintainable core
        assert view.answer().bag_equal(plain.answer())


class TestDegradationPaths:
    def test_hot_shard_overflow_rebuilds_that_shard_only(self, monkeypatch):
        monkeypatch.setattr(Relation, "DELTA_LOG_LIMIT", 4)
        plain = QueryService(sailors_database())
        service = ShardedQueryService(sailors_database(), n_shards=2)
        sql = "SELECT S.rating, COUNT(*) FROM Sailors S GROUP BY S.rating"
        view = service.register_view(sql)
        baseline = plain.register_view(sql)
        view.answer()
        # Route > DELTA_LOG_LIMIT single-row writes to ONE shard (each a
        # version bump), plus one small write to the other shard.
        target = service.shard_for("Sailors", (2000, "x", 0, 20.0))
        hot, cold, sid = [], None, 2000
        while len(hot) < 6 or cold is None:
            row = (sid, f"s{sid}", sid % 10, 20.0 + sid % 7)
            if service.shard_for("Sailors", row) == target:
                if len(hot) < 6:
                    hot.append(row)
            elif cold is None:
                cold = row
            sid += 1
        for row in hot:
            service.add_row("Sailors", row)
            plain.add_row("Sailors", row)
        service.add_row("Sailors", cold)
        plain.add_row("Sailors", cold)
        assert view.answer().bag_equal(baseline.answer())
        # The hot shard fell behind its log and rebuilt its own partial;
        # the view as a whole never rematerialized, and the cold shard's
        # delta applied incrementally.
        assert view.shard_rebuilds == 1
        assert view.rebuilds == 1
        assert view.incremental_refreshes >= 1

    def test_broadcast_write_invalidates_every_shard(self):
        plain = QueryService(sailors_database())
        service = ShardedQueryService(sailors_database(), n_shards=3)
        sql = ("SELECT S.sname, B.bname FROM Sailors S, Reserves R, Boats B "
               "WHERE S.sid = R.sid AND R.bid = B.bid")
        view = service.register_view(sql)
        baseline = plain.register_view(sql)
        view.answer()
        assert "boats" in view._compiled.broadcast
        service.add_row("Boats", (200, "Ark", "gold"))
        plain.add_row("Boats", (200, "Ark", "gold"))
        service.add_row("Reserves", (22, 200, "2025/07/06"))
        plain.add_row("Reserves", (22, 200, "2025/07/06"))
        assert view.answer().bag_equal(baseline.answer())
        # Every partial joined against the full old copy of Boats, so all
        # three shards reinitialized.
        assert view.shard_rebuilds == 3

    def test_eager_views_catch_up_inside_the_write(self):
        service = ShardedQueryService(sailors_database(), n_shards=2)
        view = service.register_view(
            "SELECT COUNT(*) FROM Reserves R", refresh="eager")
        view.answer()
        service.add_row("Reserves", (22, 104, "2025/07/07"))
        # Already current: the write refreshed it under the lock.
        assert view.version == service.db.version
        assert view.incremental_refreshes == 1


class TestReshardUnderViews:
    def test_reshard_rematerializes_live_views(self):
        plain = QueryService(sailors_database())
        service = ShardedQueryService(sailors_database(), n_shards=2)
        views = _register_catalog(service)
        want = dict(_register_catalog(plain))
        for label, view in views:
            view.answer()
        new_db = service.reshard(4)
        assert new_db.n_shards == 4
        assert service.sharded_db is new_db
        for label, view in views:
            assert view.answer().bag_equal(want[label].answer()), label
            assert view.info()["current"], label
        # Writes keep refreshing against the new layout.
        for round_ in WRITE_ROUNDS:
            _apply(plain, round_)
            _apply(service, round_)
        for label, view in views:
            assert view.answer().bag_equal(want[label].answer()), label

    def test_reshard_changes_shard_keys_under_views(self):
        plain = QueryService(sailors_database())
        service = ShardedQueryService(sailors_database(), n_shards=2)
        sql = ("SELECT S.sname, B.bname FROM Sailors S, Reserves R, Boats B "
               "WHERE S.sid = R.sid AND R.bid = B.bid")
        view = service.register_view(sql)
        baseline = plain.register_view(sql)
        view.answer()
        service.reshard(shard_keys={"Reserves": "bid"})
        assert service.sharded_db.shard_key("Reserves") == ("bid",)
        assert view.answer().bag_equal(baseline.answer())
        service.add_row("Reserves", (31, 103, "2025/07/08"))
        plain.add_row("Reserves", (31, 103, "2025/07/08"))
        assert view.answer().bag_equal(baseline.answer())

    def test_generation_epoch_prevents_vector_aliasing(self):
        """The regression the epoch exists for.

        A reshard rebuilds every shard from per-row copies, so the raw
        ``(structure, v0, ..., vn-1)`` vector of the *new* layout can equal
        the old layout's vector exactly (same shard count: every component
        collides).  Today the colliding entries happen to hold identical
        bytes — per-row rebuilds make each new component the shard's row
        count, which add-only histories cannot shrink past — but that is
        an accident of the rebuild strategy, not a guarantee: a batch-built
        reshard (one version bump per shard) would reopen old vectors with
        *different* contents.  The generation epoch in ``_cache_version()``
        makes the key sound by construction instead.
        """
        service = ShardedQueryService(sailors_database(), n_shards=2)
        sql = "SELECT DISTINCT R.sid FROM Reserves R"
        service.answer(sql)
        raw_before = (service.sharded_db.structure_version,
                      *service.sharded_db.shard_versions())
        keyed_before = service._cache_version()
        service.reshard(2)  # same count, same keys: maximal aliasing
        raw_after = (service.sharded_db.structure_version,
                     *service.sharded_db.shard_versions())
        # The raw vector aliases across the reshard...
        assert raw_before == raw_after
        # ...the epoch-prefixed cache key does not.
        assert keyed_before != service._cache_version()
        assert service._cache_version()[0] == keyed_before[0] + 1
        # And no stale entry survives to be served: the reshard cleared
        # the cache, so the next answer is a recorded miss, not a hit.
        misses = service.cache_info()["result_misses"]
        assert service.cache_info()["result_entries"] == 0
        service.answer(sql)
        assert service.cache_info()["result_misses"] == misses + 1

    def test_racing_reader_never_sees_a_stale_layout_view(self):
        import threading

        service = ShardedQueryService(sailors_database(), n_shards=2)
        plain = QueryService(sailors_database())
        sql = "SELECT S.rating, COUNT(*) FROM Sailors S GROUP BY S.rating"
        view = service.register_view(sql)
        baseline = plain.register_view(sql)
        stop = threading.Event()
        errors: list[Exception] = []

        def reader():
            try:
                while not stop.is_set():
                    if not view.answer().bag_equal(baseline.answer()):
                        raise AssertionError("stale or wrong view answer")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for count in (4, 1, 3, 2):
                service.reshard(count)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert errors == []
        assert service.cache_info()["generation"] == 4
