"""Tests for the Tuple and Domain Relational Calculi."""

from __future__ import annotations

import pytest

from repro.drc import (
    DRCError,
    DRCQuery,
    atom_for,
    check_arities,
    evaluate_drc,
    evaluate_drc_boolean,
    format_drc_query,
    head_is_covered,
    parse_drc,
    positional_attribute,
)
from repro.logic import Atom, Const as LConst, Exists, Var
from repro.trc import (
    AttrRef,
    HeadItem,
    RelAtom,
    TRCAnd,
    TRCCompare,
    TRCError,
    TRCExists,
    TRCNot,
    TRCQuery,
    TupleVar,
    check_safety,
    evaluate_trc,
    evaluate_trc_boolean,
    format_trc_query,
    free_tuple_variables,
    is_safe,
    parse_trc,
    parse_trc_formula,
    variable_ranges,
)


def names(relation) -> set:
    return {row[0] for row in relation.distinct_rows()}


class TestTRCParsing:
    def test_parse_and_format_round_trip(self, canonical_query):
        query = parse_trc(canonical_query.trc)
        again = parse_trc(format_trc_query(query))
        assert format_trc_query(query) == format_trc_query(again)

    def test_unicode_connectives(self):
        query = parse_trc("{ s.sname | Sailors(s) ∧ ¬(∃r (Reserves(r) ∧ r.sid = s.sid)) }")
        assert isinstance(query.body, TRCAnd)

    def test_alias_in_head(self):
        query = parse_trc("{ s.sname as who | Sailors(s) }")
        assert query.head[0].alias == "who"
        assert query.head[0].output_name(0) == "who"

    def test_parse_errors(self):
        for bad in [
            "{ s.sname | Sailors(s) ",          # unterminated
            "{ s | Sailors(s) }",                # bare variable as head term
            "{ s.sname | Sailors(s) and }",      # dangling and
            "{ s.sname | s.sid 102 }",           # missing operator
        ]:
            with pytest.raises(TRCError):
                parse_trc(bad)

    def test_structure_helpers(self):
        body = parse_trc_formula(
            "Sailors(s) and exists r (Reserves(r) and r.sid = s.sid)")
        assert [v.name for v in free_tuple_variables(body)] == ["s"]
        assert variable_ranges(body) == {"s": "Sailors", "r": "Reserves"}

    def test_conflicting_ranges_rejected(self):
        body = parse_trc_formula("Sailors(s) and Boats(s)")
        with pytest.raises(TRCError):
            variable_ranges(body)


class TestTRCEvaluation:
    def test_canonical_queries(self, db, canonical_query):
        result = evaluate_trc(canonical_query.trc, db)
        assert names(result) == set(canonical_query.expected_names)

    def test_canonical_queries_empty_db(self, empty_db, canonical_query):
        assert evaluate_trc(canonical_query.trc, empty_db).is_empty()

    def test_boolean_queries(self, db):
        assert evaluate_trc_boolean("exists b (Boats(b) and b.color = 'red')", db)
        assert not evaluate_trc_boolean("exists b (Boats(b) and b.color = 'purple')", db)
        assert evaluate_trc_boolean(
            "forall b (Boats(b) -> exists r (Reserves(r) and r.bid = b.bid))", db)

    def test_boolean_requires_sentence(self, db):
        with pytest.raises(TRCError):
            evaluate_trc_boolean("Sailors(s) and s.rating > 5", db)

    def test_unsafe_head_variable_rejected(self, db):
        query = TRCQuery((HeadItem(AttrRef(TupleVar("t"), "sid")),),
                         TRCNot(RelAtom("Sailors", TupleVar("t"))))
        with pytest.raises(TRCError):
            evaluate_trc(query, db)

    def test_output_columns_and_constants(self, db):
        result = evaluate_trc("{ s.sname, s.rating | Sailors(s) and s.sid = 22 }", db)
        assert result.attribute_names == ("sname", "rating")
        assert result.rows() == [("Dustin", 7)]

    def test_implication_universal(self, db):
        result = evaluate_trc(
            "{ s.sname | Sailors(s) and forall r (Reserves(r) -> r.sid <> s.sid) }", db)
        assert names(result) == {"Brutus", "Andy", "Rusty", "Zorba", "Art", "Bob"}


class TestTRCSafety:
    def test_canonical_queries_are_safe(self, canonical_query):
        assert is_safe(parse_trc(canonical_query.trc))

    def test_unsafe_negated_head(self):
        query = parse_trc("{ s.sname | not Sailors(s) }")
        report = check_safety(query)
        assert not report.safe
        assert report.violations

    def test_unguarded_existential(self):
        query = TRCQuery(
            (HeadItem(AttrRef(TupleVar("s"), "sname")),),
            TRCAnd((RelAtom("Sailors", TupleVar("s")),
                    TRCExists((TupleVar("r"),),
                              TRCCompare(AttrRef(TupleVar("r"), "sid"), "=",
                                         AttrRef(TupleVar("s"), "sid"))))),
        )
        assert not check_safety(query).safe

    def test_universal_with_implication_guard_is_safe(self):
        query = parse_trc(
            "{ s.sname | Sailors(s) and forall b (Boats(b) -> exists r "
            "(Reserves(r) and r.sid = s.sid and r.bid = b.bid)) }")
        assert is_safe(query)


class TestDRC:
    def test_canonical_queries(self, db, canonical_query):
        result = evaluate_drc(canonical_query.drc, db)
        assert names(result) == set(canonical_query.expected_names)

    def test_canonical_queries_empty_db(self, empty_db, canonical_query):
        assert evaluate_drc(canonical_query.drc, empty_db).is_empty()

    def test_parse_and_format_round_trip(self, db, canonical_query):
        query = parse_drc(canonical_query.drc)
        again = parse_drc(format_drc_query(query))
        assert names(evaluate_drc(again, db)) == set(canonical_query.expected_names)

    def test_anonymous_variables(self, db):
        result = evaluate_drc("{ n | exists s, r, a (Sailors(s, n, r, a) and Reserves(s, _, _)) }", db)
        assert names(result) == {"Dustin", "Lubber", "Horatio"}

    def test_boolean_statements(self, db):
        assert evaluate_drc_boolean("exists b, n (Boats(b, n, 'red'))", db)
        assert not evaluate_drc_boolean("forall b, n, c (Boats(b, n, c) -> c = 'red')", db)
        assert evaluate_drc_boolean(
            "forall s, b, d (Reserves(s, b, d) -> exists n, r, a (Sailors(s, n, r, a)))", db)

    def test_boolean_requires_sentence(self, db):
        with pytest.raises(DRCError):
            evaluate_drc_boolean("Boats(b, n, 'red')", db)

    def test_head_must_be_free(self, db):
        query = DRCQuery((Var("z"),), Exists((Var("z"),),
                                             Atom("Boats", (Var("z"), Var("n"), Var("c")))))
        with pytest.raises(DRCError):
            evaluate_drc(query, db)

    def test_unknown_relation_is_reported(self, schema):
        query = parse_drc("{ x | Pirates(x) }")
        assert check_arities(query, schema) == ["unknown relation 'Pirates'"]

    def test_arity_mismatch_is_reported(self, schema):
        query = parse_drc("{ x | Boats(x) }")
        problems = check_arities(query, schema)
        assert len(problems) == 1 and "arity" in problems[0]

    def test_helpers(self, schema):
        assert positional_attribute(schema, "Boats", 2) == "color"
        with pytest.raises(DRCError):
            positional_attribute(schema, "Boats", 9)
        atom = atom_for(schema, "Boats", {"color": LConst("red")})
        assert atom.terms[2] == LConst("red")
        assert head_is_covered(parse_drc("{ x | exists n (Boats(x, n, 'red')) }"))
        assert not head_is_covered(parse_drc("{ y | exists x, n (Boats(x, n, 'red')) }"))

    def test_comparisons_and_disjunction(self, db):
        result = evaluate_drc(
            "{ n | exists s, r, a (Sailors(s, n, r, a) and (r = 10 or a > 60.0)) }", db)
        assert names(result) == {"Rusty", "Zorba", "Bob"}
