"""Focused tests for the renderers (SVG, DOT, ASCII) and diagram metrics."""

from __future__ import annotations


from repro.core import Diagram, DiagramEdge, DiagramGroup, DiagramNode, save_svg
from repro.core.layout import compute_layout, node_size
from repro.core.metrics import LINE_ROLES, measure
from repro.core.render_dot import render_dot
from repro.core.render_svg import render_svg
from repro.core.render_text import render_text


def build_showcase() -> Diagram:
    """A diagram exercising every node shape, edge style, and group style."""
    d = Diagram("showcase", formalism="test")
    d.add_group(DiagramGroup("plain", "plain"))
    d.add_group(DiagramGroup("neg", "not", "plain", "negation"))
    d.add_group(DiagramGroup("cut", "", "plain", "cut"))
    d.add_group(DiagramGroup("shade", "", None, "shaded"))
    d.add_node(DiagramNode("t", "table", "Sailors s", ("sid", "sname = 'Bob'"), "plain", "table"))
    d.add_node(DiagramNode("e", "operator", "join", (), "neg", "ellipse"))
    d.add_node(DiagramNode("p", "mark", "x", (), "cut", "point"))
    d.add_node(DiagramNode("x", "annotation", "free text", ("row one",), "shade", "plaintext"))
    d.add_edge(DiagramEdge("t", "e", "on sid", "solid", True, "sid", None, "join"))
    d.add_edge(DiagramEdge("e", "p", "", "dashed", True, kind="reading-order"))
    d.add_edge(DiagramEdge("p", "x", "", "bold", False, kind="identity"))
    return d


class TestSVG:
    def test_every_element_is_rendered(self):
        svg = render_svg(build_showcase())
        assert svg.count("<circle") == 1                 # the point node
        assert "Sailors s" in svg and "free text" in svg
        assert "marker-end" in svg                       # directed edges get arrowheads
        assert "stroke-dasharray" in svg                 # dashed edge / group
        assert svg.count("<line") >= 3

    def test_save_svg_writes_file(self, tmp_path):
        path = save_svg(build_showcase(), str(tmp_path / "d.svg"))
        content = (tmp_path / "d.svg").read_text()
        assert path.endswith("d.svg")
        assert content.startswith("<svg") and content.rstrip().endswith("</svg>")

    def test_escaping_of_labels(self):
        d = Diagram("esc")
        d.add_node(DiagramNode("n", label="a < b & c > 'd'"))
        svg = render_svg(d)
        assert "&lt;" in svg and "&amp;" in svg
        assert "a < b &" not in svg


class TestDOT:
    def test_clusters_styles_and_ports(self):
        dot = render_dot(build_showcase())
        assert dot.count("subgraph") == 4
        assert "color=red3" in dot                       # negation cluster
        assert "shape=point" in dot
        assert "style=dashed" in dot
        assert "dir=none" in dot                         # undirected edge
        assert '"t":r0' in dot                           # row port reference

    def test_quote_escaping(self):
        d = Diagram("q")
        d.add_node(DiagramNode("n", label='say "hi"'))
        assert '\\"hi\\"' in render_dot(d)

    def test_html_escaping_in_table_labels(self):
        d = Diagram("h")
        d.add_node(DiagramNode("n", label="T", rows=("a < 3",)))
        assert "a &lt; 3" in render_dot(d)


class TestASCII:
    def test_nested_blocks_and_connections(self):
        text = render_text(build_showcase())
        assert "=NOT=" in text
        assert "connections:" in text
        assert "Sailors s.sid --> join  [on sid]" in text

    def test_empty_diagram(self):
        text = render_text(Diagram("empty"))
        assert "(empty)" in text


class TestLayout:
    def test_node_size_grows_with_content(self):
        small = node_size(DiagramNode("a", label="x"))
        large = node_size(DiagramNode("b", label="x", rows=("a long attribute row", "another")))
        assert large[0] > small[0] and large[1] > small[1]
        assert node_size(DiagramNode("p", shape="point")) == (10.0, 10.0)

    def test_groups_contain_their_content(self):
        d = build_showcase()
        layout = compute_layout(d)
        for node_id, node in d.nodes.items():
            if node.group:
                node_box = layout.node_boxes[node_id]
                group_box = layout.group_boxes[node.group]
                assert node_box.x >= group_box.x - 1e-6
                assert node_box.right <= group_box.right + 1e-6
                assert node_box.y >= group_box.y - 1e-6
                assert node_box.bottom <= group_box.bottom + 1e-6

    def test_anchor_points_inside_nodes(self):
        d = build_showcase()
        layout = compute_layout(d)
        x, y = layout.anchor(d, "t", "sid")
        box = layout.node_boxes["t"]
        assert box.x <= x <= box.right and box.y <= y <= box.bottom


class TestMetrics:
    def test_line_roles_cover_all_known_kinds(self):
        assert set(LINE_ROLES.values()) <= {"identity", "membership", "flow", "other"}

    def test_distinct_roles_counted(self):
        metric = measure(build_showcase())
        assert metric.line_roles["identity"] == 2   # join + identity edges
        assert metric.line_roles["flow"] == 1
        assert metric.distinct_line_roles == 2
