"""Tests for the shared expression language (AST, evaluation, parsing, formatting)."""

from __future__ import annotations

import pytest

from repro.expr import (
    And,
    Between,
    BinOp,
    BoolConst,
    Col,
    Comparison,
    Const,
    Exists,
    ExprError,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    NameResolutionError,
    Neg,
    Not,
    Or,
    QuantifiedComparison,
    Scope,
    Star,
    compute_aggregate,
    conjunction,
    conjuncts,
    contains_aggregate,
    contains_subquery,
    disjunction,
    disjuncts,
    eval_expr,
    eval_predicate,
    format_expr,
    map_columns,
    rename_qualifiers,
)
from repro.expr.parser import parse_expression


def scope(**values) -> Scope:
    return Scope.from_mapping(values, alias="t")


class TestAst:
    def test_comparison_normalises_operator(self):
        assert Comparison(Col("a"), "!=", Const(1)).op == "<>"
        assert Comparison(Col("a"), "==", Const(1)).op == "="

    def test_comparison_rejects_bad_operator(self):
        with pytest.raises(ExprError):
            Comparison(Col("a"), "~", Const(1))

    def test_comparison_flip_and_negate(self):
        cmp = Comparison(Col("a"), "<", Col("b"))
        assert cmp.flipped() == Comparison(Col("b"), ">", Col("a"))
        assert cmp.negated() == Comparison(Col("a"), ">=", Col("b"))

    def test_quantified_comparison_normalises(self):
        q = QuantifiedComparison(Col("a"), "=", "SOME", query=None)
        assert q.quantifier == "any"

    def test_conjunction_flattens(self):
        expr = conjunction([Comparison(Col("a"), "=", Const(1)),
                            And((Comparison(Col("b"), "=", Const(2)),))])
        assert isinstance(expr, And)
        assert len(expr.operands) == 2
        assert conjunction([]) == BoolConst(True)
        assert conjunction([Col("a")]) == Col("a")

    def test_disjunction_flattens(self):
        expr = disjunction([Or((Col("a"), Col("b"))), Col("c")])
        assert isinstance(expr, Or)
        assert len(expr.operands) == 3
        assert disjunction([]) == BoolConst(False)

    def test_conjuncts_and_disjuncts(self):
        expr = And((Col("a"), And((Col("b"), Col("c")))))
        assert [c for c in conjuncts(expr)] == [Col("a"), Col("b"), Col("c")]
        assert disjuncts(Or((Col("a"), Col("b")))) == [Col("a"), Col("b")]

    def test_columns_and_walk(self):
        expr = Comparison(BinOp("+", Col("a", "t"), Const(1)), "<", Col("b"))
        names = {c.qualified() for c in expr.columns()}
        assert names == {"t.a", "b"}

    def test_contains_aggregate_and_subquery(self):
        assert contains_aggregate(Comparison(FuncCall("count", (Star(),)), ">", Const(1)))
        assert not contains_aggregate(Col("a"))
        assert contains_subquery(Exists(query=object()))
        assert not contains_subquery(Col("a"))

    def test_map_columns_and_rename_qualifiers(self):
        expr = And((Comparison(Col("a", "S"), "=", Col("b", "R")), IsNull(Col("c", "S"))))
        renamed = rename_qualifiers(expr, {"S": "X"})
        qualifiers = {c.qualifier for c in renamed.columns()}
        assert qualifiers == {"X", "R"}
        upper = map_columns(expr, lambda c: Col(c.name.upper(), c.qualifier))
        assert {c.name for c in upper.columns()} == {"A", "B", "C"}

    def test_is_predicate(self):
        assert Comparison(Col("a"), "=", Const(1)).is_predicate()
        assert not Col("a").is_predicate()
        assert Not(BoolConst(True)).is_predicate()


class TestEvaluation:
    def test_scalar_arithmetic(self):
        expr = BinOp("+", BinOp("*", Col("a"), Const(2)), Const(1))
        assert eval_expr(expr, scope(a=3)) == 7
        assert eval_expr(Neg(Col("a")), scope(a=3)) == -3

    def test_arithmetic_with_null_is_null(self):
        assert eval_expr(BinOp("+", Col("a"), Const(1)), scope(a=None)) is None

    def test_division_by_zero(self):
        with pytest.raises(ExprError):
            eval_expr(BinOp("/", Const(1), Const(0)), scope())

    def test_three_valued_comparison(self):
        assert eval_expr(Comparison(Col("a"), "<", Const(5)), scope(a=3)) is True
        assert eval_expr(Comparison(Col("a"), "<", Const(5)), scope(a=None)) is None

    def test_mixed_type_comparison_is_error(self):
        with pytest.raises(ExprError):
            eval_expr(Comparison(Col("a"), "=", Const("x")), scope(a=3))

    def test_kleene_and_or_not(self):
        unknown = Comparison(Col("n"), "=", Const(1))
        false = BoolConst(False)
        true = BoolConst(True)
        s = scope(n=None)
        assert eval_expr(And((unknown, false)), s) is False
        assert eval_expr(And((unknown, true)), s) is None
        assert eval_expr(Or((unknown, true)), s) is True
        assert eval_expr(Or((unknown, false)), s) is None
        assert eval_expr(Not(unknown), s) is None

    def test_eval_predicate_treats_unknown_as_false(self):
        assert eval_predicate(Comparison(Col("n"), "=", Const(1)), scope(n=None)) is False

    def test_is_null(self):
        assert eval_expr(IsNull(Col("a")), scope(a=None)) is True
        assert eval_expr(IsNull(Col("a"), negated=True), scope(a=None)) is False

    def test_in_list_with_null_semantics(self):
        expr = InList(Col("a"), (Const(1), Const(None)))
        assert eval_expr(expr, scope(a=1)) is True
        assert eval_expr(expr, scope(a=2)) is None  # unknown because of the NULL
        expr_no_null = InList(Col("a"), (Const(1), Const(2)))
        assert eval_expr(expr_no_null, scope(a=3)) is False
        negated = InList(Col("a"), (Const(1),), negated=True)
        assert eval_expr(negated, scope(a=2)) is True

    def test_between_and_like(self):
        assert eval_expr(Between(Col("a"), Const(1), Const(5)), scope(a=3)) is True
        assert eval_expr(Between(Col("a"), Const(1), Const(5), negated=True), scope(a=7)) is True
        assert eval_expr(Like(Col("s"), "D%"), scope(s="Dustin")) is True
        assert eval_expr(Like(Col("s"), "_ustin"), scope(s="Dustin")) is True
        assert eval_expr(Like(Col("s"), "D%", negated=True), scope(s="Rusty")) is True
        assert eval_expr(Like(Col("s"), "D%"), scope(s=None)) is None

    def test_scalar_functions(self):
        assert eval_expr(FuncCall("abs", (Const(-3),)), scope()) == 3
        assert eval_expr(FuncCall("upper", (Col("s"),)), scope(s="abc")) == "ABC"
        assert eval_expr(FuncCall("coalesce", (Const(None), Const(5))), scope()) == 5
        assert eval_expr(FuncCall("length", (Const("abc"),)), scope()) == 3

    def test_unknown_function_raises(self):
        with pytest.raises(ExprError):
            eval_expr(FuncCall("sqrt", (Const(4),)), scope())

    def test_aggregate_outside_group_raises(self):
        with pytest.raises(ExprError):
            eval_expr(FuncCall("count", (Star(),)), scope())

    def test_subquery_predicates_require_callback(self):
        with pytest.raises(ExprError):
            eval_expr(Exists(query=object()), scope())

    def test_subquery_predicates_with_callback(self):
        rows = [(1,), (2,), (None,)]
        def subquery_eval(_query, _scope):
            return rows
        assert eval_expr(Exists(query="q"), scope(), subquery_eval) is True
        assert eval_expr(InSubquery(Col("a"), query="q"), scope(a=2), subquery_eval) is True
        assert eval_expr(InSubquery(Col("a"), query="q"), scope(a=9), subquery_eval) is None
        all_cmp = QuantifiedComparison(Col("a"), ">=", "all", query="q")
        assert eval_expr(all_cmp, scope(a=5), lambda q, s: [(1,), (2,)]) is True
        any_cmp = QuantifiedComparison(Col("a"), "=", "any", query="q")
        assert eval_expr(any_cmp, scope(a=2), lambda q, s: [(1,), (2,)]) is True

    def test_scope_resolution_and_ambiguity(self):
        s = Scope()
        s.bind("S", ("sid", "sname"), (1, "Dustin"))
        s.bind("R", ("sid", "bid"), (1, 102))
        assert s.lookup("sname") == "Dustin"
        assert s.lookup("sid", "R") == 1
        with pytest.raises(NameResolutionError):
            s.lookup("sid")
        with pytest.raises(NameResolutionError):
            s.lookup("missing")

    def test_scope_outer_chain(self):
        outer = Scope().bind("S", ("sid",), (7,))
        inner = Scope(outer).bind("R", ("bid",), (102,))
        assert inner.lookup("sid") == 7
        assert inner.lookup("bid") == 102

    def test_compute_aggregates(self):
        scopes = [scope(a=1), scope(a=2), scope(a=None), scope(a=2)]
        assert compute_aggregate(FuncCall("count", (Star(),)), scopes) == 4
        assert compute_aggregate(FuncCall("count", (Col("a"),)), scopes) == 3
        assert compute_aggregate(FuncCall("sum", (Col("a"),)), scopes) == 5
        assert compute_aggregate(FuncCall("avg", (Col("a"),)), scopes) == pytest.approx(5 / 3)
        assert compute_aggregate(FuncCall("min", (Col("a"),)), scopes) == 1
        assert compute_aggregate(FuncCall("max", (Col("a"),)), scopes) == 2
        assert compute_aggregate(FuncCall("count", (Col("a"),), distinct=True), scopes) == 2

    def test_aggregate_over_empty_group(self):
        assert compute_aggregate(FuncCall("count", (Star(),)), []) == 0
        assert compute_aggregate(FuncCall("sum", (Col("a"),)), []) is None


class TestParserAndFormatter:
    def test_parse_simple_comparison(self):
        expr = parse_expression("color = 'red'")
        assert expr == Comparison(Col("color"), "=", Const("red"))

    def test_parse_precedence(self):
        expr = parse_expression("a = 1 or b = 2 and c = 3")
        assert isinstance(expr, Or)
        assert isinstance(expr.operands[1], And)

    def test_parse_arithmetic_precedence(self):
        expr = parse_expression("a + 2 * 3 < 10")
        assert isinstance(expr, Comparison)
        assert isinstance(expr.left, BinOp) and expr.left.op == "+"

    def test_parse_qualified_and_functions(self):
        expr = parse_expression("S.age >= 30 and lower(S.sname) = 'bob'")
        assert isinstance(expr, And)
        assert Col("age", "S") in list(expr.operands[0].children())

    def test_parse_not_in_between_like(self):
        assert isinstance(parse_expression("a not in (1, 2)"), InList)
        assert parse_expression("a not in (1, 2)").negated
        assert isinstance(parse_expression("a between 1 and 2"), Between)
        assert isinstance(parse_expression("s like 'a%'"), Like)
        assert isinstance(parse_expression("x is not null"), IsNull)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ExprError):
            parse_expression("a = ")
        with pytest.raises(ExprError):
            parse_expression("a = 1 extra")
        with pytest.raises(ExprError):
            parse_expression("#!?")

    def test_parse_eval_round_trip(self, db):
        expr = parse_expression("rating >= 7 and age < 50.0")
        sailors = db.relation("Sailors")
        kept = [row for row in sailors.to_dicts()
                if eval_predicate(expr, Scope.from_mapping(row))]
        assert {row["sname"] for row in kept} == {"Dustin", "Andy", "Rusty", "Horatio", "Zorba"}

    def test_format_round_trips_through_parser(self):
        texts = [
            "a = 1 AND b <> 2",
            "color = 'red' OR color = 'green'",
            "NOT (a < 5)",
            "age BETWEEN 20 AND 30",
            "sname LIKE 'D%'",
            "x IS NULL",
            "a IN (1, 2, 3)",
        ]
        for text in texts:
            parsed = parse_expression(text)
            again = parse_expression(format_expr(parsed))
            assert parsed == again

    def test_format_subquery_nodes(self):
        class FakeQuery:
            def to_sql(self):
                return "SELECT 1"

        assert format_expr(Exists(query=FakeQuery(), negated=True)) == "NOT EXISTS (SELECT 1)"
        text = format_expr(QuantifiedComparison(Col("a"), ">", "all", FakeQuery()))
        assert text == "a > ALL (SELECT 1)"
