"""Tests for the canonical query catalog (the tutorial's Part-3 workload)."""

from __future__ import annotations

import pytest

from repro.datalog import parse_datalog
from repro.drc import parse_drc
from repro.queries import (
    CANONICAL_QUERIES,
    LANGUAGES,
    Q4_ALL_RED,
    Q4_ALL_RED_DIVISION_RA,
    Q5_RED_OR_GREEN,
    queries_with_feature,
    query_by_id,
)
from repro.ra import parse_ra
from repro.sql import parse_sql
from repro.translate import answer_set
from repro.trc import parse_trc


class TestCatalogStructure:
    def test_five_queries_five_languages(self):
        assert len(CANONICAL_QUERIES) == 5
        assert LANGUAGES == ("SQL", "RA", "TRC", "DRC", "Datalog")
        for query in CANONICAL_QUERIES:
            assert set(query.languages()) == set(LANGUAGES)

    def test_lookup_by_id(self):
        assert query_by_id("q4") is Q4_ALL_RED
        with pytest.raises(KeyError):
            query_by_id("Q9")

    def test_feature_index(self):
        assert Q4_ALL_RED in queries_with_feature("universal")
        assert Q5_RED_OR_GREEN in queries_with_feature("disjunction")
        assert not queries_with_feature("aggregation")

    def test_every_representation_parses(self):
        for query in CANONICAL_QUERIES:
            parse_sql(query.sql)
            parse_ra(query.ra)
            parse_trc(query.trc)
            parse_drc(query.drc)
            assert len(parse_datalog(query.datalog)) >= 1

    def test_expected_names_are_nonempty_and_distinct(self):
        for query in CANONICAL_QUERIES:
            assert query.expected_names
            assert len(set(query.expected_names)) == len(query.expected_names)


class TestCatalogSemantics:
    def test_expected_names_match_every_language(self, db, canonical_query):
        expected = set(canonical_query.expected_names)
        for language, text in canonical_query.languages().items():
            names = {row[0] for row in answer_set(text, db)}
            assert names == expected, f"{canonical_query.id} disagrees in {language}"

    def test_division_constant_matches_on_cow_book_instance(self, db):
        assert answer_set(Q4_ALL_RED_DIVISION_RA, db) == answer_set(Q4_ALL_RED.ra, db)

    def test_q5_union_and_local_disjunction_agree(self, db):
        union_sql = (
            "SELECT S.sname FROM Sailors S, Reserves R, Boats B "
            "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'red' "
            "UNION "
            "SELECT S.sname FROM Sailors S, Reserves R, Boats B "
            "WHERE S.sid = R.sid AND R.bid = B.bid AND B.color = 'green'"
        )
        assert answer_set(union_sql, db) == answer_set(Q5_RED_OR_GREEN.sql, db)

    def test_features_reflect_query_structure(self):
        assert "division" in Q4_ALL_RED.features
        assert "union" in Q5_RED_OR_GREEN.features
        flat = query_by_id("Q1")
        assert "negation" not in flat.features
