"""QueryService: thread-safe serving under concurrent readers and writers.

The centerpiece is the hammer test the ISSUE asks for: N reader threads
serving a query mix while a writer thread appends rows, with the invariant
that **every answer matches a single-threaded evaluation at some database
version ≥ the request's start** — checked via a monotone COUNT(*) query
whose only valid answers are row counts between the count observed at
request start and the count observed at return — plus no exceptions and no
cache poisoning once the storm settles.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import PreparedQuery, QueryService, QueryVisualizationPipeline
from repro.data.relation import RelationError
from repro.data.sailors import random_sailors_database, sailors_database

JOIN_SQL = "SELECT DISTINCT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid"
COUNT_SQL = "SELECT COUNT(*) AS n FROM Reserves R"
GROUP_SQL = ("SELECT S.rating, COUNT(*) AS n FROM Sailors S, Reserves R "
             "WHERE S.sid = R.sid GROUP BY S.rating")
FALLBACK_SQL = ("SELECT S.sname FROM Sailors S LEFT JOIN Reserves R "
                "ON S.sid = R.sid WHERE R.sid IS NULL")


@pytest.fixture
def service():
    return QueryService(sailors_database())


class TestServing:
    def test_answers_match_the_pipeline(self, service):
        reference = QueryVisualizationPipeline(sailors_database())
        for sql in (JOIN_SQL, COUNT_SQL, GROUP_SQL):
            assert service.answer(sql).bag_equal(reference.answer(sql))

    def test_answers_are_frozen_and_copyable(self, service):
        answers = service.answer(JOIN_SQL)
        assert answers.is_frozen
        with pytest.raises(RelationError):
            answers.add(("Mallory",))
        copy = answers.copy()
        copy.add(("Mallory",))
        assert ("Mallory",) not in service.answer(JOIN_SQL).row_set()

    def test_warm_requests_hit_the_result_cache(self, service):
        service.answer(JOIN_SQL)
        again = service.answer(JOIN_SQL)
        info = service.cache_info()
        assert info["result_hits"] == 1 and info["result_misses"] == 1
        assert again.is_frozen

    def test_writes_through_the_service_invalidate(self, service):
        before = service.answer(JOIN_SQL)
        service.add_row("Reserves", (29, 101, "2025-05-05"))
        after = service.answer(JOIN_SQL)
        assert after.row_set() - before.row_set() == {("Brutus",)}

    def test_writing_context_manager_is_exclusive(self, service):
        with service.writing() as db:
            db.relation("Reserves").add((29, 103, "2025-05-06"))
        assert service.answer(COUNT_SQL).rows() == [(11,)]

    def test_fallback_reason_is_surfaced(self, service):
        warnings: list[str] = []
        service.answer(FALLBACK_SQL, warnings=warnings)
        assert len(warnings) == 1
        assert warnings[0].startswith("engine fallback to the SQL interpreter:")
        assert warnings[0].removeprefix(
            "engine fallback to the SQL interpreter:").strip()

    def test_warm_hits_replay_the_fallback_reason_without_duplicates(self, service):
        service.answer(FALLBACK_SQL)  # populate the cache, no out-list
        warnings: list[str] = []
        service.answer(FALLBACK_SQL, warnings=warnings)  # warm hit
        assert service.cache_info()["result_hits"] == 1
        assert len(warnings) == 1 and "fallback" in warnings[0]

    def test_unknown_language_rejected(self, service):
        with pytest.raises(ValueError):
            service.answer("SELECT 1", language="cypher")
        with pytest.raises(ValueError):
            service.prepare("SELECT 1", language="cypher")

    def test_parallel_backend_service(self):
        service = QueryService(sailors_database(), backend="parallel")
        reference = QueryVisualizationPipeline(sailors_database())
        assert service.answer(GROUP_SQL).bag_equal(reference.answer(GROUP_SQL))


class TestPreparedQueries:
    def test_prepare_seeds_the_plan_cache(self, service):
        handle = service.prepare(JOIN_SQL)
        assert isinstance(handle, PreparedQuery)
        assert service.cache_info()["plan_entries"] == 1
        first = handle.answer()
        assert service.cache_info()["plan_hits"] == 1  # compiled at prepare
        assert first.bag_equal(service.answer(JOIN_SQL))

    def test_prepare_raises_on_syntax_errors(self, service):
        with pytest.raises(Exception):
            service.prepare("SELEC oops FROM")

    def test_prepared_fallback_query_still_serves(self, service):
        handle = service.prepare(FALLBACK_SQL)
        from repro.sql.evaluate import evaluate_sql

        warnings: list[str] = []
        answers = handle.answer(warnings=warnings)
        assert answers.bag_equal(evaluate_sql(FALLBACK_SQL, service.db))
        assert warnings and "fallback" in warnings[0]

    def test_prepared_handle_tracks_writes(self, service):
        handle = service.prepare(COUNT_SQL)
        assert handle.answer().rows() == [(10,)]
        service.add_row("Reserves", (29, 104, "2025-05-07"))
        assert handle.answer().rows() == [(11,)]

    def test_prepare_autodetects_language(self, service):
        handle = service.prepare("project[sname](Sailors)")
        assert handle.language == "ra"
        assert ("Dustin",) in handle.answer().row_set()


class TestErrorPaths:
    """The failure surfaces a serving layer must keep well-defined."""

    def test_unregister_view_on_an_unknown_name_raises(self, service):
        with pytest.raises(KeyError):
            service.unregister_view("no_such_view")
        # ...and a failed unregister must not have disturbed real views.
        view = service.register_view(JOIN_SQL, name="real")
        with pytest.raises(KeyError):
            service.unregister_view("still_not_there")
        assert service.view("real") is view
        service.unregister_view("real")
        with pytest.raises(KeyError):
            service.view("real")

    def test_mutating_a_frozen_cached_relation_raises_and_does_not_poison(
            self, service):
        first = service.answer(JOIN_SQL)
        with pytest.raises(RelationError):
            first.add(("Mallory",))
        with pytest.raises(RelationError):
            first.add_rows([("Mallory",), ("Trudy",)])
        # The failed mutations must not have reached the shared cache: the
        # warm hit serves the identical, untainted bag.
        again = service.answer(JOIN_SQL)
        assert service.cache_info()["result_hits"] >= 1
        assert again.bag_equal(first)
        assert ("Mallory",) not in again.row_set()
        # The documented escape hatch: a private mutable copy.
        private = first.copy()
        private.add(("Mallory",))
        assert ("Mallory",) not in service.answer(JOIN_SQL).row_set()

    def test_prepared_handle_survives_a_benign_schema_change(self, service):
        from repro.data.relation import relation_from_rows

        handle = service.prepare(COUNT_SQL)
        assert handle.answer().rows() == [(10,)]
        plan_misses = service.cache_info()["plan_misses"]
        with service.writing() as db:
            db.add_relation(relation_from_rows(
                "Audit", [("event", "str")], [("created",)]))
        # The structure version moved, so the handle's plan recompiles
        # under the new schema instead of serving a stale compilation.
        assert handle.answer().rows() == [(10,)]
        assert service.cache_info()["plan_misses"] > plan_misses

    def test_prepared_handle_reflects_a_widened_relation(self, service):
        from repro.data.relation import Relation, relation_from_rows

        handle = service.prepare("SELECT S.sname FROM Sailors S WHERE S.rating > 9")
        before = handle.answer().row_set()
        assert before == {("Rusty",), ("Zorba",)}
        with service.writing() as db:
            old = db.relation("Sailors")
            widened = relation_from_rows(
                "Sailors",
                [("sid", "int"), ("sname", "str"), ("rating", "int"),
                 ("age", "float"), ("shoe_size", "int")],
                [row + (42,) for row in old.rows()])
            assert isinstance(widened, Relation)
            db.add_relation(widened)
        # Same query text, new schema: the recompiled plan still resolves
        # S.sname / S.rating and the answers are unchanged.
        assert handle.answer().row_set() == before

    def test_prepared_handle_raises_cleanly_when_its_relation_is_dropped(
            self, service):
        from repro.data.schema import SchemaError

        handle = service.prepare(COUNT_SQL)
        handle.answer()
        with service.writing() as db:
            db.drop_relation("Reserves")
        with pytest.raises(SchemaError):
            handle.answer()
        # The service stays usable for queries over the surviving schema.
        assert len(service.answer("SELECT S.sname FROM Sailors S")) == 10


class TestStatsSnapshots:
    def test_snapshot_is_version_consistent(self, service):
        version, snapshot = service.stats_snapshot()
        assert version == service.db.version
        assert snapshot["Reserves"].row_count == 10
        service.add_row("Reserves", (29, 101, "2025-06-01"))
        version2, snapshot2 = service.stats_snapshot()
        assert version2 > version
        assert snapshot2["Reserves"].row_count == 11

    def test_table_stats_follow_versions(self, service):
        first = service.table_stats("Sailors")
        assert service.table_stats("Sailors") is first  # cached
        service.add_row("Sailors", (99, "Zed", 5, 30.0))
        assert service.table_stats("Sailors").row_count == first.row_count + 1
        assert service.table_stats("NoSuchTable") is None


class TestConcurrencyHammer:
    """N readers over the catalog + a writer appending rows: no stale or
    torn answers, no exceptions (the ISSUE's satellite test)."""

    READERS = 4
    ITERATIONS = 30
    WRITES = 120

    def _run_storm(self, service):
        sailor_ids = [row[0] for row in service.db.relation("Sailors").rows()]
        boat_ids = [row[0] for row in service.db.relation("Boats").rows()]
        handles = [service.prepare(sql)
                   for sql in (COUNT_SQL, JOIN_SQL, GROUP_SQL)]
        errors: list[BaseException] = []
        violations: list[str] = []
        start_gate = threading.Barrier(self.READERS + 1)
        # Every write is exactly one Reserves row and bumps the database
        # version by exactly one, so the reserve count at version v is
        # ``base_count + (v - base_version)`` — the map that lets a reader
        # turn "the answer matches evaluation at some version ≥ my request
        # start" into a checkable row-count window.
        base_version = service.db.version
        base_count = len(service.db.relation("Reserves"))

        def reader() -> None:
            try:
                start_gate.wait()
                for _ in range(self.ITERATIONS):
                    version_lo = service.db.version
                    n = handles[0].answer().rows()[0][0]
                    version_hi = service.db.version
                    lo = base_count + (version_lo - base_version)
                    # +1: at most one write can be in flight (writes hold the
                    # write lock), and the storage layer publishes its row
                    # before its version bump.
                    hi = base_count + (version_hi - base_version) + 1
                    if not lo <= n <= hi:
                        violations.append(
                            f"COUNT answered {n}, outside [{lo}, {hi}]"
                        )
                    for handle in handles[1:]:
                        answers = handle.answer()
                        if not answers.is_frozen:
                            violations.append("served a mutable relation")
                    # Unprepared path too, under the same storm.
                    service.answer(COUNT_SQL)
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        def writer() -> None:
            try:
                start_gate.wait()
                for i in range(self.WRITES):
                    service.add_row(
                        "Reserves",
                        (sailor_ids[i % len(sailor_ids)],
                         boat_ids[i % len(boat_ids)],
                         f"2025-07-{(i % 28) + 1:02d}"))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(self.READERS)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not any(thread.is_alive() for thread in threads), "storm hung"
        assert not errors, f"exceptions under concurrency: {errors!r}"
        assert not violations, violations
        return handles

    def test_storm_leaves_no_stale_or_torn_answers(self):
        service = QueryService(
            random_sailors_database(n_sailors=60, n_boats=8, n_reserves=300,
                                    seed=21))
        handles = self._run_storm(service)
        info = service.cache_info()
        expected = self.READERS * self.ITERATIONS * (1 + len(handles))
        assert info["requests"] == expected
        assert info["result_hits"] + info["result_misses"] \
            + info["validation_retries"] >= expected
        # The storm is over: every served answer must now equal a fresh
        # single-threaded evaluation of the final database — i.e. the cache
        # holds no poisoned or torn entries for the final version.
        fresh = QueryVisualizationPipeline(service.db, result_cache_size=0)
        for handle in handles:
            assert handle.answer().bag_equal(fresh.answer(handle.text)), (
                f"stale cache entry for {handle.text!r}"
            )

    def test_storm_with_parallel_backend(self):
        service = QueryService(
            random_sailors_database(n_sailors=60, n_boats=8, n_reserves=300,
                                    seed=22),
            backend="parallel")
        self._run_storm(service)
