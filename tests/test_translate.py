"""Tests for the cross-language translators and the equivalence harness."""

from __future__ import annotations

import pytest

from repro.datalog import evaluate_datalog
from repro.drc import evaluate_drc, format_drc_query
from repro.queries import CANONICAL_QUERIES, Q2_RED_BOAT, Q4_ALL_RED
from repro.ra import evaluate as evaluate_ra, parse_ra, to_text
from repro.sql import evaluate_sql, parse_sql
from repro.translate import (
    EquivalenceError,
    RATranslationError,
    UnsupportedSQL,
    UnsupportedSQLForRA,
    agreement_matrix,
    answer_set,
    check_equivalence,
    datalog_to_ra,
    ra_to_datalog,
    sql_to_ra,
    sql_to_trc,
    standard_database_battery,
    trc_to_drc,
)
from repro.trc import evaluate_trc, format_trc_query, is_safe, parse_trc


def names(relation) -> set:
    return {row[0] for row in relation.distinct_rows()}


class TestSQLToTRC:
    def test_canonical_sql_translates_and_agrees(self, db, schema, canonical_query):
        trc = sql_to_trc(canonical_query.sql, schema)
        assert is_safe(trc)
        assert names(evaluate_trc(trc, db)) == set(canonical_query.expected_names)

    def test_correlated_exists(self, db, schema):
        sql = ("SELECT S.sname FROM Sailors S WHERE EXISTS "
               "(SELECT R.sid FROM Reserves R WHERE R.sid = S.sid AND R.bid = 103)")
        trc = sql_to_trc(sql, schema)
        assert names(evaluate_trc(trc, db)) == {"Dustin", "Lubber", "Horatio"}
        assert "exists" in format_trc_query(trc)

    def test_all_quantifier_becomes_double_negation(self, db, schema):
        sql = "SELECT S.sname FROM Sailors S WHERE S.rating >= ALL (SELECT S2.rating FROM Sailors S2)"
        trc = sql_to_trc(sql, schema)
        assert "not" in format_trc_query(trc)
        assert names(evaluate_trc(trc, db)) == {"Rusty", "Zorba"}

    def test_explicit_join_syntax(self, db, schema):
        sql = ("SELECT S.sname FROM Sailors S JOIN Reserves R ON S.sid = R.sid "
               "WHERE R.bid = 102")
        trc = sql_to_trc(sql, schema)
        assert names(evaluate_trc(trc, db)) == {"Dustin", "Lubber", "Horatio"}

    def test_union_requires_same_head_relation(self, schema):
        with pytest.raises(UnsupportedSQL):
            sql_to_trc("SELECT sname FROM Sailors UNION SELECT bname FROM Boats", schema)

    def test_union_on_same_relation_supported(self, db, schema):
        sql = ("SELECT S.sname FROM Sailors S WHERE S.rating = 10 UNION "
               "SELECT S2.sname FROM Sailors S2 WHERE S2.age > 60.0")
        trc = sql_to_trc(sql, schema)
        assert names(evaluate_trc(trc, db)) == {"Rusty", "Zorba", "Bob"}

    def test_unsupported_constructs(self, schema):
        for sql in [
            "SELECT COUNT(*) FROM Sailors",
            "SELECT rating FROM Sailors GROUP BY rating",
            "SELECT * FROM Sailors",
            "SELECT sname FROM Sailors S LEFT OUTER JOIN Reserves R ON S.sid = R.sid",
            "SELECT T.sname FROM (SELECT sname FROM Sailors) T",
        ]:
            with pytest.raises(UnsupportedSQL):
                sql_to_trc(sql, schema)

    def test_unknown_alias_or_column(self, schema):
        with pytest.raises(UnsupportedSQL):
            sql_to_trc("SELECT X.sname FROM Sailors S", schema)
        with pytest.raises(UnsupportedSQL):
            sql_to_trc("SELECT S.shoesize FROM Sailors S", schema)


class TestTRCToDRC:
    def test_canonical_queries_round(self, db, schema, canonical_query):
        trc = parse_trc(canonical_query.trc)
        drc = trc_to_drc(trc, schema)
        assert names(evaluate_drc(drc, db)) == set(canonical_query.expected_names)

    def test_variables_are_expanded_positionally(self, schema):
        trc = parse_trc("{ s.sname | Sailors(s) and s.rating > 7 }")
        drc = trc_to_drc(trc, schema)
        text = format_drc_query(drc)
        assert "Sailors(s_sid, s_sname, s_rating, s_age)" in text
        assert "s_rating > 7" in text

    def test_head_variables_stay_free(self, schema):
        trc = parse_trc("{ s.sname, s.age | Sailors(s) }")
        drc = trc_to_drc(trc, schema)
        assert [v.name for v in drc.head_variables()] == ["s_sname", "s_age"]


class TestSQLToRA:
    def test_flat_queries(self, db, schema):
        for query in (CANONICAL_QUERIES[0], CANONICAL_QUERIES[1], CANONICAL_QUERIES[4]):
            ra = sql_to_ra(query.sql, schema)
            assert names(evaluate_ra(ra, db)) == set(query.expected_names)

    def test_uncorrelated_in_becomes_semijoin(self, db, schema):
        sql = "SELECT S.sname FROM Sailors S WHERE S.sid IN (SELECT R.sid FROM Reserves R WHERE R.bid = 102)"
        ra = sql_to_ra(sql, schema)
        assert "semijoin" in to_text(ra)
        assert names(evaluate_ra(ra, db)) == {"Dustin", "Lubber", "Horatio"}

    def test_not_in_becomes_antijoin(self, db, schema):
        sql = "SELECT S.sname FROM Sailors S WHERE S.sid NOT IN (SELECT R.sid FROM Reserves R)"
        ra = sql_to_ra(sql, schema)
        assert "antijoin" in to_text(ra)
        assert names(evaluate_ra(ra, db)) == {"Brutus", "Andy", "Rusty", "Zorba", "Art", "Bob"}

    def test_correlated_subquery_rejected(self, schema):
        with pytest.raises(UnsupportedSQLForRA):
            sql_to_ra(Q4_ALL_RED.sql, schema)

    def test_aggregates_rejected(self, schema):
        with pytest.raises(UnsupportedSQLForRA):
            sql_to_ra("SELECT COUNT(*) FROM Sailors", schema)

    def test_set_operations(self, db, schema):
        sql = ("SELECT bid FROM Boats WHERE color = 'red' "
               "UNION SELECT bid FROM Boats WHERE bid = 101")
        assert set(evaluate_ra(sql_to_ra(sql, schema), db).rows()) == {(101,), (102,), (104,)}


class TestRADatalog:
    def test_ra_to_datalog_for_canonical_queries(self, db, schema, canonical_query):
        ra = parse_ra(canonical_query.ra)
        program = ra_to_datalog(ra, schema)
        result = evaluate_datalog(program, db)
        assert names(result) == set(canonical_query.expected_names)

    def test_division_uses_double_negation(self, schema):
        ra = parse_ra(Q4_ALL_RED.ra)
        program = ra_to_datalog(ra, schema)
        negated = [lit for rule in program for lit in rule.negative_literals()]
        assert len(negated) >= 2  # the two-negation division pattern

    def test_datalog_to_ra_round_trip(self, db, schema, canonical_query):
        program = ra_to_datalog(parse_ra(canonical_query.ra), schema)
        back = datalog_to_ra(program, schema)
        assert names(evaluate_ra(back, db)) == set(canonical_query.expected_names)

    def test_datalog_to_ra_direct_programs(self, db, schema, canonical_query):
        from repro.datalog import parse_datalog

        program = parse_datalog(canonical_query.datalog)
        back = datalog_to_ra(program, schema)
        assert names(evaluate_ra(back, db)) == set(canonical_query.expected_names)

    def test_recursive_program_rejected(self, schema):
        from repro.datalog import parse_datalog

        program = parse_datalog("path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z).")
        with pytest.raises(RATranslationError):
            datalog_to_ra(program, schema)


class TestEquivalenceHarness:
    def test_answer_relation_dispatch(self, db, schema):
        query = Q2_RED_BOAT
        answers = {
            "sql": answer_set(query.sql, db),
            "sql_ast": answer_set(parse_sql(query.sql), db),
            "ra_text": answer_set(query.ra, db),
            "ra_ast": answer_set(parse_ra(query.ra), db),
            "trc": answer_set(query.trc, db),
            "drc": answer_set(query.drc, db),
            "datalog": answer_set(query.datalog, db),
            "relation": answer_set(evaluate_sql(query.sql, db), db),
        }
        assert len(set(answers.values())) == 1

    def test_answer_relation_unknown_type(self, db):
        with pytest.raises(EquivalenceError):
            answer_set(3.14, db)

    def test_check_equivalence_canonical(self, canonical_query):
        result = check_equivalence(list(canonical_query.languages().values()),
                                   standard_database_battery(extra_random=2, rows=6))
        assert result.equivalent
        assert result.databases_checked >= 3

    def test_check_equivalence_detects_difference(self, db):
        result = check_equivalence([
            "SELECT sname FROM Sailors WHERE rating > 7",
            "SELECT sname FROM Sailors WHERE rating >= 7",
        ])
        assert not result.equivalent
        assert result.counterexample is not None
        assert result.details

    def test_agreement_matrix_is_symmetric(self):
        matrix = agreement_matrix(
            {"SQL": Q2_RED_BOAT.sql, "RA": Q2_RED_BOAT.ra, "TRC": Q2_RED_BOAT.trc},
            standard_database_battery(extra_random=1, rows=5),
        )
        assert matrix[("SQL", "RA")] and matrix[("RA", "SQL")]
        assert all(matrix[(a, a)] for a in ("SQL", "RA", "TRC"))

    def test_battery_contains_edge_cases(self):
        battery = standard_database_battery(extra_random=1)
        assert battery[1].total_rows() == 0
        assert battery[0].total_rows() == 24
