"""Tests for the first-order / propositional logic core."""

from __future__ import annotations

import pytest

from repro.logic import (
    And,
    Atom,
    Compare,
    Const,
    Exists,
    ForAll,
    Iff,
    Implies,
    LogicError,
    Not,
    Or,
    Structure,
    Truth,
    Var,
    all_variables,
    atoms_of,
    bound_variables,
    eliminate_implications,
    entails,
    eval_propositional,
    evaluate,
    free_variables,
    fresh_variable,
    fresh_variables,
    is_propositional,
    is_satisfiable,
    is_sentence,
    is_tautology,
    models_of,
    negation_depth,
    predicates_of,
    prop,
    propositionally_equivalent,
    quantifier_depth,
    quantifier_prefix,
    rename_variables,
    satisfying_assignments,
    simplify,
    standardize_apart,
    substitute,
    term_of,
    to_exists_and_not,
    to_nnf,
    to_prenex,
    truth_table,
    variables_in,
)

x, y, z = Var("x"), Var("y"), Var("z")
P = lambda *terms: Atom("P", terms)  # noqa: E731
Q = lambda *terms: Atom("Q", terms)  # noqa: E731


class TestTermsAndFormulas:
    def test_term_of_lifts_values(self):
        assert term_of(3) == Const(3)
        assert term_of(x) is x

    def test_variables_in_dedupes(self):
        assert variables_in([x, Const(1), y, x]) == [x, y]

    def test_fresh_variable_avoids_taken_names(self):
        assert fresh_variable("x", {"y"}).name == "x"
        assert fresh_variable("x", {"x", "x1"}).name == "x2"
        names = [v.name for v in fresh_variables(3, "v", {"v"})]
        assert len(set(names)) == 3 and "v" not in names

    def test_free_and_bound_variables(self):
        formula = Exists((y,), And((P(x, y), Not(Q(z)))))
        assert [v.name for v in free_variables(formula)] == ["x", "z"]
        assert [v.name for v in bound_variables(formula)] == ["y"]
        assert {v.name for v in all_variables(formula)} == {"x", "y", "z"}
        assert not is_sentence(formula)
        assert is_sentence(Exists((x, z, y), And((P(x, y), Q(z)))))

    def test_compare_normalises_operator(self):
        assert Compare(x, "!=", y).op == "<>"
        with pytest.raises(LogicError):
            Compare(x, "~", y)

    def test_substitute_respects_binding(self):
        formula = And((P(x), Exists((x,), Q(x))))
        result = substitute(formula, {"x": Const(1)})
        assert result == And((P(Const(1)), Exists((x,), Q(x))))

    def test_rename_variables(self):
        formula = Exists((x,), P(x, y))
        renamed = rename_variables(formula, {"x": "a", "y": "b"})
        assert str(renamed) == "∃a. P(a, b)"

    def test_atoms_and_predicates(self):
        formula = And((P(x), Q(y), P(z)))
        assert len(atoms_of(formula)) == 3
        assert predicates_of(formula) == ["P", "Q"]

    def test_operator_sugar(self):
        formula = P(x) & ~Q(y) | P(y)
        assert isinstance(formula, Or)


class TestTransforms:
    def test_eliminate_implications(self):
        formula = eliminate_implications(Implies(P(x), Q(x)))
        assert isinstance(formula, Or)
        iff = eliminate_implications(Iff(P(x), Q(x)))
        assert isinstance(iff, And)

    def test_nnf_pushes_negations(self):
        formula = Not(And((P(x), Not(Q(x)))))
        nnf = to_nnf(formula)
        assert isinstance(nnf, Or)
        assert nnf == Or((Not(P(x)), Q(x)))

    def test_nnf_swaps_quantifiers(self):
        formula = Not(ForAll((x,), P(x)))
        assert to_nnf(formula) == Exists((x,), Not(P(x)))

    def test_standardize_apart_renames_duplicates(self):
        formula = And((Exists((x,), P(x)), Exists((x,), Q(x))))
        apart = standardize_apart(formula)
        bound = [v.name for v in bound_variables(apart)]
        assert len(bound) == len(set(bound)) == 2

    def test_prenex_produces_leading_quantifiers(self):
        formula = And((Exists((x,), P(x)), ForAll((y,), Q(y))))
        prenex = to_prenex(formula)
        prefix = quantifier_prefix(prenex)
        assert len(prefix) == 2
        assert {kind for kind, _ in prefix} == {"exists", "forall"}

    def test_to_exists_and_not_removes_forall_and_or(self):
        formula = ForAll((x,), Or((P(x), Q(x))))
        rewritten = to_exists_and_not(formula)
        assert "ForAll" not in repr(type_walk(rewritten))
        assert "Or" not in repr(type_walk(rewritten))

    def test_simplify_drops_double_negation_and_constants(self):
        assert simplify(Not(Not(P(x)))) == P(x)
        assert simplify(And((P(x), Truth(True)))) == P(x)
        assert simplify(And((P(x), Truth(False)))) == Truth(False)
        assert simplify(Or((P(x), Truth(True)))) == Truth(True)

    def test_depth_measures(self):
        formula = Exists((x,), Not(ForAll((y,), Not(P(x, y)))))
        assert quantifier_depth(formula) == 2
        assert negation_depth(formula) == 2


def type_walk(formula):
    return [type(node).__name__ for node in formula.walk()]


class TestSemantics:
    def setup_method(self):
        self.structure = Structure(
            domain=[1, 2, 3],
            relations={"P": [(1,), (2,)], "R": [(1, 2), (2, 3)]},
        )

    def test_atom_evaluation(self):
        assert evaluate(Atom("P", (Const(1),)), self.structure)
        assert not evaluate(Atom("P", (Const(3),)), self.structure)

    def test_unbound_variable_raises(self):
        with pytest.raises(LogicError):
            evaluate(Atom("P", (x,)), self.structure)

    def test_quantifiers(self):
        some = Exists((x,), Atom("P", (x,)))
        every = ForAll((x,), Atom("P", (x,)))
        assert evaluate(some, self.structure)
        assert not evaluate(every, self.structure)
        chain = ForAll((x,), Implies(Atom("P", (x,)),
                                     Exists((y,), Atom("R", (x, y)))))
        assert evaluate(chain, self.structure)

    def test_comparisons_in_formulas(self):
        formula = Exists((x,), And((Atom("P", (x,)), Compare(x, ">", Const(1)))))
        assert evaluate(formula, self.structure)

    def test_satisfying_assignments(self):
        formula = Atom("R", (x, y))
        assignments = satisfying_assignments(formula, self.structure)
        assert {(a["x"], a["y"]) for a in assignments} == {(1, 2), (2, 3)}

    def test_structure_from_database(self, db):
        structure = Structure.from_database(db)
        assert structure.has_fact("Boats", (102, "Interlake", "red"))
        formula = Exists((x, y, z), Atom("Reserves", (Const(22), x, y)))
        # arity mismatch on purpose: Reserves has 3 attributes, so use 2 bound vars
        formula = Exists((x, y), Atom("Reserves", (Const(22), x, y)))
        assert evaluate(formula, structure)


class TestPropositional:
    def test_truth_table_size(self):
        p, q = prop("p"), prop("q")
        table = truth_table(Implies(p, q))
        assert len(table) == 4

    def test_tautology_and_contradiction(self):
        p = prop("p")
        assert is_tautology(Or((p, Not(p))))
        assert not is_satisfiable(And((p, Not(p))))
        assert is_satisfiable(p)

    def test_equivalence_de_morgan(self):
        p, q = prop("p"), prop("q")
        assert propositionally_equivalent(Not(And((p, q))), Or((Not(p), Not(q))))
        assert not propositionally_equivalent(p, q)

    def test_entailment_modus_ponens(self):
        p, q = prop("p"), prop("q")
        assert entails([p, Implies(p, q)], q)
        assert not entails([Implies(p, q)], q)

    def test_models_of(self):
        p, q = prop("p"), prop("q")
        models = models_of(And((p, Not(q))))
        assert models == [{"p": True, "q": False}]

    def test_is_propositional(self):
        assert is_propositional(And((prop("p"), prop("q"))))
        assert not is_propositional(Exists((x,), P(x)))
        assert not is_propositional(P(x))

    def test_eval_propositional_requires_valuation(self):
        with pytest.raises(LogicError):
            eval_propositional(prop("p"), {})
        with pytest.raises(LogicError):
            eval_propositional(P(x), {"P": True})
