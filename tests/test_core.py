"""Tests for the core framework: diagram model, layout, renderers, metrics,
patterns, registry, principles, and the Fig. 1/2 pipeline."""

from __future__ import annotations

import pytest

from repro.core import (
    Diagram,
    DiagramEdge,
    DiagramError,
    DiagramGroup,
    DiagramNode,
    PRINCIPLES,
    QueryVisualizationPipeline,
    compute_layout,
    coverage_matrix,
    explain_sql,
    formalism,
    implemented_formalisms,
    isomorphic,
    measure,
    merge_side_by_side,
    normalize_trc,
    pattern_of,
    principles_table,
    same_pattern,
    score_formalism,
    size_table,
    visualize_sql,
)
from repro.core.metrics import compare
from repro.core.registry import FEATURES, REGISTRY
from repro.queries import CANONICAL_QUERIES, Q4_ALL_RED, Q5_RED_OR_GREEN
from repro.translate import sql_to_trc
from repro.trc import parse_trc


def small_diagram() -> Diagram:
    d = Diagram("demo", formalism="test")
    outer = d.add_group(DiagramGroup("outer", "SELECT"))
    inner = d.add_group(DiagramGroup("inner", "NOT", "outer", "negation"))
    d.add_node(DiagramNode("a", "table", "Sailors s", ("sid", "sname"), "outer"))
    d.add_node(DiagramNode("b", "table", "Reserves r", ("sid", "bid"), "inner"))
    d.add_edge(DiagramEdge("a", "b", source_port="sid", target_port="sid", kind="join"))
    return d


class TestDiagramModel:
    def test_structure_and_counts(self):
        d = small_diagram()
        counts = d.element_counts()
        assert counts["nodes"] == 2
        assert counts["attribute_rows"] == 4
        assert counts["edges"] == 1
        assert counts["groups"] == 2
        assert counts["negation_groups"] == 1
        assert counts["max_nesting_depth"] == 2
        assert d.total_ink() == 2 + 4 + 1 + 2
        assert d.validate() == []

    def test_group_nesting_queries(self):
        d = small_diagram()
        assert d.group_depth("inner") == 1
        assert d.ancestors_of_node("b") == ["inner", "outer"]
        nodes, groups = d.children_of("outer")
        assert [n.id for n in nodes] == ["a"]
        assert [g.id for g in groups] == ["inner"]

    def test_duplicate_and_dangling_are_rejected(self):
        d = small_diagram()
        with pytest.raises(DiagramError):
            d.add_node(DiagramNode("a", "table", "again"))
        with pytest.raises(DiagramError):
            d.add_edge(DiagramEdge("a", "zzz"))
        with pytest.raises(DiagramError):
            d.add_node(DiagramNode("c", group="nope"))

    def test_validate_detects_bad_ports(self):
        d = small_diagram()
        d.edges.append(DiagramEdge("a", "b", source_port="missing"))
        assert any("unknown row" in problem for problem in d.validate())

    def test_fresh_ids_unique(self):
        d = small_diagram()
        ids = {d.fresh_id() for _ in range(50)}
        assert len(ids) == 50

    def test_merge_side_by_side(self):
        combined = merge_side_by_side([small_diagram(), small_diagram()], labels=["L", "R"])
        assert len(combined.nodes) == 4
        assert len(combined.groups) == 6  # 2 wrappers + 2x2 original groups
        assert combined.validate() == []


class TestLayoutAndRenderers:
    def test_layout_containment(self):
        d = small_diagram()
        layout = compute_layout(d)
        outer = layout.group_boxes["outer"]
        inner = layout.group_boxes["inner"]
        node_b = layout.node_boxes["b"]
        assert inner.x >= outer.x and inner.bottom <= outer.bottom + 1e-6
        assert node_b.x >= inner.x and node_b.right <= inner.right + 1e-6
        assert layout.width > 0 and layout.height > 0

    def test_svg_output_is_wellformed_enough(self):
        svg = small_diagram().to_svg()
        assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
        assert svg.count("<rect") >= 4  # background + 2 groups + nodes
        assert "Sailors s" in svg

    def test_dot_output_contains_clusters_and_ports(self):
        dot = small_diagram().to_dot()
        assert dot.startswith("digraph")
        assert "cluster_outer" in dot and "cluster_inner" in dot
        assert '"a":r0 -> "b":r0' in dot

    def test_ascii_output_mentions_everything(self):
        text = small_diagram().to_ascii()
        assert "Sailors s" in text and "Reserves r" in text
        assert "NOT" in text
        assert "connections:" in text

    def test_renderers_work_for_all_canonical_queries(self, schema, canonical_query):
        diagram = visualize_sql(canonical_query.sql, formalism="relational_diagrams")
        assert diagram.to_svg()
        assert diagram.to_dot()
        assert diagram.to_ascii()


class TestMetrics:
    def test_measure_and_table(self, schema):
        d_queryvis = visualize_sql(Q4_ALL_RED.sql, formalism="queryvis")
        d_relational = visualize_sql(Q4_ALL_RED.sql, formalism="relational_diagrams")
        metrics = compare({"queryvis": d_queryvis, "relational_diagrams": d_relational})
        assert metrics["queryvis"].line_roles["flow"] >= 1      # reading-order arrows
        assert metrics["relational_diagrams"].line_roles["flow"] == 0
        assert metrics["queryvis"].distinct_line_roles >= 2
        table = size_table(metrics)
        assert "queryvis" in table and "ink" in table

    def test_measure_counts_match_element_counts(self):
        d = small_diagram()
        assert measure(d).counts == d.element_counts()


class TestPatterns:
    def test_normalize_flattens_exists(self):
        trc = parse_trc("{ s.sname | Sailors(s) and exists r (Reserves(r) and exists b (Boats(b))) }")
        normalized = normalize_trc(trc.body)
        pattern = pattern_of(parse_trc(
            "{ s.sname | Sailors(s) and exists r, b (Reserves(r) and Boats(b)) }"))
        assert isomorphic(pattern_of(type(trc)(trc.head, normalized)), pattern)

    def test_not_in_vs_not_exists_share_a_pattern(self, schema):
        not_in = ("SELECT S.sname FROM Sailors S WHERE S.sid NOT IN "
                  "(SELECT R.sid FROM Reserves R WHERE R.bid = 103)")
        not_exists = ("SELECT S.sname FROM Sailors S WHERE NOT EXISTS "
                      "(SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid = 103)")
        # NOT EXISTS (SELECT *) is not translatable (SELECT *), so spell the column:
        not_exists = not_exists.replace("SELECT *", "SELECT R.sid")
        assert same_pattern(not_in, not_exists, schema)

    def test_alias_and_order_invariance(self, schema):
        a = "SELECT X.sname FROM Sailors X, Reserves Y WHERE X.sid = Y.sid AND Y.bid = 102"
        b = "SELECT S.sname FROM Sailors S, Reserves R WHERE R.bid = 102 AND S.sid = R.sid"
        assert same_pattern(a, b, schema)

    def test_different_constants_or_structure_differ(self, schema):
        a = "SELECT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid AND R.bid = 102"
        b = "SELECT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid AND R.bid = 103"
        c = "SELECT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid"
        assert not same_pattern(a, b, schema)
        assert not same_pattern(a, c, schema)

    def test_negation_depth_matters(self, schema):
        positive = ("SELECT S.sname FROM Sailors S WHERE S.sid IN "
                    "(SELECT R.sid FROM Reserves R)")
        negative = ("SELECT S.sname FROM Sailors S WHERE S.sid NOT IN "
                    "(SELECT R.sid FROM Reserves R)")
        assert not same_pattern(positive, negative, schema)

    def test_pattern_size_and_disjunction_flag(self, schema):
        pattern = pattern_of(sql_to_trc(Q5_RED_OR_GREEN.sql, schema))
        assert pattern.has_disjunction
        size = pattern.size()
        assert size["variables"] == 3
        pattern4 = pattern_of(sql_to_trc(Q4_ALL_RED.sql, schema))
        assert pattern4.size()["max_negation_depth"] == 2
        assert pattern4.size()["negation_scopes"] == 2

    def test_isomorphism_is_reflexive_and_symmetric(self, schema, canonical_query):
        pattern = pattern_of(sql_to_trc(canonical_query.sql, schema))
        assert isomorphic(pattern, pattern)


class TestRegistryAndPrinciples:
    def test_registry_contents(self):
        assert len(REGISTRY) >= 18
        families = {info.family for info in REGISTRY}
        assert families == {"early", "modern"}
        assert formalism("queryvis").based_on == "TRC"
        with pytest.raises(KeyError):
            formalism("doodle")
        assert len(implemented_formalisms()) >= 12

    def test_capability_vectors_cover_all_features(self):
        for info in REGISTRY:
            assert set(info.supports) == set(FEATURES)

    def test_coverage_matrix_shape(self):
        matrix = coverage_matrix()
        assert set(matrix) == {info.key for info in REGISTRY}
        # Every formalism answers for every canonical query.
        for row in matrix.values():
            assert set(row) == {q.id for q in CANONICAL_QUERIES}
        # The tutorial's headline: disjunction (Q5) is the hardest case.
        q5_count = sum(1 for row in matrix.values() if row["Q5"])
        q1_count = sum(1 for row in matrix.values() if row["Q1"])
        assert q5_count < q1_count
        assert not matrix["queryvis"]["Q5"]
        assert matrix["peirce_beta"]["Q5"]
        assert not matrix["query_builders"]["Q4"]

    def test_principles_definitions(self):
        assert len(PRINCIPLES) == 4
        assert {p.key for p in PRINCIPLES} == {
            "correspondence", "invariance", "completeness", "economy"}

    def test_score_trc_vs_syntax_formalisms(self):
        queryvis = score_formalism("queryvis")
        sqlvis = score_formalism("sqlvis")
        assert queryvis.scores["invariance"] is True
        assert queryvis.scores["correspondence"] is True
        assert sqlvis.scores["invariance"] is False
        assert sqlvis.scores["correspondence"] is False
        assert queryvis.satisfied_count() >= 3

    def test_principles_table_runs_for_selected_formalisms(self):
        table = principles_table(["queryvis", "relational_diagrams", "dfql"])
        assert set(table) == {"queryvis", "relational_diagrams", "dfql"}
        assert table["relational_diagrams"].scores["economy"] is True


class TestPipeline:
    def test_visualize_and_explain(self, db):
        diagram = visualize_sql(Q4_ALL_RED.sql, db)
        assert diagram.formalism == "queryvis"
        explanation = explain_sql(Q4_ALL_RED.sql, db)
        assert "universal quantification" in explanation

    def test_full_pipeline_result(self, db, canonical_query):
        pipeline = QueryVisualizationPipeline(db)
        result = pipeline.run(canonical_query.sql)
        assert {row[0] for row in result.answers.distinct_rows()} == set(
            canonical_query.expected_names)
        assert result.trc is not None
        assert result.pattern is not None
        assert "TRC" in result.languages
        assert set(result.timings) >= {"parse", "translate", "diagram", "evaluate"}
        summary = result.summary()
        assert "Answers" in summary and "SQL:" in summary

    def test_pipeline_handles_untranslatable_sql(self, db):
        pipeline = QueryVisualizationPipeline(db, formalism="sqlvis")
        result = pipeline.run("SELECT B.color, COUNT(*) AS n FROM Boats B GROUP BY B.color")
        assert result.trc is None
        assert result.warnings
        assert result.answers is not None

    def test_round_trip_consistency_check(self, db):
        pipeline = QueryVisualizationPipeline(db)
        a = "SELECT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid AND R.bid = 102"
        b = "SELECT X.sname FROM Sailors X, Reserves Y WHERE Y.bid = 102 AND X.sid = Y.sid"
        c = "SELECT S.sname FROM Sailors S, Reserves R WHERE S.sid = R.sid AND R.bid = 104"
        assert pipeline.round_trip_consistent(a, b)
        assert not pipeline.round_trip_consistent(a, c)

    def test_pipeline_other_formalisms(self, db):
        for key in ("relational_diagrams", "peirce_beta", "visual_sql"):
            result = QueryVisualizationPipeline(db, formalism=key).run(
                CANONICAL_QUERIES[0].sql, evaluate=False)
            assert result.diagram.nodes
