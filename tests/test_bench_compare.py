"""The CI perf-regression gate: ``benchmarks/compare_bench.py`` semantics."""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "benchmarks", "compare_bench.py"))
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


def _write(path, records):
    payload = {"suite": "x", "records": records}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def _record(workload="w", size=100, backend="view", wall_ms=1.0, speedup=10.0):
    return {"workload": workload, "size": size, "backend": backend,
            "wall_ms": wall_ms, "speedup": speedup}


@pytest.fixture
def dirs(tmp_path):
    baselines = tmp_path / "baselines"
    artifacts = tmp_path / "artifacts"
    baselines.mkdir()
    artifacts.mkdir()
    return baselines, artifacts


class TestCompareSuite:
    def test_within_threshold_passes(self, dirs):
        baselines, artifacts = dirs
        _write(baselines / "BENCH_x.json", [_record(speedup=10.0)])
        _write(artifacts / "BENCH_x.json", [_record(speedup=7.5)])
        failures, notes = compare_bench.compare_suite(
            "x", str(baselines / "BENCH_x.json"),
            str(artifacts / "BENCH_x.json"), 0.30)
        assert not failures
        assert len(notes) == 1

    def test_regression_beyond_threshold_fails(self, dirs):
        baselines, artifacts = dirs
        _write(baselines / "BENCH_x.json", [_record(speedup=10.0)])
        _write(artifacts / "BENCH_x.json", [_record(speedup=6.9)])
        failures, _notes = compare_bench.compare_suite(
            "x", str(baselines / "BENCH_x.json"),
            str(artifacts / "BENCH_x.json"), 0.30)
        assert len(failures) == 1 and "regressed" in failures[0]

    def test_vanished_benchmark_fails(self, dirs):
        baselines, artifacts = dirs
        _write(baselines / "BENCH_x.json",
               [_record("a", speedup=5.0), _record("b", speedup=5.0)])
        _write(artifacts / "BENCH_x.json", [_record("a", speedup=5.0)])
        failures, _notes = compare_bench.compare_suite(
            "x", str(baselines / "BENCH_x.json"),
            str(artifacts / "BENCH_x.json"), 0.30)
        assert len(failures) == 1 and "disappeared" in failures[0]

    def test_new_untracked_record_passes(self, dirs):
        baselines, artifacts = dirs
        _write(baselines / "BENCH_x.json", [_record("a", speedup=5.0)])
        _write(artifacts / "BENCH_x.json",
               [_record("a", speedup=5.0), _record("new", speedup=1.0)])
        failures, notes = compare_bench.compare_suite(
            "x", str(baselines / "BENCH_x.json"),
            str(artifacts / "BENCH_x.json"), 0.30)
        assert not failures
        assert any("untracked" in note for note in notes)

    def test_missing_artifact_fails(self, dirs):
        baselines, artifacts = dirs
        _write(baselines / "BENCH_x.json", [_record()])
        failures, _notes = compare_bench.compare_suite(
            "x", str(baselines / "BENCH_x.json"),
            str(artifacts / "BENCH_missing.json"), 0.30)
        assert failures

    def test_improvements_never_fail(self, dirs):
        baselines, artifacts = dirs
        _write(baselines / "BENCH_x.json", [_record(speedup=10.0)])
        _write(artifacts / "BENCH_x.json", [_record(speedup=50.0)])
        failures, _notes = compare_bench.compare_suite(
            "x", str(baselines / "BENCH_x.json"),
            str(artifacts / "BENCH_x.json"), 0.30)
        assert not failures


class TestMainGate:
    def test_main_exit_codes(self, dirs, capsys):
        baselines, artifacts = dirs
        _write(baselines / "BENCH_x.json", [_record(speedup=10.0)])
        _write(artifacts / "BENCH_x.json", [_record(speedup=9.0)])
        assert compare_bench.main(["--artifacts", str(artifacts),
                                   "--baselines", str(baselines)]) == 0
        _write(artifacts / "BENCH_x.json", [_record(speedup=1.0)])
        assert compare_bench.main(["--artifacts", str(artifacts),
                                   "--baselines", str(baselines)]) == 1
        capsys.readouterr()

    def test_update_promotes_artifacts(self, dirs):
        baselines, artifacts = dirs
        _write(artifacts / "BENCH_x.json", [_record(speedup=3.0)])
        assert compare_bench.main(["--artifacts", str(artifacts),
                                   "--baselines", str(baselines),
                                   "--update"]) == 0
        assert (baselines / "BENCH_x.json").exists()


class TestNewSuiteBootstrap:
    """Suites measured but not yet tracked are informational, not failures."""

    def test_artifact_only_suite_passes_with_a_note(self, dirs, capsys):
        baselines, artifacts = dirs
        _write(baselines / "BENCH_x.json", [_record(speedup=10.0)])
        _write(artifacts / "BENCH_x.json", [_record(speedup=10.0)])
        _write(artifacts / "BENCH_new.json",
               [_record(workload="fresh", speedup=2.0),
                _record(workload="fresh2", speedup=3.0)])
        assert compare_bench.main(["--artifacts", str(artifacts),
                                   "--baselines", str(baselines)]) == 0
        out = capsys.readouterr().out
        assert "new: new suite, 2 record(s)" in out
        assert "bootstrap" in out

    def test_bootstrap_note_does_not_mask_real_regressions(self, dirs, capsys):
        baselines, artifacts = dirs
        _write(baselines / "BENCH_x.json", [_record(speedup=10.0)])
        _write(artifacts / "BENCH_x.json", [_record(speedup=1.0)])
        _write(artifacts / "BENCH_new.json", [_record(speedup=2.0)])
        assert compare_bench.main(["--artifacts", str(artifacts),
                                   "--baselines", str(baselines)]) == 1
        capsys.readouterr()

    def test_only_bootstrap_suites_still_pass(self, dirs, capsys):
        baselines, artifacts = dirs  # baselines dir exists but is empty
        _write(artifacts / "BENCH_new.json", [_record(speedup=2.0)])
        assert compare_bench.main(["--artifacts", str(artifacts),
                                   "--baselines", str(baselines)]) == 0
        capsys.readouterr()

    def test_nothing_at_all_still_fails(self, dirs, capsys):
        baselines, artifacts = dirs
        assert compare_bench.main(["--artifacts", str(artifacts),
                                   "--baselines", str(baselines)]) == 1
        capsys.readouterr()
