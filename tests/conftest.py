"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

# The static plan verifier is on by default under the test suite (and in the
# fuzz harness): every optimizer rewrite, delta rewrite, and sharded-plan
# compilation is certified as it happens.  Export REPRO_VERIFY_PLANS=0 to
# time the suite without verification.
os.environ.setdefault("REPRO_VERIFY_PLANS", "1")

from repro.data import Database, sailors_database, empty_sailors_database  # noqa: E402
from repro.queries import CANONICAL_QUERIES  # noqa: E402


@pytest.fixture()
def db() -> Database:
    """A fresh copy of the cow-book sailors database."""
    return sailors_database()


@pytest.fixture()
def empty_db() -> Database:
    """The sailors schema with no rows."""
    return empty_sailors_database()


@pytest.fixture()
def schema(db):
    """The sailors database schema."""
    return db.schema


@pytest.fixture(params=[q.id for q in CANONICAL_QUERIES])
def canonical_query(request):
    """Parametrised fixture running a test once per canonical query."""
    from repro.queries import query_by_id

    return query_by_id(request.param)


def names_of(relation) -> set[str]:
    """The set of first-column values of a result relation (helper for assertions)."""
    return {row[0] for row in relation.distinct_rows()}
