"""Tests for the TRC-based diagram builders: QueryVis and Relational Diagrams."""

from __future__ import annotations

import pytest

from repro.diagrams import build_diagram
from repro.diagrams.common import CannotRepresent, build_query_graph, to_trc
from repro.diagrams.queryvis import can_represent as queryvis_can, queryvis_diagram
from repro.diagrams.relational_diagrams import (
    can_represent as relational_can,
    relational_diagram,
)
from repro.queries import (
    Q1_BASIC_JOIN,
    Q3_RED_NOT_GREEN,
    Q4_ALL_RED,
    Q5_RED_OR_GREEN,
)
from repro.trc import parse_trc


class TestQueryGraphExtraction:
    def test_tables_scopes_and_joins(self, schema):
        graph = build_query_graph(to_trc(Q4_ALL_RED.sql, schema))
        assert set(graph.tables) == {"s", "b", "r"}
        assert graph.tables["s"].scope == 0
        assert graph.scopes[graph.tables["b"].scope].negated
        assert graph.scopes[graph.tables["r"].scope].depth == 2
        assert len(graph.joins) == 2
        assert graph.head == [("s", "sname")]

    def test_local_predicates_inlined(self, schema):
        graph = build_query_graph(to_trc(Q1_BASIC_JOIN.sql, schema))
        reserves = graph.tables["r"]
        assert any(p.startswith("bid = 102") for p in reserves.local_predicates)

    def test_local_disjunction_folds_into_one_box(self, schema):
        graph = build_query_graph(to_trc(Q5_RED_OR_GREEN.sql, schema))
        boats = graph.tables["b"]
        assert any(" OR " in p for p in boats.local_predicates)

    def test_cross_variable_disjunction_raises(self, schema):
        trc = parse_trc(
            "{ s.sname | Sailors(s) and exists r (Reserves(r) and "
            "(r.sid = s.sid or s.rating > 7)) }")
        with pytest.raises(CannotRepresent):
            build_query_graph(trc)

    def test_disallow_local_disjunction_flag(self, schema):
        with pytest.raises(CannotRepresent):
            build_query_graph(to_trc(Q5_RED_OR_GREEN.sql, schema),
                              allow_local_disjunction=False)


class TestQueryVis:
    def test_structure_for_division_query(self, schema):
        diagram = queryvis_diagram(Q4_ALL_RED.sql, schema)
        counts = diagram.element_counts()
        assert counts["table_nodes"] == 3
        assert counts["max_nesting_depth"] == 3      # select box + two NOT EXISTS boxes
        reading_order = [e for e in diagram.edges if e.kind == "reading-order"]
        joins = [e for e in diagram.edges if e.kind == "join"]
        assert len(reading_order) == 2
        assert len(joins) == 2
        assert diagram.validate() == []

    def test_group_labels_mark_negation(self, schema):
        diagram = queryvis_diagram(Q3_RED_NOT_GREEN.sql, schema)
        labels = [g.label for g in diagram.groups.values()]
        assert any(label == "NOT EXISTS" for label in labels)
        assert any(label.startswith("SELECT") for label in labels)

    def test_output_attribute_is_marked(self, schema):
        diagram = queryvis_diagram(Q1_BASIC_JOIN.sql, schema)
        sailor_rows = [n.rows for n in diagram.nodes.values() if "Sailors" in n.label][0]
        assert any(row.startswith("→ sname") for row in sailor_rows)

    def test_join_edges_attach_to_rows(self, schema):
        diagram = queryvis_diagram(Q1_BASIC_JOIN.sql, schema)
        join = [e for e in diagram.edges if e.kind == "join"][0]
        assert join.source_port is not None and join.target_port is not None

    def test_trc_input_accepted(self, schema):
        diagram = queryvis_diagram(Q4_ALL_RED.trc, schema)
        assert diagram.element_counts()["table_nodes"] == 3

    def test_can_represent(self, schema):
        assert queryvis_can(Q4_ALL_RED.sql, schema)
        assert queryvis_can(Q5_RED_OR_GREEN.sql, schema)  # local disjunction is fine
        assert not queryvis_can("SELECT COUNT(*) FROM Sailors", schema)


class TestRelationalDiagrams:
    def test_negation_boxes_instead_of_arrows(self, schema):
        diagram = relational_diagram(Q4_ALL_RED.sql, schema)
        counts = diagram.element_counts()
        assert counts["negation_groups"] == 2
        assert all(e.kind != "reading-order" for e in diagram.edges)
        assert counts["directed_edges"] == 0

    def test_union_of_diagrams_for_disjunction(self, schema):
        diagram = relational_diagram(
            "SELECT S.sname FROM Sailors S, Reserves R, Boats B "
            "WHERE S.sid = R.sid AND R.bid = B.bid AND (B.color = 'red' OR B.color = 'green')",
            schema)
        assert diagram.formalism == "relational_diagrams"
        # two branches, three tables each
        assert diagram.element_counts()["table_nodes"] == 6
        wrappers = [g for g in diagram.groups.values() if g.parent is None]
        assert len(wrappers) == 2

    def test_union_sql_also_splits(self, schema):
        diagram = relational_diagram(Q5_RED_OR_GREEN.sql.replace(
            "(B.color = 'red' OR B.color = 'green')", "B.color = 'red'"), schema)
        assert diagram.element_counts()["table_nodes"] == 3

    def test_same_pattern_same_size(self, schema):
        not_in = ("SELECT S.sname FROM Sailors S WHERE S.sid NOT IN "
                  "(SELECT R.sid FROM Reserves R WHERE R.bid = 103)")
        not_exists = ("SELECT S.sname FROM Sailors S WHERE NOT EXISTS "
                      "(SELECT R.sid FROM Reserves R WHERE R.sid = S.sid AND R.bid = 103)")
        a = relational_diagram(not_in, schema)
        b = relational_diagram(not_exists, schema)
        assert a.element_counts() == b.element_counts()

    def test_can_represent(self, schema):
        assert relational_can(Q5_RED_OR_GREEN.sql, schema)
        assert relational_can(Q4_ALL_RED.sql, schema)
        assert not relational_can("SELECT rating, COUNT(*) FROM Sailors GROUP BY rating", schema)

    def test_dispatcher_equivalence(self, schema):
        via_dispatcher = build_diagram("relational_diagrams", Q4_ALL_RED.sql, schema)
        direct = relational_diagram(Q4_ALL_RED.sql, schema)
        assert via_dispatcher.element_counts() == direct.element_counts()
