"""Integration tests: the example scripts must run end to end."""

from __future__ import annotations

import importlib.util
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                            "examples")

EXAMPLES = [
    "quickstart.py",
    "language_tour.py",
    "voice_assistant_loop.py",
    "peirce_and_syllogisms.py",
    "diagram_gallery.py",
]


def _load(name: str):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys, tmp_path, monkeypatch):
    module = _load(name)
    if name == "diagram_gallery.py":
        monkeypatch.setattr(module, "OUT_DIR", str(tmp_path))
    module.main()
    output = capsys.readouterr().out
    assert output.strip()


def test_quickstart_mentions_answers(capsys):
    _load("quickstart.py").main()
    output = capsys.readouterr().out
    assert "Answers" in output
    assert "Dustin" in output


def test_language_tour_reports_agreement(capsys):
    _load("language_tour.py").main()
    output = capsys.readouterr().out
    assert output.count("all five languages agree: yes") == 5


def test_voice_assistant_verifies_refinement(capsys):
    _load("voice_assistant_loop.py").main()
    output = capsys.readouterr().out
    assert "same relational query pattern: yes" in output


def test_gallery_writes_svgs(capsys, tmp_path, monkeypatch):
    module = _load("diagram_gallery.py")
    monkeypatch.setattr(module, "OUT_DIR", str(tmp_path))
    module.main()
    svgs = list(tmp_path.glob("*.svg"))
    assert len(svgs) >= 8
    assert all(p.read_text().startswith("<svg") for p in svgs)
