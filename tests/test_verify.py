"""The static plan verifier and the repo invariant lint.

Positive direction: every canonical-catalog query, in every language that
expresses it, verifies in all four plan forms (raw lowering, optimized,
delta terms, sharded compilation).  Negative direction: hand-built broken
plans draw precise :class:`PlanVerificationError` diagnostics naming the
offending node.  Plus the ``REPRO_VERIFY_PLANS`` gating/counters and the
``tools/check_invariants.py`` lint rules over synthetic violation fixtures.
"""

from __future__ import annotations

import importlib.util
import os
import sys
import textwrap

import pytest

from repro.data.sharded import ShardedDatabase
from repro.expr import ast as e
from repro.engine import (
    AggregateP,
    DeltaScanP,
    DistinctP,
    FilterP,
    JoinP,
    PlanVerificationError,
    ProjectP,
    ScanP,
    ShardedPlan,
    SortLimitP,
    lower,
    optimize,
    run_query,
    shard_plan,
    verify_plan,
    verify_sharded_plan,
)
from repro.engine.delta import DeltaRewriteError, anchor, delta_terms
from repro.engine.verify import (
    maybe_verify,
    reset_verification_counts,
    verification_counts,
    verification_enabled,
)
from repro.queries import CANONICAL_QUERIES

SAILORS = ("sid", "sname", "rating", "age")
RESERVES = ("sid", "bid", "day")

_PLAN_LANGUAGES = ("sql", "ra", "trc", "drc")


def _lowered_plans(query, db):
    """(language, plan) for every statically-lowerable language of a query."""
    plans = []
    for language in _PLAN_LANGUAGES:
        text = getattr(query, language, None)
        if text:
            plans.append((language, lower(text, db.schema,
                                          language=language)))
    return plans


class TestCatalogVerifies:
    """All catalog queries × languages × plan forms pass verification."""

    def test_raw_plans_verify(self, db, canonical_query):
        for _language, plan in _lowered_plans(canonical_query, db):
            verify_plan(plan, db)

    def test_optimized_plans_verify(self, db, canonical_query):
        for _language, plan in _lowered_plans(canonical_query, db):
            verify_plan(optimize(plan, db), db)

    def test_delta_terms_verify(self, db, canonical_query):
        anchors = {name.lower(): 0 for name in db.relation_names}
        for _language, plan in _lowered_plans(canonical_query, db):
            try:
                terms = delta_terms(plan)
            except DeltaRewriteError:
                continue  # not bag-maintainable: no delta form exists
            for term in terms:
                verify_plan(term, db)  # template: windows unanchored
                verify_plan(anchor(term, anchors), db,
                            require_anchored=True)

    def test_sharded_plans_verify(self, db, canonical_query):
        sharded = ShardedDatabase.from_database(db, n_shards=2)
        for _language, plan in _lowered_plans(canonical_query, db):
            compiled = shard_plan(optimize(plan, db), sharded)
            verify_sharded_plan(compiled, sharded)

    def test_datalog_catalog_verifies_under_hooks(self, db, canonical_query,
                                                  monkeypatch):
        # Datalog has no single static plan; its per-rule and fixpoint
        # plans flow through the optimizer hook, so a run with the flag on
        # and zero failures is the verification.
        if not canonical_query.datalog:
            pytest.skip("no datalog form")
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        reset_verification_counts()
        run_query(canonical_query.datalog, db, language="datalog")
        counts = verification_counts()
        assert counts["plans_verified"] > 0
        assert counts["plans_failed"] == 0

    def test_full_catalog_clean_run(self, db):
        # The ISSUE's "nothing latent flagged" regression: every language
        # form of every catalog query executes end-to-end with the hooks on
        # and not one plan fails verification.
        reset_verification_counts()
        for query in CANONICAL_QUERIES:
            for language in (*_PLAN_LANGUAGES, "datalog"):
                text = getattr(query, language, None)
                if text:
                    run_query(text, db, language=language)
        counts = verification_counts()
        assert counts["plans_verified"] > 0
        assert counts["plans_failed"] == 0


class TestNegativeDiagnostics:
    """Hand-built broken plans draw precise diagnostics."""

    def test_unresolved_column(self, db):
        plan = FilterP(ScanP("Sailors", SAILORS),
                       e.Comparison(e.Col("colour"), ">", e.Const(1)))
        with pytest.raises(PlanVerificationError) as exc:
            verify_plan(plan, db)
        assert "FilterP" in str(exc.value)
        assert "unresolved column reference 'colour'" in str(exc.value)
        assert exc.value.node is plan

    def test_unresolved_join_key(self, db):
        plan = JoinP(ScanP("Sailors", SAILORS), ScanP("Reserves", RESERVES),
                     "inner", ("boat",), ("bid",))
        with pytest.raises(PlanVerificationError) as exc:
            verify_plan(plan, db)
        assert "left join key 'boat'" in str(exc.value)

    def test_type_inconsistent_predicate(self, db):
        plan = FilterP(ScanP("Sailors", SAILORS),
                       e.Comparison(e.Col("sname"), ">", e.Const(7)))
        with pytest.raises(PlanVerificationError) as exc:
            verify_plan(plan, db)
        assert "FilterP" in str(exc.value)
        assert "type-inconsistent comparison: string > int" in str(exc.value)

    def test_type_inconsistent_join_keys(self, db):
        plan = JoinP(ScanP("Sailors", SAILORS), ScanP("Reserves", RESERVES),
                     "inner", ("sname",), ("bid",))
        with pytest.raises(PlanVerificationError) as exc:
            verify_plan(plan, db)
        assert "not comparable" in str(exc.value)

    def test_arithmetic_on_strings(self, db):
        plan = ProjectP(ScanP("Sailors", SAILORS),
                        (e.BinOp("*", e.Col("sname"), e.Const(2)),),
                        ("twice",))
        with pytest.raises(PlanVerificationError,
                           match="non-numeric \\(string\\)"):
            verify_plan(plan, db)

    def test_sum_over_string_column(self, db):
        plan = AggregateP(ScanP("Sailors", SAILORS), (),
                          ((e.FuncCall("sum", (e.Col("sname"),)), "total"),))
        with pytest.raises(PlanVerificationError,
                           match="sum\\(\\) over non-numeric"):
            verify_plan(plan, db)

    def test_aggregate_outside_aggregation(self, db):
        plan = FilterP(ScanP("Sailors", SAILORS),
                       e.Comparison(e.FuncCall("count", (e.Star(),)),
                                    ">", e.Const(1)))
        with pytest.raises(PlanVerificationError,
                           match="aggregate count\\(\\) outside"):
            verify_plan(plan, db)

    def test_projection_rename_collision(self, db):
        plan = ProjectP(ScanP("Sailors", SAILORS),
                        (e.Col("sid"), e.Col("sname")), ("x", "X"))
        with pytest.raises(PlanVerificationError,
                           match="collide on 'X'"):
            verify_plan(plan, db)

    def test_scan_arity_mismatch(self, db):
        plan = ScanP("Sailors", ("sid", "sname"))
        with pytest.raises(PlanVerificationError, match="arity"):
            verify_plan(plan, db)
        # Without a database there is nothing to check arity against.
        verify_plan(plan)

    def test_unanchored_delta_template(self, db):
        plan = DeltaScanP("Sailors", SAILORS, None, "delta")
        verify_plan(plan, db)  # templates are legal at rest...
        with pytest.raises(PlanVerificationError, match="unanchored"):
            verify_plan(plan, db, require_anchored=True)  # ...not at exec

    def test_unknown_function(self, db):
        plan = ProjectP(ScanP("Sailors", SAILORS),
                        (e.FuncCall("sqrt", (e.Col("age"),)),), ("r",))
        with pytest.raises(PlanVerificationError,
                           match="unknown function 'sqrt'"):
            verify_plan(plan, db)

    def test_negative_limit(self, db):
        plan = SortLimitP(ScanP("Sailors", SAILORS), (), -3)
        with pytest.raises(PlanVerificationError, match="negative LIMIT"):
            verify_plan(plan, db)

    def test_rule_name_in_message(self, db):
        plan = FilterP(ScanP("Sailors", SAILORS),
                       e.Comparison(e.Col("colour"), "=", e.Const(1)))
        with pytest.raises(PlanVerificationError) as exc:
            verify_plan(plan, db, rule="push_down_filters")
        assert str(exc.value).startswith("[push_down_filters]")
        assert exc.value.rule == "push_down_filters"


class TestShardedDiagnostics:
    @pytest.fixture()
    def sharded(self, db):
        return ShardedDatabase.from_database(db, n_shards=2)

    def test_distribution_unsafe_scatter(self, sharded):
        # DISTINCT over a projection that drops the shard key (sid): equal
        # rows can straddle shards, so per-shard DISTINCT is not exact.
        scan = ScanP("Reserves", RESERVES)
        project = ProjectP(scan, (e.Col("bid"),), ("bid",))
        scatter = DistinctP(project)
        compiled = ShardedPlan(scatter, "scatter", core=scatter,
                               scatter=scatter,
                               partitioned=frozenset({"reserves"}))
        with pytest.raises(PlanVerificationError) as exc:
            verify_sharded_plan(compiled, sharded)
        assert "DistinctP" in str(exc.value)
        assert "distribution-unsafe scatter" in str(exc.value)

    def test_distribution_unsafe_join(self, sharded):
        # Both sides scattered but joined on non-shard-key columns.
        plan = JoinP(ScanP("Sailors", SAILORS), ScanP("Reserves", RESERVES),
                     "inner", ("rating",), ("bid",))
        compiled = ShardedPlan(plan, "scatter", core=plan, scatter=plan,
                               partitioned=frozenset({"sailors", "reserves"}))
        with pytest.raises(PlanVerificationError) as exc:
            verify_sharded_plan(compiled, sharded)
        assert "do not pair the shard keys" in str(exc.value)

    def test_mispaired_avg_split(self, sharded):
        # An AVG split whose partial states are not the SUM+COUNT pair.
        scan = ScanP("Sailors", SAILORS)
        core = AggregateP(scan, (),
                          ((e.FuncCall("avg", (e.Col("age"),)), "a"),))
        partial = AggregateP(scan, (), (
            (e.FuncCall("avg", (e.Col("age"),)), "__p0_sum"),
            (e.FuncCall("count", (e.Col("age"),)), "__p0_cnt"),
            (e.FuncCall("count", (e.Star(),)), "__rows")))
        compiled = ShardedPlan(core, "scatter", core=core, scatter=partial,
                               combine=lambda parts: [],
                               partitioned=frozenset({"sailors"}),
                               gather=core)
        with pytest.raises(PlanVerificationError) as exc:
            verify_sharded_plan(compiled, sharded)
        assert "mispaired AVG split" in str(exc.value)
        assert "AVG must split into SUM + COUNT" in str(exc.value)

    def test_missing_presence_counter(self, sharded):
        scan = ScanP("Sailors", SAILORS)
        core = AggregateP(scan, (),
                          ((e.FuncCall("sum", (e.Col("age"),)), "t"),))
        partial = AggregateP(scan, (), (
            (e.FuncCall("sum", (e.Col("age"),)), "__p0"),))
        compiled = ShardedPlan(core, "scatter", core=core, scatter=partial,
                               combine=lambda parts: [],
                               partitioned=frozenset({"sailors"}),
                               gather=core)
        with pytest.raises(PlanVerificationError,
                           match="__rows presence counter"):
            verify_sharded_plan(compiled, sharded)

    def test_delta_scan_in_scatter(self, sharded):
        scatter = DeltaScanP("Sailors", SAILORS, 0, "delta")
        compiled = ShardedPlan(scatter, "scatter", core=scatter,
                               scatter=scatter,
                               partitioned=frozenset({"sailors"}))
        with pytest.raises(PlanVerificationError,
                           match="delta scans cannot appear"):
            verify_sharded_plan(compiled, sharded)

    def test_sort_inside_broadcast_subtree_certifies(self, sharded):
        # A sort/limit whose whole subtree reads broadcast aliases is
        # computed identically on every shard — legal in scatter (the
        # fuzzer produces this shape via sorted join inputs).
        sort = SortLimitP(ScanP("Reserves@broadcast", RESERVES),
                          ((e.Col("bid"), True),), None)
        scatter = JoinP(ScanP("Sailors", SAILORS), sort, "inner",
                        ("sid",), ("sid",))
        compiled = ShardedPlan(scatter, "scatter", core=scatter,
                               scatter=scatter,
                               partitioned=frozenset({"sailors"}),
                               broadcast=frozenset({"reserves"}))
        verify_sharded_plan(compiled, sharded)

    def test_sort_over_scattered_data_rejected(self, sharded):
        # Per-shard sorted runs interleave on gather and per-shard LIMIT
        # drops the wrong rows; the compiler never scatters these.
        scatter = SortLimitP(ScanP("Sailors", SAILORS),
                             ((e.Col("age"), True),), 3)
        compiled = ShardedPlan(scatter, "scatter", core=scatter,
                               scatter=scatter,
                               partitioned=frozenset({"sailors"}))
        with pytest.raises(PlanVerificationError,
                           match="sort/limit over scattered data"):
            verify_sharded_plan(compiled, sharded)

    def test_compiled_plans_certify(self, sharded):
        # What shard_plan actually emits passes certification, across the
        # scatter / split-aggregate / routed / fallback modes.
        for sql in (
            "SELECT S.sname FROM Sailors S WHERE S.rating > 7",
            "SELECT S.rating, AVG(S.age) FROM Sailors S GROUP BY S.rating",
            "SELECT S.sname FROM Sailors S WHERE S.sid = 58",
            "SELECT S.sname, S.age FROM Sailors S ORDER BY S.age",
            "SELECT S.sname FROM Sailors S, Reserves R "
            "WHERE S.sid = R.sid AND R.bid = 103",
        ):
            plan = optimize(lower(sql, sharded.schema), sharded)
            compiled = shard_plan(plan, sharded)
            verify_sharded_plan(compiled, sharded)


class TestHooksAndCounters:
    def test_verification_enabled_parsing(self, monkeypatch):
        for value, expected in (("1", True), ("true", True), ("on", True),
                                ("0", False), ("off", False), ("", False),
                                ("no", False), ("false", False)):
            monkeypatch.setenv("REPRO_VERIFY_PLANS", value)
            assert verification_enabled() is expected
        monkeypatch.delenv("REPRO_VERIFY_PLANS")
        assert verification_enabled() is False

    def test_maybe_verify_counts_and_raises(self, db, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        reset_verification_counts()
        good = ScanP("Sailors", SAILORS)
        assert maybe_verify(good, db) is good
        assert verification_counts() == {"plans_verified": 1,
                                         "plans_failed": 0}
        bad = FilterP(good, e.Comparison(e.Col("colour"), "=", e.Const(1)))
        with pytest.raises(PlanVerificationError):
            maybe_verify(bad, db, rule="unit-test")
        assert verification_counts() == {"plans_verified": 1,
                                         "plans_failed": 1}

    def test_maybe_verify_disabled_is_passthrough(self, db, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "0")
        reset_verification_counts()
        bad = FilterP(ScanP("Sailors", SAILORS),
                      e.Comparison(e.Col("colour"), "=", e.Const(1)))
        assert maybe_verify(bad, db) is bad  # gate off: no check, no count
        assert verification_counts() == {"plans_verified": 0,
                                         "plans_failed": 0}

    def test_optimizer_hook_names_the_rule(self, db, monkeypatch):
        # A rewrite that breaks a plan is attributed to its rule.  Breaking
        # push_down_filters from outside is hard (it is correct!), so this
        # goes through the public hook exactly as optimize() calls it.
        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        bad = FilterP(ScanP("Sailors", SAILORS),
                      e.Comparison(e.Col("colour"), "=", e.Const(1)))
        with pytest.raises(PlanVerificationError,
                           match="\\[push_down_filters\\]"):
            maybe_verify(bad, db, rule="push_down_filters")

    def test_sharded_backend_exports_verifier_counts(self, db, monkeypatch):
        from repro.engine.sharded import ShardedBackend

        monkeypatch.setenv("REPRO_VERIFY_PLANS", "1")
        reset_verification_counts()
        backend = ShardedBackend(n_shards=2)
        plan = lower("SELECT S.sname FROM Sailors S WHERE S.rating > 7",
                     db.schema)
        backend.execute(plan, db)
        counts = backend.execution_counts()
        assert counts["plans_verified"] > 0
        assert counts["plans_failed"] == 0

    def test_verification_error_is_plan_error(self):
        # The serving pipeline catches PlanError to fall back to the
        # reference interpreter; verification failures must degrade the
        # same way rather than hard-failing a request.
        from repro.engine import PlanError

        assert issubclass(PlanVerificationError, PlanError)


class TestUntypedRelations:
    def test_generic_datalog_schema_is_not_type_checked(self):
        # The Datalog fixpoint materializes IDB relations under an
        # all-string col1..colN schema while holding ints; their declared
        # types must not be trusted (would flag e.g. col1 > 3).
        from repro.data import Database, Relation, RelationSchema
        from repro.data.types import DataType

        schema = RelationSchema("reach", tuple(
            __import__("repro.data.schema", fromlist=["Attribute"])
            .Attribute(f"col{i + 1}", DataType.STRING) for i in range(2)))
        db = Database([Relation(schema, [(1, 2)], validate=False)])
        plan = FilterP(ScanP("reach", ("col1", "col2")),
                       e.Comparison(e.Col("col1"), ">", e.Const(3)))
        verify_plan(plan, db)  # untyped: comparison passes as unknown


# ---------------------------------------------------------------------------
# tools/check_invariants.py
# ---------------------------------------------------------------------------

def _load_invariants_module():
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "tools", "check_invariants.py")
    spec = importlib.util.spec_from_file_location("check_invariants", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module  # dataclass string annotations need this
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def invariants():
    return _load_invariants_module()


@pytest.fixture()
def fixture_repo(tmp_path):
    """A minimal repo tree the lint rules run over."""
    def write(rel_path, source):
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
        return str(tmp_path)
    return write


class TestInvariantLint:
    def test_real_repo_is_clean(self, invariants):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        assert invariants.run_checks(root) == []

    def test_unguarded_module_cache_mutation(self, invariants, fixture_repo):
        root = fixture_repo("src/repro/engine/kernels.py", """\
            import threading
            from collections import OrderedDict
            _CACHE_LOCK = threading.Lock()
            _CACHE = OrderedDict()
            _CACHE_BYTES = 0
            _CACHE_TOTALS = {"hits": 0}

            def put(key, value):
                _CACHE[key] = value

            def kernel_demo(x):
                return None
            """)
        rules = [v.rule for v in invariants.run_checks(root)
                 if v.path.endswith("kernels.py")]
        assert "lock-guarded-cache" in rules

    def test_guarded_mutation_is_clean(self, invariants, fixture_repo):
        root = fixture_repo("src/repro/engine/kernels.py", """\
            import threading
            from collections import OrderedDict
            _CACHE_LOCK = threading.Lock()
            _CACHE = OrderedDict()
            _CACHE_BYTES = 0
            _CACHE_TOTALS = {"hits": 0}

            def put(key, value):
                global _CACHE_BYTES
                with _CACHE_LOCK:
                    _CACHE[key] = value
                    _CACHE_BYTES += 1
                    _CACHE_TOTALS["hits"] += 1

            def kernel_demo(x):
                return None
            """)
        assert [v for v in invariants.run_checks(root)
                if v.rule == "lock-guarded-cache"] == []

    def test_unguarded_lru_and_stats_mutations(self, invariants,
                                               fixture_repo):
        fixture_repo("src/repro/core/pipeline.py", """\
            import threading

            class _LRUCache:
                def __init__(self, capacity):
                    self._data = {}
                    self._lock = threading.Lock()

                def put(self, key, value):
                    self._data[key] = value
            """)
        root = fixture_repo("src/repro/engine/stats.py", """\
            import threading

            class StatsCatalog:
                def __init__(self, db):
                    self._cache = {}
                    self._lock = threading.Lock()

                def table(self, name):
                    self._cache.pop(name, None)
            """)
        violations = [v for v in invariants.run_checks(root)
                      if v.rule == "lock-guarded-cache"]
        assert {v.path for v in violations} == {
            os.path.join("src", "repro", "core", "pipeline.py"),
            os.path.join("src", "repro", "engine", "stats.py")}

    def test_shared_memory_without_release_path(self, invariants,
                                                fixture_repo):
        root = fixture_repo("src/repro/data/pages.py", """\
            from multiprocessing import shared_memory

            def publish(nbytes):
                return shared_memory.SharedMemory(create=True, size=nbytes)
            """)
        messages = [v.message for v in invariants.run_checks(root)
                    if v.rule == "shm-finalizer"]
        assert len(messages) == 2
        assert any("finalize" in m for m in messages)
        assert any("unlink" in m for m in messages)

    def test_kernel_without_decline_path(self, invariants, fixture_repo):
        root = fixture_repo("src/repro/engine/kernels.py", """\
            def kernel_filter(conjunct, batch):
                return [1]
            """)
        violations = [v for v in invariants.run_checks(root)
                      if v.rule == "kernel-fallback"]
        assert len(violations) == 1
        assert "kernel_filter" in violations[0].message

    def test_silent_except_needs_comment(self, invariants, fixture_repo):
        root = fixture_repo("src/repro/core/service.py", """\
            def uncommented():
                try:
                    work()
                except Exception:
                    pass

            def commented():
                try:
                    work()
                except Exception:
                    pass  # best effort: failure here must not block exit
            """)
        violations = [v for v in invariants.run_checks(root)
                      if v.rule == "silent-except"]
        assert [v.line for v in violations] == [4]

    def test_blocking_service_call_in_async_handler(self, invariants,
                                                    fixture_repo):
        root = fixture_repo("src/repro/server/app.py", """\
            class App:
                def __init__(self, service):
                    self.service = service

                async def handle_query(self, text):
                    return self.service.query(text)
            """)
        violations = [v for v in invariants.run_checks(root)
                      if v.rule == "server-nonblocking"]
        assert len(violations) == 1
        assert ".query()" in violations[0].message

    def test_executor_offload_is_clean(self, invariants, fixture_repo):
        root = fixture_repo("src/repro/server/app.py", """\
            import asyncio
            from functools import partial

            class App:
                def __init__(self, service):
                    self.service = service

                async def handle_query(self, text):
                    loop = asyncio.get_running_loop()
                    return await loop.run_in_executor(
                        None, partial(self.service.query, text))

                async def handle_metrics(self):
                    def collect():
                        return self.service.stats_snapshot()
                    loop = asyncio.get_running_loop()
                    return await loop.run_in_executor(None, collect)

                async def handle_lambda(self, text):
                    loop = asyncio.get_running_loop()
                    return await loop.run_in_executor(
                        None, lambda: self.service.answer(text))
            """)
        assert [v for v in invariants.run_checks(root)
                if v.rule == "server-nonblocking"] == []

    def test_bare_service_name_call_flagged(self, invariants, fixture_repo):
        root = fixture_repo("src/repro/server/worker.py", """\
            async def flush(service, relation, rows):
                return service.add_rows(relation, rows)
            """)
        violations = [v for v in invariants.run_checks(root)
                      if v.rule == "server-nonblocking"]
        assert len(violations) == 1
        assert ".add_rows()" in violations[0].message

    def test_rule_scoped_to_server_package(self, invariants, fixture_repo):
        # The same shape outside src/repro/server is not this rule's business.
        root = fixture_repo("src/repro/core/other.py", """\
            async def helper(service):
                return service.query("SELECT 1")
            """)
        assert [v for v in invariants.run_checks(root)
                if v.rule == "server-nonblocking"] == []
