"""Dictionary-encoded string columns: pages, kernels, stats, and caches.

Covers the storage codec (``"D"`` sorted-dictionary string pages, ``"E"``
low-cardinality mixed pages), the dictionary-aware kernels (string
selections, multi-key probes, DISTINCT, DISTINCT aggregates) pinned
bit-identical against the pure-Python executor, distinct counts sourced
from the dictionary in ``StatsCatalog``, and the bounded derived-structure
cache (byte-accounted LRU, hit/miss/eviction counters, per-backend sinks).
"""

from __future__ import annotations

from collections import Counter

import pytest

import repro.engine.kernels as kernels
from repro.data.database import Database
from repro.data.relation import (
    ColumnStore,
    _encode_column,
    dict_page_layout,
    dict_page_values,
    relation_from_rows,
)
from repro.engine.kernels import KernelExecutor, kernels_enabled
from repro.engine.plan import AggregateP, DistinctP, FilterP, JoinP, ScanP
from repro.engine.sharded import ShardedBackend
from repro.engine.stats import StatsCatalog, collect_table_stats
from repro.engine.vectorized import VectorizedExecutor
from repro.expr import ast as e

needs_kernels = pytest.mark.skipif(not kernels_enabled(),
                                   reason="numpy kernels disabled")


# ---------------------------------------------------------------------------
# Page codec
# ---------------------------------------------------------------------------

class TestDictionaryPages:
    def _round_trip(self, names, arrays):
        store = ColumnStore(names, arrays)
        decoded = ColumnStore.decode_pages(store.encode_pages())
        assert decoded.to_rows() == store.to_rows()
        for left, right in zip(decoded.arrays, store.arrays):
            assert [type(v) for v in left] == [type(v) for v in right]
        return decoded

    def test_string_round_trip_with_nulls(self):
        self._round_trip(["s"], [["b", None, "a", "b", "", None, "ü"]])

    def test_all_duplicate_strings(self):
        self._round_trip(["s"], [["x"] * 50])

    def test_string_page_kind_and_layout(self):
        store = ColumnStore(["s"], [["b", None, "a", "b"]])
        decoded = ColumnStore.decode_pages(store.encode_pages())
        kind, mask, payload, n_rows = decoded.pages[0]
        assert kind == "D" and n_rows == 4
        n_dict, width, _blob_offset, _codes_offset = dict_page_layout(payload)
        assert (n_dict, width) == (2, 4)  # sorted {"a", "b"}, int32 codes
        assert dict_page_values(payload) == ["a", "b"]
        assert bytes(mask) == bytes([0, 1, 0, 0])

    def test_low_cardinality_mixed_column_dict_encodes(self):
        values = [1, "two", None, True, 1] * 10
        kind, _mask, _payload = _encode_column(values)
        assert kind == b"E"
        self._round_trip(["m"], [values])

    def test_mixed_dictionary_keeps_cross_type_values_distinct(self):
        # 1 == 1.0 == True in Python; the page must still restore the
        # original object types per row.
        self._round_trip(["m"], [[1, 1.0, True, None] * 8])

    def test_high_cardinality_mixed_column_falls_back_to_pickle(self):
        values = [(i, "t") for i in range(20)]  # hashable but all distinct
        kind, _mask, _payload = _encode_column(values)
        assert kind == b"o"

    def test_unhashable_mixed_column_falls_back_to_pickle(self):
        kind, _mask, _payload = _encode_column([[1], [1], [1], [1]])
        assert kind == b"o"


# ---------------------------------------------------------------------------
# dictionary_stats + StatsCatalog
# ---------------------------------------------------------------------------

class TestDictionaryStats:
    def test_stats_from_decoded_page(self):
        store = ColumnStore(["s"], [["b", None, "a", "b", None]])
        decoded = ColumnStore.decode_pages(store.encode_pages())
        assert decoded.dictionary_stats(0) == (2, 2)

    def test_no_stats_for_numeric_columns(self):
        store = ColumnStore(["i"], [[1, 2, 2]])
        decoded = ColumnStore.decode_pages(store.encode_pages())
        assert decoded.dictionary_stats(0) is None

    def test_collect_table_stats_matches_set_scan(self):
        rel = relation_from_rows(
            "t", [("k", "string"), ("v", "int")],
            [("b", 1), (None, 2), ("a", 3), ("b", None), ("c", 5)])
        stats = collect_table_stats(rel)
        assert stats.row_count == 5
        k = stats.columns[0]
        assert (k.distinct, k.null_count) == (3, 1)
        assert k.min_value is None and k.max_value is None
        v = stats.columns[1]
        assert (v.distinct, v.null_count, v.min_value, v.max_value) \
            == (4, 1, 1.0, 5.0)

    @needs_kernels
    def test_stats_reuse_live_encoding_dictionary(self):
        rel = relation_from_rows(
            "t", [("k", "string")], [("b",), ("a",), ("b",), (None,)])
        store = rel.column_store()
        assert kernels.store_encoding(store, 0) is not None
        assert store.dictionary_stats(0) == (2, 1)
        catalog = StatsCatalog(Database([rel]))
        assert catalog.table("t").columns[0].distinct == 2

    def test_stats_follow_appends(self):
        rel = relation_from_rows("t", [("k", "string")], [("a",), ("a",)])
        assert collect_table_stats(rel).columns[0].distinct == 1
        rel.add(("z",))
        assert collect_table_stats(rel).columns[0].distinct == 2


# ---------------------------------------------------------------------------
# Kernel ≡ Python equivalences
# ---------------------------------------------------------------------------

def _db():
    users = relation_from_rows(
        "users", [("uid", "int"), ("city", "string"), ("tier", "string")],
        [(i, f"city{i % 7}" if i % 11 else None, "abc"[i % 3])
         for i in range(80)])
    orders = relation_from_rows(
        "orders", [("ouid", "int"), ("ocity", "string"), ("amount", "int")],
        [(i % 37, f"city{i % 9}" if i % 13 else None, i % 10)
         for i in range(120)])
    return Database([users, orders])


def _both(plan, db):
    fast = KernelExecutor(db).batch(plan).rows()
    slow = VectorizedExecutor(db).batch(plan).rows()
    return fast, slow


USERS = ScanP("users", ("uid", "city", "tier"))
ORDERS = ScanP("orders", ("ouid", "ocity", "amount"))


@needs_kernels
class TestKernelEquivalence:
    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    @pytest.mark.parametrize("const", ["city3", "city10", "", "zzz"])
    def test_string_const_filter(self, op, const):
        db = _db()
        plan = FilterP(USERS, e.Comparison(e.Col("city"), op, e.Const(const)))
        fast, slow = _both(plan, db)
        assert fast == slow

    @pytest.mark.parametrize("op", ["=", "<>", "<"])
    def test_string_column_column_filter(self, op):
        db = _db()
        plan = FilterP(USERS, e.Comparison(e.Col("city"), op, e.Col("tier")))
        fast, slow = _both(plan, db)
        assert fast == slow

    def test_single_string_key_join(self):
        db = _db()
        plan = JoinP(ORDERS, USERS, "inner", ("ocity",), ("city",),
                     None, False)
        fast, slow = _both(plan, db)
        assert fast == slow  # emission order included, not just the bag

    def test_multi_key_join_int_and_string(self):
        db = _db()
        plan = JoinP(ORDERS, USERS, "inner", ("ouid", "ocity"),
                     ("uid", "city"), None, False)
        fast, slow = _both(plan, db)
        assert fast == slow

    def test_null_matches_join_falls_back_identically(self):
        db = _db()
        plan = JoinP(ORDERS, USERS, "inner", ("ocity",), ("city",),
                     None, True)
        fast, slow = _both(plan, db)
        assert fast == slow

    def test_join_probe_of_non_scan_build_side(self):
        db = _db()
        filtered = FilterP(USERS, e.Comparison(
            e.Col("tier"), "<>", e.Const("c")))
        plan = JoinP(ORDERS, filtered, "inner", ("ocity",), ("city",),
                     None, False)
        fast, slow = _both(plan, db)
        assert fast == slow

    def test_distinct_on_strings_and_nulls(self):
        db = _db()
        plan = DistinctP(USERS)
        fast, slow = _both(plan, db)
        assert fast == slow  # first-occurrence order included

    def test_distinct_after_projection(self):
        from repro.engine.plan import ProjectP
        db = _db()
        plan = DistinctP(ProjectP(USERS, (e.Col("city"), e.Col("tier")),
                                  ("c", "t")))
        fast, slow = _both(plan, db)
        assert fast == slow

    @pytest.mark.parametrize("fn", ["count", "sum", "avg", "min", "max"])
    def test_distinct_aggregates(self, fn):
        db = _db()
        plan = AggregateP(
            ORDERS, (e.Col("ouid"),),
            ((e.FuncCall(fn, (e.Col("amount"),), distinct=True), "agg"),))
        fast, slow = _both(plan, db)
        assert fast == slow

    def test_count_distinct_strings(self):
        db = _db()
        # NULL-free group keys keep the kernel engaged.
        plan = AggregateP(
            ORDERS, (e.Col("amount"),),
            ((e.FuncCall("count", (e.Col("ocity"),), distinct=True), "agg"),))
        fast, slow = _both(plan, db)
        assert fast == slow

    def test_kernel_executor_without_kernels_is_pure_python(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        db = _db()
        plan = DistinctP(USERS)
        fast, slow = _both(plan, db)
        assert fast == slow


# ---------------------------------------------------------------------------
# Derived-structure cache
# ---------------------------------------------------------------------------

@needs_kernels
class TestKernelCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        kernels.clear_cache()
        yield
        kernels.clear_cache()

    def test_build_structure_cached_across_queries(self):
        db = _db()
        plan = JoinP(ORDERS, USERS, "inner", ("ouid", "ocity"),
                     ("uid", "city"), None, False)
        sink: dict[str, int] = {}
        executor = KernelExecutor(db, sink)
        first = executor.batch(plan).rows()
        misses_after_first = sink.get("kernel_cache_misses", 0)
        assert misses_after_first >= 1
        executor2 = KernelExecutor(db, sink)
        assert executor2.batch(plan).rows() == first
        assert sink.get("kernel_cache_hits", 0) >= 1
        assert sink.get("kernel_cache_misses", 0) == misses_after_first

    def test_cache_stats_shape(self):
        stats = kernels.cache_stats()
        for key in ("entries", "bytes", "budget_bytes",
                    "hits", "misses", "evictions"):
            assert key in stats

    def test_byte_budget_evicts_lru(self, monkeypatch):
        monkeypatch.setattr(kernels, "_CACHE_BUDGET", 1)
        db = _db()
        plan = JoinP(ORDERS, USERS, "inner", ("ocity",), ("city",),
                     None, False)
        sink: dict[str, int] = {}
        KernelExecutor(db, sink).batch(plan).rows()
        assert sink.get("kernel_cache_evictions", 0) >= 1
        assert kernels.cache_stats()["bytes"] <= 1

    def test_entry_limit_bounds_the_cache(self, monkeypatch):
        monkeypatch.setattr(kernels, "_CACHE_ENTRY_LIMIT", 4)
        for i in range(10):
            rel = relation_from_rows(
                f"t{i}", [("k", "string"), ("v", "int")],
                [(f"s{j}", j) for j in range(5)])
            db = Database([rel])
            scan = ScanP(f"t{i}", ("k", "v"))
            plan = JoinP(scan, scan, "inner", ("k",), ("k",), None, False)
            KernelExecutor(db).batch(plan).rows()
        assert kernels.cache_stats()["entries"] <= 4

    def test_service_cache_info_exposes_kernel_cache(self):
        from repro.core.service import QueryService

        with QueryService() as service:
            service.answer(
                "SELECT S.sname FROM Sailors S, Reserves R "
                "WHERE S.sid = R.sid")
            info = service.cache_info()
        snapshot = kernels.cache_stats()
        assert info["kernel_cache_entries"] == snapshot["entries"]
        assert info["kernel_cache_bytes"] == snapshot["bytes"]
        for key in ("kernel_cache_hits", "kernel_cache_misses",
                    "kernel_cache_evictions"):
            assert info[key] >= 0

    def test_sharded_backend_reports_kernel_counters(self):
        rel = relation_from_rows(
            "t", [("k", "int"), ("s", "string")],
            [(i, f"v{i % 5}") for i in range(40)])
        db = Database([rel])
        backend = ShardedBackend(n_shards=2)
        scan = ScanP("t", ("k", "s"))
        scan2 = ScanP("t", ("k2", "s2"))
        plan = JoinP(scan, scan2, "inner", ("s",), ("s2",), None, False)
        counts = backend.execution_counts()
        for key in ("kernel_cache_hits", "kernel_cache_misses",
                    "kernel_cache_evictions"):
            assert counts[key] == 0
        reference = Counter(VectorizedExecutor(db).batch(plan).rows())
        assert Counter(backend.execute(plan, db)) == reference
        assert Counter(backend.execute(plan, db)) == reference
        counts = backend.execution_counts()
        traffic = counts["kernel_cache_hits"] + counts["kernel_cache_misses"]
        assert traffic >= 1
        # A second backend keeps its own traffic (per-service isolation).
        assert ShardedBackend(n_shards=2).execution_counts()[
            "kernel_cache_hits"] == 0
