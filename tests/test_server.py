"""The HTTP serving tier: wire ≡ in-process, errors, admission, batching.

Four surfaces:

* the differential gate — ``POST /query`` answers over real sockets are
  bag-equal to in-process :meth:`~repro.core.service.QueryService.answer`
  for every canonical query in all five languages, on both the single-node
  and the sharded service (one server codebase, the ``ServiceAPI``
  protocol in between);
* structured errors — every :class:`~repro.core.service_api.ServiceError`
  code crosses the wire as ``{"error": {code, message, detail}}`` with the
  right HTTP status and never a traceback;
* admission control — a saturated server sheds with 503 + ``Retry-After``
  instead of queuing, and keeps serving ``/metrics``;
* the write worker — concurrent HTTP writes share flushes (fewer version
  bumps than requests), and a bad row fails alone, not its batch-mates.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time
from contextlib import closing, contextmanager

import pytest

from repro.core import QueryService, ServiceAPI
from repro.core.service_api import (
    FrozenMutationError,
    OverloadedError,
    QueryResult,
    UnknownRelationError,
    wrap_service_error,
)
from repro.core.sharded_service import ShardedQueryService
from repro.data import sailors_database
from repro.data.relation import RelationError
from repro.queries import CANONICAL_QUERIES, LANGUAGES
from repro.server import ServerThread
from repro.server.worker import WriteWorker

FALLBACK_SQL = ("SELECT S.sname FROM Sailors S LEFT JOIN Reserves R "
                "ON S.sid = R.sid WHERE R.sid IS NULL")
COUNT_SQL = "SELECT COUNT(*) AS n FROM Sailors S"


class Client:
    """A keep-alive JSON client over one real socket."""

    def __init__(self, port: int) -> None:
        self.conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)

    def request(self, method: str, path: str, body=None):
        payload = None if body is None else json.dumps(body)
        self.conn.request(method, path, payload,
                          {"Content-Type": "application/json"})
        response = self.conn.getresponse()
        data = json.loads(response.read())
        return response.status, dict(response.getheaders()), data

    def close(self) -> None:
        self.conn.close()


@contextmanager
def serving(service, **app_kwargs):
    with ServerThread(service, **app_kwargs) as server:
        client = Client(server.port)
        try:
            yield server, client
        finally:
            client.close()


@pytest.fixture(scope="module")
def base_server():
    service = QueryService(sailors_database())
    with ServerThread(service) as server:
        yield service, server


@pytest.fixture(scope="module")
def sharded_server():
    service = ShardedQueryService(sailors_database(), n_shards=2)
    with ServerThread(service) as server:
        yield service, server
    service.close()


DIFFERENTIAL_CELLS = [
    pytest.param(query, language, id=f"{query.id}-{language}")
    for query in CANONICAL_QUERIES
    for language in LANGUAGES
]


class TestHTTPDifferential:
    """Wire answers ≡ in-process answers, all languages, both services."""

    def _check(self, service, server, query, language):
        text = query.languages()[language]
        expected = service.answer(text, language=language.lower())
        client = Client(server.port)
        with closing(client):
            status, _headers, payload = client.request(
                "POST", "/query", {"text": text, "language": language.lower()})
        assert status == 200, payload
        assert payload["language"] == language.lower()
        assert payload["columns"] == list(expected.attribute_names)
        wire = sorted(tuple(row) for row in payload["rows"])
        assert wire == sorted(expected.rows()), (
            f"{query.id}/{language}: wire answer diverges from in-process")
        assert payload["row_count"] == len(expected)
        assert isinstance(payload["warnings"], list)
        assert isinstance(payload["fingerprint"], str)

    @pytest.mark.parametrize("query,language", DIFFERENTIAL_CELLS)
    def test_base_service(self, base_server, query, language):
        service, server = base_server
        self._check(service, server, query, language)

    @pytest.mark.parametrize("query,language", DIFFERENTIAL_CELLS)
    def test_sharded_service(self, sharded_server, query, language):
        service, server = sharded_server
        self._check(service, server, query, language)

    def test_version_token_shape(self, base_server, sharded_server):
        # Scalar version on the single-node service, vector on the sharded
        # one — both JSON-native.
        for _service, server in (base_server, sharded_server):
            client = Client(server.port)
            with closing(client):
                _s, _h, payload = client.request(
                    "POST", "/query", {"text": COUNT_SQL})
            assert isinstance(payload["version"], (int, list))

    def test_prepare_execute_matches_query(self, base_server):
        service, server = base_server
        client = Client(server.port)
        with closing(client):
            status, _h, prepared = client.request(
                "POST", "/prepare", {"text": FALLBACK_SQL})
            assert status == 200
            status, _h, executed = client.request(
                "POST", f"/execute/{prepared['handle']}")
            assert status == 200
            direct = service.query(FALLBACK_SQL)
        assert sorted(tuple(r) for r in executed["rows"]) == sorted(direct.rows)
        assert executed["fingerprint"] == direct.fingerprint

    def test_warnings_uniform_shape(self, base_server, sharded_server):
        # The interpreter-fallback query reports warnings through the same
        # envelope key on every service; engine-served queries report [].
        for _service, server in (base_server, sharded_server):
            client = Client(server.port)
            with closing(client):
                _s, _h, fallback = client.request(
                    "POST", "/query", {"text": FALLBACK_SQL})
                _s, _h, clean = client.request(
                    "POST", "/query", {"text": COUNT_SQL})
            assert isinstance(fallback["warnings"], list)
            assert fallback["warnings"], "fallback query should warn"
            assert all(isinstance(w, str) for w in fallback["warnings"])
            assert clean["warnings"] == []

    def test_in_process_query_envelope_matches_wire(self, base_server):
        service, server = base_server
        result = service.query(COUNT_SQL)
        assert isinstance(result, QueryResult)
        client = Client(server.port)
        with closing(client):
            _s, _h, wire = client.request("POST", "/query",
                                          {"text": COUNT_SQL})
        local = result.to_payload()
        for key in ("columns", "rows", "row_count", "language",
                    "fingerprint", "warnings"):
            assert wire[key] == local[key]


class TestViewLifecycleHTTP:
    """register / list / refresh / delete over the wire, both services.

    The sharded service used to reject every ``/views`` request with 400
    unsupported; since shard-aware view maintenance landed the lifecycle —
    and the error contracts — are identical on both services.
    """

    @pytest.fixture(params=["base", "sharded"])
    def server_pair(self, request, base_server, sharded_server):
        return base_server if request.param == "base" else sharded_server

    def test_full_lifecycle(self, server_pair):
        service, server = server_pair
        sql = "SELECT R.bid, COUNT(*) AS n FROM Reserves R GROUP BY R.bid"
        client = Client(server.port)
        with closing(client):
            status, _h, info = client.request(
                "POST", "/views", {"text": sql, "name": "per_boat"})
            assert status == 200, info
            assert info["name"] == "per_boat"
            assert info["rows"] > 0

            status, _h, listed = client.request("GET", "/views")
            assert status == 200
            assert "per_boat" in [v["name"] for v in listed["views"]]

            # Queries for the registered text are served from the view.
            hits_before = service.cache_info()["view_hits"]
            status, _h, payload = client.request("POST", "/query",
                                                 {"text": sql})
            assert status == 200
            assert service.cache_info()["view_hits"] == hits_before + 1

            # A write stales the view; the refresh endpoint catches it up.
            status, _h, _p = client.request(
                "POST", "/write",
                {"relation": "Reserves", "row": [58, 103, "2025/07/09"]})
            assert status == 200
            status, _h, refreshed = client.request(
                "POST", "/views/per_boat/refresh")
            assert status == 200, refreshed
            assert refreshed["current"] is True
            assert refreshed["refreshes"] >= info["refreshes"] + 1
            wire_rows = sorted(tuple(r) for r in (
                client.request("POST", "/query", {"text": sql})[2]["rows"]))
            assert wire_rows == sorted(
                service.answer(sql).rows())

            status, _h, deleted = client.request("DELETE",
                                                 "/views/per_boat")
            assert status == 200
            assert deleted == {"deleted": "per_boat"}
            status, _h, listed = client.request("GET", "/views")
            assert "per_boat" not in [v["name"] for v in listed["views"]]


class TestErrorPaths:
    """Every ServiceError code crosses the wire with its HTTP status."""

    def _error(self, server, method, path, body=None):
        client = Client(server.port)
        with closing(client):
            status, headers, payload = client.request(method, path, body)
        assert "error" in payload, payload
        error = payload["error"]
        assert set(error) >= {"code", "message", "detail"}
        assert "Traceback" not in json.dumps(payload)
        return status, headers, error

    def test_parse_error_400(self, base_server):
        _service, server = base_server
        status, _h, error = self._error(server, "POST", "/query",
                                        {"text": "SELEC nonsense FORM"})
        assert (status, error["code"]) == (400, "parse_error")

    def test_parse_error_all_languages(self, base_server):
        _service, server = base_server
        for language in ("sql", "ra", "trc", "drc", "datalog"):
            status, _h, error = self._error(
                server, "POST", "/query",
                {"text": "@!! not a query !!@", "language": language})
            assert status == 400, (language, error)
            assert error["code"] in ("parse_error", "invalid_request")

    def test_unknown_language_400(self, base_server):
        _service, server = base_server
        status, _h, error = self._error(
            server, "POST", "/query", {"text": "SELECT 1",
                                       "language": "cypher"})
        assert (status, error["code"]) == (400, "unknown_language")
        assert "cypher" in error["message"]
        assert error["detail"]["language"] == "cypher"

    def test_unknown_view_404(self, base_server):
        _service, server = base_server
        status, _h, error = self._error(server, "DELETE", "/views/ghost")
        assert (status, error["code"]) == (404, "unknown_view")

    def test_unknown_handle_404(self, base_server):
        _service, server = base_server
        status, _h, error = self._error(server, "POST", "/execute/deadbeef")
        assert (status, error["code"]) == (404, "unknown_handle")

    def test_unknown_relation_404(self, base_server):
        _service, server = base_server
        status, _h, error = self._error(
            server, "POST", "/write",
            {"relation": "NoSuchTable", "row": [1]})
        assert status == 404, error
        assert error["code"] == "unknown_relation"

    def test_view_conflict_409(self, base_server):
        _service, server = base_server
        client = Client(server.port)
        with closing(client):
            status, _h, _p = client.request(
                "POST", "/views", {"text": COUNT_SQL, "name": "dup"})
            assert status == 200
            status, _h, payload = client.request(
                "POST", "/views", {"text": FALLBACK_SQL, "name": "dup"})
            client.request("DELETE", "/views/dup")
        assert status == 409
        assert payload["error"]["code"] == "view_conflict"

    def test_view_error_contracts_match_across_services(self, base_server,
                                                        sharded_server):
        # The 409 conflict and 404 unknown-view contracts are identical on
        # both services (regression: the sharded service used to answer
        # every /views request with 400 unsupported).
        for _service, server in (base_server, sharded_server):
            client = Client(server.port)
            with closing(client):
                status, _h, _p = client.request(
                    "POST", "/views", {"text": COUNT_SQL, "name": "parity"})
                assert status == 200
                status, _h, payload = client.request(
                    "POST", "/views", {"text": FALLBACK_SQL,
                                       "name": "parity"})
                assert status == 409
                assert payload["error"]["code"] == "view_conflict"
                client.request("DELETE", "/views/parity")
                status, _h, payload = client.request(
                    "DELETE", "/views/parity")
                assert status == 404
                assert payload["error"]["code"] == "unknown_view"
                status, _h, payload = client.request(
                    "POST", "/views/parity/refresh")
                assert status == 404
                assert payload["error"]["code"] == "unknown_view"

    def test_invalid_request_shapes_400(self, base_server):
        _service, server = base_server
        cases = [
            ("POST", "/query", {"language": "sql"}),           # missing text
            ("POST", "/query", {"text": 7}),                   # wrong type
            ("POST", "/write", {"relation": "Sailors"}),       # no rows
            ("POST", "/write", {"relation": "Sailors", "rows": "x"}),
            ("POST", "/write", {"relation": "Sailors",
                                "row": [1], "rows": [[2]]}),   # both forms
        ]
        for method, path, body in cases:
            status, _h, error = self._error(server, method, path, body)
            assert (status, error["code"]) == (400, "invalid_request"), body

    def test_malformed_json_400(self, base_server):
        _service, server = base_server
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=60)
        with closing(conn):
            conn.request("POST", "/query", "{not json",
                         {"Content-Type": "application/json"})
            response = conn.getresponse()
            payload = json.loads(response.read())
        assert response.status == 400
        assert payload["error"]["code"] == "invalid_request"

    def test_bad_row_arity_400(self, base_server):
        _service, server = base_server
        status, _h, error = self._error(
            server, "POST", "/write",
            {"relation": "Sailors", "row": [1, "too-few"]})
        assert status == 400, error
        assert error["code"] == "invalid_request"

    def test_not_found_and_method_not_allowed(self, base_server):
        _service, server = base_server
        status, _h, error = self._error(server, "GET", "/no/such/route")
        assert (status, error["code"]) == (404, "not_found")
        status, _h, error = self._error(server, "DELETE", "/query")
        assert (status, error["code"]) == (405, "method_not_allowed")
        assert error["detail"]["allowed"] == ["POST"]

    def test_frozen_mutation_maps_to_409(self):
        # The classifier turns the storage tier's frozen-relation error
        # into the structured 409 (unit level: HTTP writes go through
        # copy-on-write services, so the wire never sees it here).
        error = wrap_service_error(
            RelationError("relation 'answer' is frozen; copy() it to mutate"))
        assert isinstance(error, FrozenMutationError)
        assert (error.http_status, error.code) == (409, "frozen_mutation")

    def test_key_error_maps_to_unknown_relation(self):
        error = wrap_service_error(KeyError("Ghost"))
        assert isinstance(error, UnknownRelationError)
        assert error.http_status == 404


class _SlowStubService:
    """A ServiceAPI double whose query blocks until released."""

    def __init__(self) -> None:
        self.release = threading.Event()
        self.calls = 0

    def query(self, text, *, language=None):
        self.calls += 1
        assert self.release.wait(timeout=60), "stub never released"
        return QueryResult(columns=("n",), rows=((self.calls,),),
                           language="sql", fingerprint="stub", version=1,
                           warnings=(), relation=None)

    def answer(self, text, *, language=None, warnings=None):
        return self.query(text).relation

    def prepare(self, text, *, language=None):
        raise NotImplementedError("stub")

    def add_row(self, relation, row, *, validate=True):
        return 1

    def add_rows(self, relation, rows, *, validate=True):
        return 1

    def writing(self):
        raise NotImplementedError("stub")

    def register_view(self, text, *, language=None, name=None,
                      refresh="lazy"):
        raise NotImplementedError("stub")

    def unregister_view(self, view):
        raise NotImplementedError("stub")

    def view(self, name):
        raise NotImplementedError("stub")

    def views(self):
        return ()

    def stats_snapshot(self):
        return 1, {}

    def cache_info(self):
        return {}

    def execution_counts(self):
        return {}

    def close(self):
        pass


class TestAdmission:
    """Saturation sheds with 503 + Retry-After; metrics stay reachable."""

    def test_stub_satisfies_protocol(self):
        assert isinstance(_SlowStubService(), ServiceAPI)
        assert isinstance(QueryService(sailors_database()), ServiceAPI)

    def test_overloaded_503_with_retry_after(self):
        stub = _SlowStubService()
        with serving(stub, max_concurrent=1, max_queue_depth=0,
                     retry_after=0.25) as (server, shed_client):
            occupant = Client(server.port)
            result: dict = {}

            def occupy():
                result["response"] = occupant.request(
                    "POST", "/query", {"text": "block"})

            thread = threading.Thread(target=occupy)
            thread.start()
            # Wait until the slow request holds the only admission slot.
            deadline = time.monotonic() + 30
            while server.app.admission.active < 1:
                assert time.monotonic() < deadline, "occupant never admitted"
                time.sleep(0.005)

            status, headers, payload = shed_client.request(
                "POST", "/query", {"text": "shed me"})
            assert status == 503
            assert payload["error"]["code"] == "overloaded"
            assert float(headers["Retry-After"]) == 0.25
            assert payload["error"]["detail"]["max_concurrent"] == 1

            # The observability plane bypasses admission entirely.
            status, _h, metrics = shed_client.request("GET", "/metrics")
            assert status == 200
            assert metrics["admission_shed"] >= 1
            assert metrics["admission_active"] == 1

            stub.release.set()
            thread.join(timeout=60)
            occupant.close()
            assert result["response"][0] == 200

    def test_admitted_after_release(self):
        stub = _SlowStubService()
        stub.release.set()  # never block: every request admits immediately
        with serving(stub, max_concurrent=1, max_queue_depth=0) as (_s, client):
            for _ in range(5):
                status, _h, _p = client.request("POST", "/query",
                                                {"text": "q"})
                assert status == 200


class TestWriteBatching:
    """Concurrent writes share flushes — fewer version bumps than writes."""

    def test_queued_writes_share_one_flush(self):
        # Deterministic unit-level check of the ≥5x property: writes queued
        # before the worker drains land in one add_rows call (one bump).
        service = QueryService(sailors_database())
        worker = WriteWorker(service, flush_interval=0)

        async def drive():
            submissions = [
                asyncio.ensure_future(
                    worker.submit("Sailors", [[900 + i, f"w{i}", 5, 30.0]]))
                for i in range(25)
            ]
            await asyncio.sleep(0)  # enqueue all before the worker starts
            worker.start()
            versions = await asyncio.gather(*submissions)
            await worker.close()
            return versions

        before = service.db.version
        versions = asyncio.run(drive())
        counts = worker.counts()
        assert counts["write_requests"] == 25
        assert counts["write_rows"] == 25
        bumps = service.db.version - before
        assert bumps == counts["write_batched_calls"]
        assert bumps * 5 <= counts["write_requests"], (
            f"{bumps} bumps for {counts['write_requests']} writes")
        assert len(set(versions)) == bumps

    def test_http_writes_batch_across_clients(self):
        service = QueryService(sailors_database())
        before = service.db.version
        n_threads, writes_each = 8, 4
        with serving(service, flush_interval=0.05) as (server, _client):
            barrier = threading.Barrier(n_threads)
            failures: list = []

            def writer(tid: int):
                client = Client(server.port)
                with closing(client):
                    barrier.wait()
                    for i in range(writes_each):
                        status, _h, payload = client.request(
                            "POST", "/write",
                            {"relation": "Sailors",
                             "row": [1000 + tid * 100 + i,
                                     f"c{tid}-{i}", 5, 30.0]})
                        if status != 200:
                            failures.append(payload)

            threads = [threading.Thread(target=writer, args=(t,))
                       for t in range(n_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not failures, failures
            counts = server.app.worker.counts()
        writes = n_threads * writes_each
        bumps = service.db.version - before
        assert counts["write_requests"] == writes
        assert counts["write_rows"] == writes
        assert bumps < writes, "HTTP writes never shared a version bump"
        assert len(service.db["Sailors"]) == 10 + writes

    def test_bad_row_fails_alone(self):
        service = QueryService(sailors_database())
        with serving(service, flush_interval=0.05) as (server, _client):
            barrier = threading.Barrier(3)
            results: dict[str, tuple] = {}

            def write(name: str, row):
                client = Client(server.port)
                with closing(client):
                    barrier.wait()
                    results[name] = client.request(
                        "POST", "/write", {"relation": "Sailors",
                                           "row": row})

            threads = [
                threading.Thread(target=write,
                                 args=("good1", [801, "ok1", 5, 30.0])),
                threading.Thread(target=write,
                                 args=("bad", [802, "broken"])),  # arity
                threading.Thread(target=write,
                                 args=("good2", [803, "ok2", 5, 30.0])),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        assert results["good1"][0] == 200
        assert results["good2"][0] == 200
        assert results["bad"][0] == 400
        assert results["bad"][2]["error"]["code"] == "invalid_request"
        names = {row[1] for row in service.db["Sailors"].rows()}
        assert {"ok1", "ok2"} <= names and "broken" not in names


class TestConcurrencyHammer:
    """Mixed readers/writers over real sockets: monotone, untorn answers."""

    N_READERS = 6
    N_WRITERS = 2
    REQUESTS = 12

    def test_versions_and_counts_monotone_per_connection(self):
        service = QueryService(sailors_database())
        with serving(service, max_concurrent=16,
                     max_queue_depth=256) as (server, _client):
            barrier = threading.Barrier(self.N_READERS + self.N_WRITERS)
            errors: list = []

            def reader(tid: int):
                client = Client(server.port)
                with closing(client):
                    barrier.wait()
                    last_version, last_count = -1, -1
                    for _ in range(self.REQUESTS):
                        status, _h, payload = client.request(
                            "POST", "/query", {"text": COUNT_SQL})
                        if status != 200:
                            errors.append((tid, payload))
                            return
                        version = payload["version"]
                        count = payload["rows"][0][0]
                        # Writes only append: each later response on this
                        # connection must observe a version and a count at
                        # least as new as the one before (no stale or torn
                        # answers slip through the result cache).
                        if version < last_version or count < last_count:
                            errors.append(
                                (tid, "regression", last_version, version,
                                 last_count, count))
                            return
                        last_version, last_count = version, count

            def writer(tid: int):
                client = Client(server.port)
                with closing(client):
                    barrier.wait()
                    for i in range(self.REQUESTS):
                        status, _h, payload = client.request(
                            "POST", "/write",
                            {"relation": "Sailors",
                             "row": [5000 + tid * 100 + i,
                                     f"h{tid}-{i}", 6, 41.0]})
                        if status != 200:
                            errors.append((tid, payload))
                            return

            threads = [threading.Thread(target=reader, args=(t,))
                       for t in range(self.N_READERS)]
            threads += [threading.Thread(target=writer, args=(t,))
                        for t in range(self.N_WRITERS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            assert not any(t.is_alive() for t in threads), "hammer hung"
            assert not errors, errors

        final = service.answer(COUNT_SQL)
        assert sorted(final.rows()) == [
            (10 + self.N_WRITERS * self.REQUESTS,)]

    def test_keep_alive_across_many_requests(self):
        service = QueryService(sailors_database())
        with serving(service) as (_server, client):
            for i in range(20):
                status, _h, payload = client.request(
                    "POST", "/query", {"text": COUNT_SQL})
                assert status == 200
            status, _h, metrics = client.request("GET", "/metrics")
            assert metrics["requests_served"] >= 21

    def test_shutdown_with_open_keep_alive_connections(self):
        # Idle keep-alive connections sit parked in read_request; close()
        # must cancel them (promptly, without "Task was destroyed" noise)
        # rather than waiting for the clients to hang up.
        service = QueryService(sailors_database())
        server = ServerThread(service)
        server.start()
        clients = [Client(server.port) for _ in range(3)]
        try:
            for client in clients:
                status, _h, _p = client.request(
                    "POST", "/query", {"text": COUNT_SQL})
                assert status == 200
        finally:
            server.close()  # connections still open: must not hang
        assert server.app._connections == set()
        for client in clients:
            client.close()


class TestOverloadedError:
    def test_retry_after_in_payload_detail(self):
        error = OverloadedError("busy", retry_after=1.5)
        assert error.http_status == 503
        assert error.retry_after == 1.5
        payload = error.to_payload()
        assert payload["code"] == "overloaded"
