"""Tests for the pre-database formalisms: syllogisms, Euler, Venn/Venn–Peirce,
Peirce alpha and beta graphs, constraint diagrams."""

from __future__ import annotations

import pytest

from repro.diagrams.constraint import ConstraintDiagram, ConstraintError
from repro.diagrams.euler import euler_diagram, euler_syllogism_figure, spatial_relation
from repro.diagrams.peirce_alpha import (
    AlphaError,
    AlphaGraph,
    alpha_diagram,
    deiterate_letter,
    double_cut_insert,
    double_cut_remove,
    erase_letter,
    formula_of,
    graph_of,
    graphs_equivalent,
    insert_letter,
    iterate_letter,
)
from repro.diagrams.peirce_beta import (
    beta_diagram,
    beta_diagram_for_query,
    beta_graph_of,
    drc_of_beta,
)
from repro.diagrams.syllogism import (
    CategoricalProposition,
    NAMED_SYLLOGISMS,
    Syllogism,
    all_syllogisms,
    entails,
    regions_for,
    valid_syllogisms,
)
from repro.diagrams.venn import VennDiagram, VennError, venn_syllogism_test
from repro.drc import evaluate_drc_boolean, parse_drc_formula
from repro.logic import And, Exists, Implies, Not, Or, Var, prop
from repro.queries import Q2_RED_BOAT, Q4_ALL_RED


class TestSyllogisms:
    def test_proposition_text_and_validation(self):
        assert CategoricalProposition("A", "Greeks", "mortals").text() == "All Greeks are mortals"
        with pytest.raises(ValueError):
            CategoricalProposition("Z", "a", "b")

    def test_region_model_size(self):
        assert len(regions_for(["A", "B", "C"])) == 8

    def test_barbara_is_valid(self):
        assert Syllogism("AAA", 1).is_valid()
        assert Syllogism("AAA", 1).name() == "AAA-1"

    def test_existential_import_distinction(self):
        darapti = Syllogism("AAI", 3)
        assert not darapti.is_valid()
        assert darapti.is_valid(existential_import=True)

    def test_classic_counts(self):
        assert len(all_syllogisms()) == 256
        assert len(valid_syllogisms()) == 15
        assert len(valid_syllogisms(existential_import=True)) == 24

    def test_named_forms_are_valid(self):
        valid = {(s.mood, s.figure) for s in valid_syllogisms()}
        assert set(NAMED_SYLLOGISMS) <= valid

    def test_entailment_examples(self):
        all_a_b = CategoricalProposition("A", "A", "B")
        all_b_c = CategoricalProposition("A", "B", "C")
        assert entails([all_a_b, all_b_c], CategoricalProposition("A", "A", "C"))
        assert not entails([all_a_b], CategoricalProposition("I", "A", "B"))
        assert entails([all_a_b], CategoricalProposition("I", "A", "B"),
                       existential_import=True)


class TestEuler:
    def test_spatial_relations(self):
        premises = [CategoricalProposition("A", "dogs", "mammals"),
                    CategoricalProposition("E", "mammals", "reptiles")]
        assert spatial_relation(premises, "dogs", "mammals") == "inside"
        assert spatial_relation(premises, "mammals", "dogs") == "contains"
        assert spatial_relation(premises, "dogs", "reptiles") == "disjoint"
        assert spatial_relation([], "dogs", "cats") == "unknown"

    def test_euler_diagram_nesting(self):
        premises = [CategoricalProposition("A", "dogs", "mammals")]
        diagram = euler_diagram(premises)
        dogs = diagram.groups["circle_dogs"]
        mammals = diagram.groups["circle_mammals"]
        assert dogs.parent == mammals.id
        assert diagram.validate() == []

    def test_euler_disjoint_edge(self):
        premises = [CategoricalProposition("E", "cats", "dogs")]
        diagram = euler_diagram(premises)
        assert any(e.label == "disjoint" for e in diagram.edges)

    def test_syllogism_figure_annotation(self):
        major, minor, conclusion = Syllogism("AAA", 1).propositions("Greeks", "mortal", "men")
        diagram = euler_syllogism_figure(major, minor, conclusion)
        verdict = [n for n in diagram.nodes.values() if n.kind == "annotation"][0]
        assert "follows" in verdict.label and "NOT" not in verdict.label


class TestVenn:
    def test_shading_and_x_marks(self):
        diagram = VennDiagram.from_propositions([
            CategoricalProposition("A", "A", "B"),
            CategoricalProposition("I", "B", "C"),
        ])
        assert diagram.shaded  # All A are B shades A∩¬B refinements
        assert diagram.x_sequences
        assert diagram.is_consistent()

    def test_plain_venn_cannot_do_disjunctive_occupancy(self):
        # "Some A are B" over three terms spans two minimal regions.
        with pytest.raises(VennError):
            VennDiagram(("A", "B", "C")).assert_proposition(
                CategoricalProposition("I", "A", "B"), peirce=False)
        # With only the two terms drawn there is a single region, so plain Venn copes.
        VennDiagram(("A", "B")).assert_proposition(
            CategoricalProposition("I", "A", "B"), peirce=False)

    def test_inconsistent_information_detected(self):
        diagram = VennDiagram(("A", "B"))
        diagram.assert_proposition(CategoricalProposition("E", "A", "B"))
        with pytest.raises(VennError):
            diagram.assert_proposition(CategoricalProposition("I", "A", "B"))

    def test_entailment_matches_syllogism_semantics(self):
        for mood, figure in [("AAA", 1), ("EAE", 1), ("AII", 3), ("AEE", 2)]:
            syllogism = Syllogism(mood, figure)
            major, minor, conclusion = syllogism.propositions()
            assert venn_syllogism_test(major, minor, conclusion) == syllogism.is_valid()

    def test_invalid_syllogism_rejected_by_venn(self):
        major, minor, conclusion = Syllogism("AAI", 1).propositions()
        assert not venn_syllogism_test(major, minor, conclusion)

    def test_render_contains_shading_and_x(self):
        diagram = VennDiagram.from_propositions([
            CategoricalProposition("A", "A", "B"),
            CategoricalProposition("I", "A", "C"),
        ])
        rendered = diagram.to_diagram()
        labels = [n.label for n in rendered.nodes.values()]
        assert any("shaded" in label for label in labels)
        assert any(label == "x" for label in labels)
        assert rendered.validate() == []

    def test_merge_combines_information(self):
        a = VennDiagram.from_propositions([CategoricalProposition("A", "A", "B")])
        b = VennDiagram.from_propositions([CategoricalProposition("A", "B", "C")])
        merged = a.merge(b)
        assert merged.entails(CategoricalProposition("A", "A", "C"))


class TestPeirceAlpha:
    def test_graph_of_and_back(self):
        p, q = prop("p"), prop("q")
        for formula in [p, And((p, q)), Or((p, q)), Implies(p, q), Not(p)]:
            graph = graph_of(formula)
            assert graphs_equivalent(graph, graph_of(formula_of(graph)))

    def test_or_uses_three_cuts(self):
        graph = graph_of(Or((prop("p"), prop("q"))))
        assert graph.cut_count() == 3
        assert graph.depth() == 2

    def test_non_propositional_rejected(self):
        with pytest.raises(AlphaError):
            graph_of(Exists((Var("x"),), prop("p")))

    def test_double_cut_rules_preserve_meaning(self):
        graph = graph_of(And((prop("p"), prop("q"))))
        wrapped = double_cut_insert(graph)
        assert graphs_equivalent(graph, wrapped)
        assert double_cut_remove(wrapped) == graph

    def test_erasure_weakens_insertion_strengthens(self):
        p, q = prop("p"), prop("q")
        graph = graph_of(And((p, q)))
        erased = erase_letter(graph, "q")
        # erasure in a positive area is sound: the result is implied.
        assert formula_of(erased) == p or graphs_equivalent(erased, graph_of(p))
        implication = graph_of(Implies(p, q))
        strengthened = insert_letter(implication, "r")
        assert strengthened.letter_count() == implication.letter_count() + 1

    def test_iteration_and_deiteration_are_inverse(self):
        graph = graph_of(Implies(prop("p"), prop("q")))
        iterated = iterate_letter(graph, "p")
        assert graphs_equivalent(graph, iterated)
        assert deiterate_letter(iterated, "p") == graph

    def test_insertion_requires_a_cut(self):
        with pytest.raises(AlphaError):
            insert_letter(AlphaGraph(("p",)), "q")

    def test_alpha_diagram_rendering(self):
        diagram = alpha_diagram(Implies(prop("rain"), prop("wet")))
        assert diagram.element_counts()["groups"] >= 3  # sheet + 2 cuts
        assert "rain" in diagram.to_ascii()


class TestPeirceBeta:
    def test_sentence_round_trip_preserves_truth(self, db):
        sentences = [
            "exists b, n (Boats(b, n, 'red'))",
            "forall s, b, d (Reserves(s, b, d) -> exists n, r, a (Sailors(s, n, r, a)))",
            "not exists b, n (Boats(b, n, 'purple'))",
        ]
        for text in sentences:
            formula = parse_drc_formula(text)
            graph = beta_graph_of(formula)
            back = drc_of_beta(graph)
            assert evaluate_drc_boolean(formula, db) == evaluate_drc_boolean(back, db)

    def test_forall_uses_two_cuts(self):
        formula = parse_drc_formula(
            "forall b, n, c (Boats(b, n, c) -> exists s, d (Reserves(s, b, d)))")
        graph = beta_graph_of(formula)
        assert graph.cut_depth() == 2
        assert {line.variable for line in graph.lines} >= {"b", "n", "c", "s", "d"}

    def test_lines_of_identity_connect_hooks(self):
        formula = parse_drc_formula("exists s, b, d, n, r, a "
                                    "(Reserves(s, b, d) and Sailors(s, n, r, a))")
        graph = beta_graph_of(formula)
        line_s = graph.line_for("s")
        assert len(line_s.hooks) == 2  # s appears in both atoms

    def test_query_diagram_flags_free_lines(self, schema):
        diagram = beta_diagram_for_query(Q2_RED_BOAT.sql, schema)
        assert "free lines" in diagram.formalism
        assert diagram.element_counts()["negation_groups"] == 0
        diagram4 = beta_diagram_for_query(Q4_ALL_RED.sql, schema)
        assert diagram4.element_counts()["negation_groups"] == 2

    def test_identity_edges_are_bold(self, schema):
        diagram = beta_diagram_for_query(Q2_RED_BOAT.sql, schema)
        identity_edges = [e for e in diagram.edges if e.kind == "identity"]
        assert identity_edges and all(e.style == "bold" for e in identity_edges)

    def test_boolean_sentence_diagram(self):
        formula = parse_drc_formula("not exists b, n (Boats(b, n, 'purple'))")
        diagram = beta_diagram(beta_graph_of(formula))
        assert diagram.element_counts()["negation_groups"] == 1


class TestConstraintDiagrams:
    def test_shading_and_spiders(self):
        diagram = ConstraintDiagram(("Sailors", "Reserving"))
        diagram.shade(["Reserving"], ["Sailors"])      # reserving ⊆ sailors
        spider = diagram.add_spider("s", ["Sailors"])
        assert diagram.asserts_empty(["Reserving"], ["Sailors"])
        assert not diagram.asserts_empty(["Sailors"])
        assert diagram.is_satisfiable()
        assert spider.habitat

    def test_unsatisfiable_when_spider_fully_shaded(self):
        diagram = ConstraintDiagram(("A",))
        diagram.shade(["A"])
        diagram.add_spider("x", ["A"])
        assert not diagram.is_satisfiable()

    def test_empty_habitat_rejected(self):
        diagram = ConstraintDiagram(("A",))
        with pytest.raises(ConstraintError):
            diagram.add_spider("x", ["B"], ["A", "B"])  # no such region

    def test_rendering_with_arrows(self):
        diagram = ConstraintDiagram(("Sailors", "Boats"))
        diagram.add_spider("s", ["Sailors"])
        diagram.add_spider("b", ["Boats"])
        diagram.add_arrow("reserves", "s", "b")
        rendered = diagram.to_diagram()
        assert any(e.label == "reserves" and e.directed for e in rendered.edges)
        assert rendered.validate() == []
