"""Property-based differential fuzzing of the executor backends.

The hand-written catalog differentials (``test_vectorized.py``,
``test_parallel.py``, ``test_sharded.py``, ``test_process.py``) pin the
backends together over a fixed workload; as the backend matrix grows, fixed
suites stop covering the input space.  Following the benchmark-management
argument for generated instance families over curated ones, this suite
*generates* the workload: a hypothesis strategy builds random logical plans
— scans, filters, equi- and semi/anti-joins, projections, distinct, set
operations, group-bys, sorts — over small random relations, and asserts

    row ≡ vectorized ≡ kernel ≡ parallel ≡ sharded (2 and 3 shards)
        ≡ process (2 shards, 2 worker processes)

bag-for-bag on every generated (database, plan) pair, for both the raw and
the optimizer-rewritten plan.  Shrinking then turns any divergence into a
minimal counterexample.

Generation invariants (so a failure is always a backend bug, not a
meaningless plan):

* column names are globally unique and encode their type (``c7_int``), so
  references resolve unambiguously and comparisons are always
  type-compatible (the reference semantics raise on mixed-type
  comparisons);
* aggregated columns are integers — partial→final aggregation sums partial
  sums, and integer sums are exact, so AVG division agrees bitwise across
  backends;
* ``LIMIT`` is never generated: without a total order it is legitimately
  nondeterministic across row orders, and the sharded gather permutes row
  order within the bag.

Profiles: the bounded ``ci`` profile (default) keeps the suite inside the
tier-1 budget; ``nightly`` runs an order of magnitude more examples (the
scheduled ``bench-full`` workflow sets ``REPRO_FUZZ_PROFILE=nightly``).
"""

from __future__ import annotations

import os
from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.data.database import Database
from repro.data.relation import relation_from_rows
from repro.engine import get_backend, optimize
from repro.engine.parallel import ParallelBackend
from repro.engine.plan import (
    AggregateP,
    DistinctP,
    FilterP,
    JoinP,
    Plan,
    ProjectP,
    ScanP,
    SetOpP,
    SortLimitP,
)
from repro.engine.kernels import KernelExecutor
from repro.engine.process import ProcessBackend
from repro.engine.sharded import ShardedBackend
from repro.expr import ast as e

_COMMON = dict(deadline=None,
               suppress_health_check=[HealthCheck.too_slow,
                                      HealthCheck.data_too_large,
                                      HealthCheck.filter_too_much])
settings.register_profile("ci", max_examples=40, **_COMMON)
settings.register_profile("nightly", max_examples=400, **_COMMON)
settings.load_profile(os.environ.get("REPRO_FUZZ_PROFILE", "ci"))

class _KernelBackend:
    """The kernel-accelerated vectorized executor as a backend fixture.

    Exercises the compiled filter/probe/aggregate kernels when numpy is
    importable; without numpy every kernel declines and this is exactly the
    vectorized backend (still a valid differential leg).
    """

    name = "kernel"

    def execute(self, plan, db):
        return KernelExecutor(db).batch(plan).rows()


#: Every generated plan must agree across all of these.
BACKENDS = [
    ("row", get_backend("row")),
    ("vectorized", get_backend("vectorized")),
    ("kernel", _KernelBackend()),
    # Partition threshold 1 forces the partitioned probe/group code paths
    # even on tiny generated relations.
    ("parallel", ParallelBackend(workers=3, min_partition_rows=1)),
    ("sharded-2", ShardedBackend(n_shards=2)),
    ("sharded-3", ShardedBackend(n_shards=3)),
    # Real worker processes over shared-memory pages; 2 workers keeps the
    # fork cost inside the ci profile's budget.
    ("process-2", ProcessBackend(n_shards=2, workers=2)),
]

_INT_VALUES = st.one_of(st.integers(min_value=0, max_value=6),
                        st.none())
#: String column profiles: a small shared pool (join keys usually match), a
#: high-cardinality pool (dictionary codes dominate values), and a
#: heavy-duplicate pool (repeated entries skew sampling toward one value) —
#: each mixed with ``None`` so dictionary masks and NULL-key join/DISTINCT
#: semantics are exercised on every backend.
_SMALL_POOL = ["a", "b", "c"]
_HIGH_CARD_POOL = [f"s{i:02d}" for i in range(24)]
_HEAVY_DUP_POOL = ["k0"] * 6 + ["k1", "k2"]
_STR_POOLS = [_SMALL_POOL, _HIGH_CARD_POOL, _HEAVY_DUP_POOL]
_STR_CONSTS = ["a", "b", "c", "s03", "s17", "k0"]


class _Names:
    """Globally unique, type-tagged column names for one generated plan."""

    def __init__(self) -> None:
        self.counter = 0

    def fresh(self, dtype: str) -> str:
        self.counter += 1
        return f"c{self.counter}_{dtype}"


def _typed(columns: tuple[str, ...]) -> list[tuple[str, str]]:
    """``(name, dtype)`` pairs recovered from the type-tagged names."""
    return [(c, c.rsplit("_", 1)[1]) for c in columns]


@st.composite
def _relation(draw, names: _Names, index: int):
    arity = draw(st.integers(min_value=2, max_value=4))
    # The first column (the default shard key) is usually int but sometimes a
    # string, so hash-partitioning and point routing run over dictionary-coded
    # keys too.
    dtypes = [draw(st.sampled_from(["int", "int", "str"]))] + [
        draw(st.sampled_from(["int", "str"])) for _ in range(arity - 1)]
    pool = draw(st.sampled_from(_STR_POOLS))
    str_values = st.one_of(st.sampled_from(pool), st.none())
    n_rows = draw(st.integers(min_value=0, max_value=20))
    rows = []
    for _ in range(n_rows):
        rows.append(tuple(
            draw(_INT_VALUES if d == "int" else str_values) for d in dtypes))
    columns = [(f"r{index}_a{j}", d) for j, d in enumerate(dtypes)]
    return relation_from_rows(f"R{index}", columns, rows), dtypes


@st.composite
def _condition(draw, columns: tuple[str, ...]):
    """A type-compatible boolean condition over ``columns``."""
    typed = _typed(columns)
    name, dtype = draw(st.sampled_from(typed))
    op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    same_type = [n for n, d in typed if d == dtype and n != name]
    if same_type and draw(st.booleans()):
        other: e.Expr = e.Col(draw(st.sampled_from(same_type)))
    else:
        other = e.Const(draw(st.integers(min_value=0, max_value=6)
                             if dtype == "int"
                             else st.sampled_from(_STR_CONSTS)))
    comparison: e.Expr = e.Comparison(e.Col(name), op, other)
    wrap = draw(st.integers(min_value=0, max_value=3))
    if wrap == 1:
        comparison = e.Not(comparison)
    elif wrap == 2:
        extra = e.Comparison(e.Col(name), "=", other)
        comparison = e.Or((comparison, extra))
    return comparison


@st.composite
def _plan(draw, names: _Names, relations, depth: int):
    """A random plan; returns ``(plan, dtypes_of_output_columns)``."""
    kind = draw(st.sampled_from(
        ["scan", "scan"] if depth <= 0 else
        ["scan", "filter", "project", "join", "semi", "distinct",
         "aggregate", "setop", "sort"]))

    if kind == "scan":
        which = draw(st.integers(min_value=0, max_value=len(relations) - 1))
        relation, dtypes = relations[which]
        columns = tuple(names.fresh(d) for d in dtypes)
        return ScanP(relation.schema.name, columns), tuple(dtypes)

    if kind == "filter":
        plan, dtypes = draw(_plan(names, relations, depth - 1))
        return FilterP(plan, draw(_condition(plan.columns))), dtypes

    if kind == "project":
        plan, dtypes = draw(_plan(names, relations, depth - 1))
        picks = draw(st.lists(
            st.integers(min_value=0, max_value=len(plan.columns) - 1),
            min_size=1, max_size=3))
        exprs = tuple(e.Col(plan.columns[p]) for p in picks)
        out = tuple(names.fresh(dtypes[p]) for p in picks)
        return ProjectP(plan, exprs, out), tuple(dtypes[p] for p in picks)

    if kind in ("join", "semi"):
        left, left_dtypes = draw(_plan(names, relations, depth - 1))
        right, right_dtypes = draw(_plan(names, relations, depth - 1))
        pairs = [(lc, rc)
                 for lc, ld in zip(left.columns, left_dtypes)
                 for rc, rd in zip(right.columns, right_dtypes) if ld == rd]
        n_keys = draw(st.integers(min_value=0 if kind == "join" else 1,
                                  max_value=min(2, len(pairs)))) if pairs else 0
        keys = draw(st.permutations(pairs))[:n_keys] if n_keys else []
        null_matches = draw(st.booleans())
        if kind == "semi":
            join_kind = draw(st.sampled_from(["semi", "anti"]))
            if not keys:  # semi/anti need at least one key to be meaningful
                return left, tuple(left_dtypes)
            plan = JoinP(left, right, join_kind,
                         tuple(k for k, _ in keys), tuple(k for _, k in keys),
                         None, null_matches)
            return plan, tuple(left_dtypes)
        join_kind = "inner" if keys else "cross"
        plan = JoinP(left, right, join_kind,
                     tuple(k for k, _ in keys), tuple(k for _, k in keys),
                     None, null_matches)
        return plan, tuple(left_dtypes) + tuple(right_dtypes)

    if kind == "distinct":
        plan, dtypes = draw(_plan(names, relations, depth - 1))
        return DistinctP(plan), dtypes

    if kind == "aggregate":
        plan, dtypes = draw(_plan(names, relations, depth - 1))
        group_picks = draw(st.lists(
            st.integers(min_value=0, max_value=len(plan.columns) - 1),
            min_size=0, max_size=2, unique=True))
        int_columns = [c for c, d in zip(plan.columns, dtypes) if d == "int"]
        calls: list[tuple[e.FuncCall, str]] = [
            (e.FuncCall("count", (e.Star(),)), names.fresh("int"))]
        if int_columns:
            fn = draw(st.sampled_from(["sum", "min", "max", "avg", "count"]))
            target = draw(st.sampled_from(int_columns))
            calls.append((e.FuncCall(fn, (e.Col(target),)),
                          names.fresh("int")))
        agg = AggregateP(plan, tuple(e.Col(plan.columns[p])
                                     for p in group_picks), tuple(calls))
        # Project group keys + aggregate outputs, the columns SQL can
        # legally select; representative columns of straddling groups are
        # backend-dependent by design (documented in repro.engine.sharded).
        exprs = [e.Col(plan.columns[p]) for p in group_picks]
        out_names = [names.fresh(dtypes[p]) for p in group_picks]
        out_dtypes = [dtypes[p] for p in group_picks]
        for _call, agg_name in calls:
            exprs.append(e.Col(agg_name))
            out_names.append(names.fresh("int"))
            out_dtypes.append("int")
        return (ProjectP(agg, tuple(exprs), tuple(out_names)),
                tuple(out_dtypes))

    if kind == "setop":
        plan, dtypes = draw(_plan(names, relations, depth - 1))
        # A second operand over the same source shape keeps the sides
        # union-compatible by construction: re-derive a filtered variant.
        other = FilterP(plan, draw(_condition(plan.columns)))
        op = draw(st.sampled_from(["union", "intersect", "except"]))
        distinct = draw(st.booleans())
        return SetOpP(op, plan, other, distinct), dtypes

    # sort (keys over every column, ascending/descending; never LIMIT)
    plan, dtypes = draw(_plan(names, relations, depth - 1))
    keys = tuple((e.Col(c), draw(st.booleans())) for c in plan.columns)
    return SortLimitP(plan, keys, None), dtypes


@st.composite
def plan_and_database(draw):
    names = _Names()
    n_relations = draw(st.integers(min_value=1, max_value=3))
    relations = [draw(_relation(names, i)) for i in range(n_relations)]
    db = Database(rel for rel, _dtypes in relations)
    plan, _dtypes = draw(_plan(names, relations,
                               draw(st.integers(min_value=1, max_value=3))))
    return db, plan


def _bags(db: Database, plan: Plan) -> dict[str, Counter]:
    return {name: Counter(backend.execute(plan, db))
            for name, backend in BACKENDS}


@given(case=plan_and_database())
def test_backends_agree_on_random_plans(case):
    db, plan = case
    bags = _bags(db, plan)
    reference = bags["row"]
    for name, bag in bags.items():
        assert bag == reference, (
            f"{name} diverged from row on:\n{plan}\n"
            f"row={sorted(reference.items())}\n{name}={sorted(bag.items())}"
        )


@given(case=plan_and_database())
def test_backends_agree_on_optimized_plans(case):
    db, plan = case
    optimized = optimize(plan, db)
    reference = Counter(get_backend("row").execute(plan, db))
    bags = _bags(db, optimized)
    for name, bag in bags.items():
        assert bag == reference, (
            f"{name} diverged on the optimized plan:\n{optimized}\n"
            f"row(raw)={sorted(reference.items())}\n"
            f"{name}={sorted(bag.items())}"
        )


# ---------------------------------------------------------------------------
# Sharded materialized views: maintained ≡ freshly recomputed, always
# ---------------------------------------------------------------------------
#
# The leg above fuzzes *plans*; this one fuzzes *histories*.  A random
# subset of the catalog views is registered on a sharded service, then a
# random stream of routed inserts (single rows and batches) — with a
# reshard to a random shard count dropped mid-stream — is applied, and
# after every operation every view's maintained answer must be bag-equal
# to a fresh recompute of the same query over the same logical contents
# (a plain single-node service absorbing the identical write stream).
# Divergence at any version means a maintenance bug: a missed delta, a
# stale broadcast alias, a partial combined wrong, or a reshard that
# leaked old-layout state.

_SAILORS_WRITES = {
    "Sailors": lambda draw: (draw(st.integers(100, 140)),
                             draw(st.sampled_from(["uma", "viv", "wes"])),
                             draw(st.integers(1, 10)),
                             float(draw(st.integers(18, 60)))),
    "Reserves": lambda draw: (draw(st.integers(22, 95)),
                              draw(st.integers(101, 104)),
                              f"2025/08/{draw(st.integers(1, 28)):02d}"),
    "Boats": lambda draw: (draw(st.integers(105, 120)),
                           draw(st.sampled_from(["Lark", "Mist", "Gale"])),
                           draw(st.sampled_from(["red", "green", "blue"]))),
}


@st.composite
def view_history(draw):
    from repro.queries import CANONICAL_QUERIES

    picks = draw(st.lists(
        st.tuples(st.integers(0, len(CANONICAL_QUERIES) - 1),
                  st.sampled_from(["SQL", "RA", "Datalog"])),
        min_size=1, max_size=3, unique=True))
    views = [(CANONICAL_QUERIES[i].languages()[lang], lang.lower())
             for i, lang in picks]
    n_ops = draw(st.integers(min_value=3, max_value=6))
    ops = []
    for _ in range(n_ops):
        relation = draw(st.sampled_from(sorted(_SAILORS_WRITES)))
        make = _SAILORS_WRITES[relation]
        batch = draw(st.booleans())
        rows = [make(draw) for _ in range(draw(st.integers(2, 4)) if batch
                                          else 1)]
        ops.append((relation, rows, batch))
    reshard_at = draw(st.integers(min_value=0, max_value=n_ops))
    reshard_to = draw(st.integers(min_value=1, max_value=4))
    return views, ops, reshard_at, reshard_to


@settings(max_examples=max(8, settings().max_examples // 5), **_COMMON)
@given(case=view_history())
def test_sharded_views_track_fresh_recompute(case):
    from repro.core import QueryService, ShardedQueryService
    from repro.data import sailors_database

    views, ops, reshard_at, reshard_to = case
    plain = QueryService(sailors_database())
    service = ShardedQueryService(sailors_database(), n_shards=2)
    handles = [(service.register_view(text, language=language), text,
                language) for text, language in views]

    def check(moment):
        for view, text, language in handles:
            fresh = plain.answer(text, language=language)
            assert view.answer().bag_equal(fresh), (
                f"view {text!r} ({language}) diverged {moment}: "
                f"maintained={sorted(view.answer().rows())} "
                f"fresh={sorted(fresh.rows())}")

    check("at registration")
    for step, (relation, rows, batch) in enumerate(ops):
        if step == reshard_at:
            service.reshard(reshard_to)
            check(f"after reshard to {reshard_to}")
        if batch:
            service.add_rows(relation, rows)
            plain.add_rows(relation, rows)
        else:
            service.add_row(relation, rows[0])
            plain.add_row(relation, rows[0])
        check(f"after write #{step} to {relation}")
    if reshard_at == len(ops):
        service.reshard(reshard_to)
        check(f"after trailing reshard to {reshard_to}")
    service.close()
    plain.close()
