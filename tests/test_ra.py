"""Tests for Relational Algebra: AST, schema inference, parsing, evaluation, rewrites."""

from __future__ import annotations

import pytest

from repro.expr import Col, Comparison, Const, FuncCall, Star
from repro.ra import (
    AntiJoin,
    Difference,
    Distinct,
    Division,
    GroupBy,
    Intersection,
    NaturalJoin,
    Product,
    Projection,
    RAError,
    RelationRef,
    Rename,
    Selection,
    SemiJoin,
    ThetaJoin,
    Union,
    cardinality,
    evaluate,
    merge_selections,
    operator_label,
    optimize,
    output_schema,
    parse_ra,
    push_selections,
    resolve_attribute,
    selection_to_join,
    to_text,
    to_tree,
)


def names(relation) -> set:
    return {row[0] for row in relation.distinct_rows()}


class TestSchemaInference:
    def test_relation_ref_schema(self, schema):
        assert output_schema(RelationRef("Sailors"), schema).attribute_names == (
            "sid", "sname", "rating", "age")

    def test_projection_schema(self, schema):
        expr = Projection(RelationRef("Sailors"), ("sname", "sid"))
        assert output_schema(expr, schema).attribute_names == ("sname", "sid")

    def test_projection_unknown_column(self, schema):
        with pytest.raises(RAError):
            output_schema(Projection(RelationRef("Sailors"), ("color",)), schema)

    def test_product_prefixes_clashes(self, schema):
        expr = Product(RelationRef("Sailors"), RelationRef("Reserves"))
        out = output_schema(expr, schema).attribute_names
        assert "Sailors.sid" in out and "Reserves.sid" in out and "bid" in out

    def test_natural_join_merges_shared(self, schema):
        expr = NaturalJoin(RelationRef("Sailors"), RelationRef("Reserves"))
        out = output_schema(expr, schema).attribute_names
        assert out.count("sid") == 1
        assert "bid" in out

    def test_division_schema(self, schema):
        expr = Division(Projection(RelationRef("Reserves"), ("sid", "bid")),
                        Projection(RelationRef("Boats"), ("bid",)))
        assert output_schema(expr, schema).attribute_names == ("sid",)

    def test_division_requires_subset(self, schema):
        with pytest.raises(RAError):
            output_schema(Division(RelationRef("Boats"), RelationRef("Sailors")), schema)

    def test_union_compatibility_enforced(self, schema):
        with pytest.raises(RAError):
            output_schema(Union(RelationRef("Sailors"), RelationRef("Boats")), schema)

    def test_groupby_schema(self, schema):
        expr = GroupBy(RelationRef("Sailors"), ("rating",),
                       ((FuncCall("count", (Star(),)), "n"),
                        (FuncCall("avg", (Col("age"),)), "avg_age")))
        out = output_schema(expr, schema)
        assert out.attribute_names == ("rating", "n", "avg_age")
        assert str(out.dtype_of("n")) == "int"
        assert str(out.dtype_of("avg_age")) == "float"

    def test_rename_schema(self, schema):
        expr = Rename(RelationRef("Sailors"), "S", (("sid", "id"),))
        out = output_schema(expr, schema)
        assert out.name == "S"
        assert "id" in out.attribute_names

    def test_resolve_attribute_rules(self, schema):
        product = output_schema(Product(RelationRef("Sailors"), RelationRef("Reserves")), schema)
        assert resolve_attribute(product, "sid", "Sailors") == "Sailors.sid"
        assert resolve_attribute(product, "sname") == "sname"
        assert resolve_attribute(product, "sname", "Sailors") == "sname"
        with pytest.raises(RAError):
            resolve_attribute(product, "sid")  # ambiguous
        with pytest.raises(RAError):
            resolve_attribute(product, "color")


class TestEvaluation:
    def test_selection_and_projection(self, db):
        expr = Projection(Selection(RelationRef("Boats"),
                                    Comparison(Col("color"), "=", Const("red"))), ("bid",))
        assert set(evaluate(expr, db).rows()) == {(102,), (104,)}

    def test_set_semantics_dedupes(self, db):
        expr = Projection(RelationRef("Sailors"), ("sname",))
        assert len(evaluate(expr, db)) == 9  # two Horatios collapse
        assert len(evaluate(expr, db, bag=True)) == 10

    def test_product_and_theta_join_agree(self, db):
        cond = Comparison(Col("sid", "Sailors"), "=", Col("sid", "Reserves"))
        via_product = Selection(Product(RelationRef("Sailors"), RelationRef("Reserves")), cond)
        via_join = ThetaJoin(RelationRef("Sailors"), RelationRef("Reserves"), cond)
        assert evaluate(via_product, db).set_equal(evaluate(via_join, db))
        assert cardinality(via_join, db) == 10

    def test_natural_join_chain(self, db):
        expr = Projection(
            Selection(
                NaturalJoin(NaturalJoin(RelationRef("Sailors"), RelationRef("Reserves")),
                            RelationRef("Boats")),
                Comparison(Col("color"), "=", Const("red"))),
            ("sname",))
        assert names(evaluate(expr, db)) == {"Dustin", "Lubber", "Horatio"}

    def test_natural_join_without_shared_attributes_is_product(self, db):
        expr = NaturalJoin(Projection(RelationRef("Sailors"), ("sname",)),
                           Projection(RelationRef("Boats"), ("color",)))
        assert len(evaluate(expr, db)) == 9 * 3  # distinct names x distinct colors

    def test_union_intersection_difference(self, db):
        red = Projection(Selection(RelationRef("Boats"),
                                   Comparison(Col("color"), "=", Const("red"))), ("bid",))
        some = Projection(Selection(RelationRef("Boats"),
                                    Comparison(Col("bid"), "<=", Const(102))), ("bid",))
        assert set(evaluate(Union(red, some), db).rows()) == {(101,), (102,), (104,)}
        assert set(evaluate(Intersection(red, some), db).rows()) == {(102,)}
        assert set(evaluate(Difference(red, some), db).rows()) == {(104,)}

    def test_division_is_universal_quantification(self, db):
        expr = Division(Projection(RelationRef("Reserves"), ("sid", "bid")),
                        Projection(Selection(RelationRef("Boats"),
                                             Comparison(Col("color"), "=", Const("red"))),
                                   ("bid",)))
        assert set(evaluate(expr, db).rows()) == {(22,), (31,)}

    def test_division_by_empty_divisor_returns_all(self, db, empty_db):
        expr = Division(Projection(RelationRef("Reserves"), ("sid", "bid")),
                        Projection(Selection(RelationRef("Boats"),
                                             Comparison(Col("color"), "=", Const("purple"))),
                                   ("bid",)))
        result = evaluate(expr, db)
        assert set(result.rows()) == {(sid,) for sid in {22, 31, 64, 74}}

    def test_semi_and_anti_join(self, db):
        semi = SemiJoin(RelationRef("Sailors"), RelationRef("Reserves"))
        anti = AntiJoin(RelationRef("Sailors"), RelationRef("Reserves"))
        semi_names = names(Projection(semi, ("sname",)) and evaluate(Projection(semi, ("sname",)), db))
        anti_names = names(evaluate(Projection(anti, ("sname",)), db))
        assert semi_names == {"Dustin", "Lubber", "Horatio"}
        assert "Brutus" in anti_names and semi_names.isdisjoint({"Brutus"})
        assert len(evaluate(semi, db)) + len(evaluate(anti, db)) == 10

    def test_semi_join_with_condition(self, db):
        cond = Comparison(Col("sid", "Sailors"), "=", Col("sid", "Reserves"))
        semi = SemiJoin(RelationRef("Sailors"), RelationRef("Reserves"), cond)
        assert len(evaluate(semi, db)) == 4

    def test_groupby_evaluation(self, db):
        expr = GroupBy(RelationRef("Boats"), ("color",),
                       ((FuncCall("count", (Star(),)), "n"),))
        assert set(evaluate(expr, db).rows()) == {("blue", 1), ("red", 2), ("green", 1)}

    def test_groupby_on_empty_input_without_groups(self, empty_db):
        expr = GroupBy(RelationRef("Sailors"), (),
                       ((FuncCall("count", (Star(),)), "n"),
                        (FuncCall("sum", (Col("age"),)), "total")))
        assert evaluate(expr, empty_db).rows() == [(0, None)]

    def test_distinct_and_rename_evaluation(self, db):
        expr = Distinct(Projection(RelationRef("Reserves"), ("sid",)))
        assert len(evaluate(expr, db)) == 4
        renamed = Rename(RelationRef("Sailors"), "S", (("sid", "id"),))
        assert evaluate(renamed, db).schema.attribute_names[0] == "id"

    def test_empty_database_everything_empty(self, empty_db):
        expr = parse_ra("project[sname](Sailors njoin Reserves)")
        assert evaluate(expr, empty_db).is_empty()


class TestParserAndPrinter:
    def test_parse_canonical_forms(self, db, canonical_query):
        expr = parse_ra(canonical_query.ra)
        result = evaluate(expr, db)
        assert names(result) == set(canonical_query.expected_names)

    def test_parse_greek_letters(self, db):
        expr = parse_ra("π[sname](σ[rating >= 9](Sailors))")
        assert names(evaluate(expr, db)) == {"Rusty", "Zorba", "Horatio"}

    def test_parse_rename_and_groupby(self, db):
        expr = parse_ra("groupby[color; count(*) -> n](Boats)")
        assert set(evaluate(expr, db).rows()) == {("blue", 1), ("red", 2), ("green", 1)}
        expr = parse_ra("rename[S, sid -> id](Sailors)")
        assert evaluate(expr, db).schema.name == "S"

    def test_parse_set_operators_and_division(self, db):
        expr = parse_ra("project[bid](select[color='red'](Boats)) union project[bid](select[color='green'](Boats))")
        assert len(evaluate(expr, db)) == 3
        expr = parse_ra("project[sid, bid](Reserves) divide project[bid](Boats)")
        assert evaluate(expr, db).rows() == [(22,)]

    def test_parse_errors(self):
        with pytest.raises(RAError):
            parse_ra("project[](Sailors)")
        with pytest.raises(RAError):
            parse_ra("select[x=1](Sailors) extra")
        with pytest.raises(RAError):
            parse_ra("project[sname](Sailors")

    def test_text_round_trip(self, db, canonical_query):
        expr = parse_ra(canonical_query.ra)
        text = to_text(expr)
        again = parse_ra(text)
        assert evaluate(expr, db).set_equal(evaluate(again, db))

    def test_tree_and_labels(self):
        expr = parse_ra("project[sname](select[rating > 7](Sailors))")
        tree = to_tree(expr)
        assert tree.splitlines()[0].startswith("π")
        assert "Sailors" in tree
        assert operator_label(RelationRef("Boats")) == "Boats"


class TestRewrites:
    def test_merge_selections(self, db):
        expr = parse_ra("select[rating > 5](select[age < 50.0](Sailors))")
        merged = merge_selections(expr)
        assert isinstance(merged, Selection)
        assert isinstance(merged.input, RelationRef)
        assert evaluate(expr, db).set_equal(evaluate(merged, db))

    def test_selection_to_join(self, db, schema):
        expr = parse_ra("select[Sailors.sid = Reserves.sid](Sailors times Reserves)")
        joined = selection_to_join(expr)
        assert isinstance(joined, ThetaJoin)
        assert evaluate(expr, db).set_equal(evaluate(joined, db))

    def test_push_selections_splits_conjuncts(self, db, schema):
        expr = parse_ra("select[color = 'red' and rating > 5](Sailors times Boats)")
        pushed = push_selections(expr, schema)
        text = to_text(pushed)
        assert "times" in text
        assert evaluate(expr, db).set_equal(evaluate(pushed, db))
        # both conjuncts moved below the product
        assert not isinstance(pushed, Selection) or "and" not in to_text(pushed.condition).lower()

    def test_optimize_preserves_semantics(self, db, schema, canonical_query):
        expr = parse_ra(canonical_query.ra)
        optimized = optimize(expr, schema)
        assert evaluate(expr, db).set_equal(evaluate(optimized, db))
